//! Progressive recovery: staging ISP's repairs under a daily work budget.
//!
//! Run with `cargo run --release --example progressive_recovery`.
//!
//! The DSN'16 paper decides *what* to repair; operations teams also need
//! to decide *in which order* when crews can only fix a few components
//! per day. This example plans the repairs with ISP on a
//! Gaussian-disrupted Bell-Canada-like network, then schedules them into
//! budgeted stages with the greedy marginal-gain scheduler
//! (`netrec::core::schedule`), printing the restored-demand curve — the
//! quantity the progressive-recovery literature (Wang et al., INFOCOM'11)
//! optimizes.

use netrec::core::schedule::schedule_recovery;
use netrec::core::solver::{SolveContext, SolverSpec};
use netrec::core::RecoveryProblem;
use netrec::disrupt::DisruptionModel;
use netrec::topology::bell::bell_canada;
use netrec::topology::demand::{generate_demands, DemandSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = bell_canada();
    let disruption = DisruptionModel::gaussian(40.0).apply(&topology, 11);
    let demands = generate_demands(&topology, &DemandSpec::new(4, 10.0), 11);

    let mut problem = RecoveryProblem::new(topology.graph().clone());
    for (s, t, d) in &demands {
        problem.add_demand(*s, *t, *d)?;
    }
    for (i, &b) in disruption.broken_nodes.iter().enumerate() {
        if b {
            problem.break_node(problem.graph().node(i), 1.0)?;
        }
    }
    for (i, &b) in disruption.broken_edges.iter().enumerate() {
        if b {
            problem.break_edge(netrec::graph::EdgeId::new(i), 1.0)?;
        }
    }
    println!(
        "Disruption: {} components down; demand: {} pairs × 10 units",
        disruption.total(),
        demands.len()
    );

    let plan = SolverSpec::isp()
        .build()
        .solve(&problem, &mut SolveContext::new())?;
    println!(
        "ISP plan: {} repairs (of {} broken)\n",
        plan.total_repairs(),
        disruption.total()
    );

    let budget_per_day = 4.0; // four unit-cost repairs per day
    let schedule = schedule_recovery(&problem, &plan, budget_per_day)?;

    println!("day  repairs  cumulative-satisfied");
    let mut done = 0;
    for (day, stage) in schedule.stages.iter().enumerate() {
        done += stage.nodes.len() + stage.edges.len();
        let bar_len = (stage.satisfied_fraction * 30.0).round() as usize;
        println!(
            "{:>3}  {:>7}  {:>5.1}%  {}",
            day + 1,
            done,
            stage.satisfied_fraction * 100.0,
            "#".repeat(bar_len)
        );
    }
    assert!((schedule.satisfaction_curve().last().unwrap() - 1.0).abs() < 1e-6);
    println!(
        "\nAll mission-critical demand restored after {} days.",
        schedule.len()
    );
    Ok(())
}
