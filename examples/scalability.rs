//! Scalability study: ISP vs the exact optimum on random graphs — the
//! paper's second scenario (Fig. 7) in miniature.
//!
//! Run with `cargo run --release --example scalability`.
//!
//! On Erdős–Rényi graphs with huge edge capacities, MinR degenerates to a
//! Steiner-Forest-like connectivity problem (the paper's NP-hardness
//! reduction). We sweep the edge probability and watch OPT's search
//! explode while ISP stays flat.

use netrec::core::solver::{SolveContext, SolverSpec};
use netrec::core::RecoveryProblem;
use netrec::disrupt::DisruptionModel;
use netrec::topology::demand::{generate_demands, DemandSpec};
use netrec::topology::random::erdos_renyi;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 30;
    // The line-up as data: the same specs a scenario file or `--algo`
    // would carry.
    let solvers = [
        SolverSpec::isp().build(),
        SolverSpec::parse("opt:budget=100")?.build(),
        SolverSpec::srt().build(),
    ];
    println!("Erdős–Rényi n = {n}, 5 unit demand pairs, capacity 1000, full destruction\n");
    println!(
        "{:>6}{:>12}{:>12}{:>12}{:>12}{:>12}{:>12}",
        "p", "ISP reps", "OPT reps", "SRT reps", "ISP time", "OPT time", "SRT time"
    );

    for p in [0.2, 0.4, 0.6, 0.8] {
        let topology = erdos_renyi(n, p, 1000.0, 42);
        let demands = generate_demands(&topology, &DemandSpec::new(5, 1.0), 42);
        let disruption = DisruptionModel::Complete.apply(&topology, 0);

        let mut problem = RecoveryProblem::new(topology.graph().clone());
        for (s, t, d) in &demands {
            problem.add_demand(*s, *t, *d)?;
        }
        for (i, &b) in disruption.broken_nodes.iter().enumerate() {
            if b {
                problem.break_node(problem.graph().node(i), 1.0)?;
            }
        }
        for (i, &b) in disruption.broken_edges.iter().enumerate() {
            if b {
                problem.break_edge(netrec::graph::EdgeId::new(i), 1.0)?;
            }
        }

        let mut repairs = Vec::new();
        let mut times = Vec::new();
        for solver in &solvers {
            let t0 = Instant::now();
            let plan = solver.solve(&problem, &mut SolveContext::new())?;
            times.push(t0.elapsed().as_secs_f64());
            repairs.push(plan.total_repairs());
        }
        println!(
            "{p:>6.1}{:>12}{:>12}{:>12}{:>11.2}s{:>11.2}s{:>11.4}s",
            repairs[0], repairs[1], repairs[2], times[0], times[1], times[2]
        );
    }

    println!("\nNote: OPT runs with a branch & bound node budget and an ISP warm start;");
    println!("the paper reports up to 27 hours for the unbudgeted optimum at n = 100.");
    Ok(())
}
