//! Deployment planning: choosing where to *build new links*, not just
//! repair broken ones.
//!
//! Run with `cargo run --release --example deploy_new_links`.
//!
//! The paper notes (§III, footnote 1) that the MinR model "can also be
//! adopted as is to support decisions to replace broken links with new
//! links of higher capacity, or to deploy and connect new nodes, by
//! formulating a related decision space": a candidate new link is simply a
//! *broken* edge whose repair cost is its deployment cost. This example
//! plans emergency deployments (e.g. microwave relays after a flood) for
//! a partially destroyed ring network, comparing "repair only" against
//! "repair or deploy". The demand (16 units) exceeds the surviving
//! half-ring's capacity (10), so capacity must come back on the destroyed
//! side — either by rebuilding the arc or by deploying one new chord.

use netrec::core::heuristics::opt::{solve_opt, OptConfig};
use netrec::core::{solve_isp, IspConfig, RecoveryError, RecoveryProblem};
use netrec::graph::Graph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-node ring, capacity 10. The disaster destroys a whole arc
    // (nodes 2, 3, 4 and their links) — the demand 1 ↔ 5 must detour the
    // long way or cross deployed shortcuts.
    let build = |with_candidates: bool| -> Result<RecoveryProblem, RecoveryError> {
        let mut g = Graph::with_nodes(8);
        let mut ring = Vec::new();
        for i in 0..8 {
            ring.push(g.add_edge(g.node(i), g.node((i + 1) % 8), 10.0)?);
        }
        // Candidate new links (not part of today's network): chords that
        // would bypass the destroyed arc. Deployment is pricier than
        // repair.
        let candidates = if with_candidates {
            vec![
                (g.add_edge(g.node(1), g.node(5), 10.0)?, 2.5), // direct microwave hop
                (g.add_edge(g.node(1), g.node(4), 10.0)?, 2.0),
            ]
        } else {
            Vec::new()
        };

        let mut p = RecoveryProblem::new(g);
        p.add_demand(p.graph().node(1), p.graph().node(5), 16.0)?;
        // The destroyed arc: each repair costs 1 per element.
        for n in [2usize, 3, 4] {
            p.break_node(p.graph().node(n), 1.0)?;
        }
        for &e in &[ring[1], ring[2], ring[3], ring[4]] {
            p.break_edge(e, 1.0)?;
        }
        // Candidate links enter the model as broken edges at deployment
        // cost — exactly the paper's footnote-1 construction.
        for (e, cost) in candidates {
            p.break_edge(e, cost)?;
        }
        Ok(p)
    };

    for (label, with_candidates) in [("repair only", false), ("repair or deploy", true)] {
        let p = build(with_candidates)?;
        let isp = solve_isp(&p, &IspConfig::default())?;
        let opt = solve_opt(&p, &OptConfig::default())?;
        println!("{label}:");
        println!(
            "  ISP: {} actions, cost {:.1}  (nodes {:?}, edges {:?})",
            isp.total_repairs(),
            isp.repair_cost(&p),
            isp.repaired_nodes,
            isp.repaired_edges
        );
        println!(
            "  OPT: {} actions, cost {:.1}",
            opt.total_repairs(),
            opt.repair_cost(&p)
        );
        assert!(isp.verify_routable(&p)?);
        println!();
    }

    println!("With deployment candidates available, the optimal plan builds a");
    println!("single new chord instead of rebuilding the destroyed arc.");
    Ok(())
}
