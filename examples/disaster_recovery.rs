//! Disaster recovery on a carrier topology: the paper's motivating
//! scenario end to end.
//!
//! Run with `cargo run --release --example disaster_recovery`.
//!
//! A hurricane-like geographically correlated failure (bi-variate
//! Gaussian, as in §VII-A3) hits the Bell-Canada-like carrier network.
//! Four mission-critical services of 10 flow units each must be restored.
//! We compare the full algorithm suite: ISP, the budgeted exact optimum,
//! SRT, and the greedy heuristics — the same line-up as the paper's
//! Fig. 6 — and report repairs, cost, and demand loss.

use netrec::core::heuristics::greedy::{solve_grd_com, solve_grd_nc, GreedyConfig};
use netrec::core::heuristics::opt::{solve_opt, OptConfig};
use netrec::core::heuristics::srt::solve_srt;
use netrec::core::{solve_isp, IspConfig, RecoveryProblem};
use netrec::disrupt::DisruptionModel;
use netrec::topology::bell::bell_canada;
use netrec::topology::demand::{generate_demands, DemandSpec};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = bell_canada();
    println!(
        "Topology: {} ({} nodes, {} edges)",
        topology.name(),
        topology.graph().node_count(),
        topology.graph().edge_count()
    );

    // The disaster: Gaussian destruction of variance 50 at the barycenter.
    let disruption = DisruptionModel::gaussian(50.0).apply(&topology, 7);
    println!(
        "Disruption: {} nodes and {} edges destroyed",
        disruption.node_count(),
        disruption.edge_count()
    );

    // Mission-critical demand: 4 far-apart pairs of 10 units.
    let demands = generate_demands(&topology, &DemandSpec::new(4, 10.0), 7);

    let mut problem = RecoveryProblem::new(topology.graph().clone());
    for (s, t, d) in &demands {
        problem.add_demand(*s, *t, *d)?;
        println!("  demand: {s} ↔ {t}, {d} units");
    }
    for (i, &broken) in disruption.broken_nodes.iter().enumerate() {
        if broken {
            problem.break_node(problem.graph().node(i), 1.0)?;
        }
    }
    for (i, &broken) in disruption.broken_edges.iter().enumerate() {
        if broken {
            problem.break_edge(netrec::graph::EdgeId::new(i), 1.0)?;
        }
    }

    println!(
        "\n{:<10}{:>9}{:>9}{:>9}{:>12}{:>11}",
        "algorithm", "nodes", "edges", "total", "satisfied", "time"
    );
    let run = |name: &str, plan: netrec::core::RecoveryPlan, elapsed: f64| {
        let sat = plan
            .satisfied_fraction(&problem)
            .map(|f| format!("{:.0}%", f * 100.0))
            .unwrap_or_else(|_| "?".into());
        println!(
            "{name:<10}{:>9}{:>9}{:>9}{:>12}{:>10.2}s",
            plan.repaired_nodes.len(),
            plan.repaired_edges.len(),
            plan.total_repairs(),
            sat,
            elapsed
        );
    };

    let t = Instant::now();
    let isp = solve_isp(&problem, &IspConfig::default())?;
    run("ISP", isp, t.elapsed().as_secs_f64());

    let t = Instant::now();
    let opt = solve_opt(
        &problem,
        &OptConfig {
            node_budget: Some(200),
            warm_start: true,
        },
    )?;
    run("OPT", opt, t.elapsed().as_secs_f64());

    let t = Instant::now();
    let srt = solve_srt(&problem);
    run("SRT", srt, t.elapsed().as_secs_f64());

    let greedy_config = GreedyConfig::default();
    let t = Instant::now();
    let com = solve_grd_com(&problem, &greedy_config);
    run("GRD-COM", com, t.elapsed().as_secs_f64());

    let t = Instant::now();
    let nc = solve_grd_nc(&problem, &greedy_config)?;
    run("GRD-NC", nc, t.elapsed().as_secs_f64());

    println!(
        "\nALL (repair everything) would be {} repairs.",
        disruption.total()
    );
    Ok(())
}
