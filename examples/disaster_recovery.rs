//! Disaster recovery on a carrier topology: the paper's motivating
//! scenario end to end.
//!
//! Run with `cargo run --release --example disaster_recovery`.
//!
//! A hurricane-like geographically correlated failure (bi-variate
//! Gaussian, as in §VII-A3) hits the Bell-Canada-like carrier network.
//! Four mission-critical services of 10 flow units each must be restored.
//! We iterate the **solver registry** — every algorithm of the paper's
//! §VI behind the unified `RecoverySolver` trait — and report repairs,
//! cost, and demand loss. Adding an eighth algorithm to the registry
//! would add a row here with no code change.

use netrec::core::solver::{registry, SolveContext, SolverSpec};
use netrec::core::RecoveryProblem;
use netrec::disrupt::DisruptionModel;
use netrec::topology::bell::bell_canada;
use netrec::topology::demand::{generate_demands, DemandSpec};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = bell_canada();
    println!(
        "Topology: {} ({} nodes, {} edges)",
        topology.name(),
        topology.graph().node_count(),
        topology.graph().edge_count()
    );

    // The disaster: Gaussian destruction of variance 50 at the barycenter.
    let disruption = DisruptionModel::gaussian(50.0).apply(&topology, 7);
    println!(
        "Disruption: {} nodes and {} edges destroyed",
        disruption.node_count(),
        disruption.edge_count()
    );

    // Mission-critical demand: 4 far-apart pairs of 10 units.
    let demands = generate_demands(&topology, &DemandSpec::new(4, 10.0), 7);

    let mut problem = RecoveryProblem::new(topology.graph().clone());
    for (s, t, d) in &demands {
        problem.add_demand(*s, *t, *d)?;
        println!("  demand: {s} ↔ {t}, {d} units");
    }
    for (i, &broken) in disruption.broken_nodes.iter().enumerate() {
        if broken {
            problem.break_node(problem.graph().node(i), 1.0)?;
        }
    }
    for (i, &broken) in disruption.broken_edges.iter().enumerate() {
        if broken {
            problem.break_edge(netrec::graph::EdgeId::new(i), 1.0)?;
        }
    }

    println!(
        "\n{:<10}{:>9}{:>9}{:>9}{:>12}{:>11}",
        "algorithm", "nodes", "edges", "total", "satisfied", "time"
    );
    for entry in registry() {
        // Cap OPT's branch & bound the way the fig6 sweep does; every
        // other solver runs with its registry default.
        let name = entry.name();
        let spec = match entry.spec {
            SolverSpec::Opt(_) => SolverSpec::parse("opt:budget=200")?,
            spec => spec,
        };
        let solver = spec.build();
        let t = Instant::now();
        match solver.solve(&problem, &mut SolveContext::new()) {
            Ok(plan) => {
                let sat = plan
                    .satisfied_fraction(&problem)
                    .map(|f| format!("{:.0}%", f * 100.0))
                    .unwrap_or_else(|_| "?".into());
                println!(
                    "{:<10}{:>9}{:>9}{:>9}{:>12}{:>10.2}s",
                    plan.algorithm,
                    plan.repaired_nodes.len(),
                    plan.repaired_edges.len(),
                    plan.total_repairs(),
                    sat,
                    t.elapsed().as_secs_f64()
                );
            }
            Err(e) => println!("{name:<10}failed: {e}"),
        }
    }
    Ok(())
}
