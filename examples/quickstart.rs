//! Quickstart: plan the recovery of a small damaged network with ISP.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The scenario: a six-node metro ring with a cross-link. An incident
//! knocks out three nodes and four links; two mission-critical services
//! (say, hospital↔emergency-control and two government sites) must be
//! restored. We ask ISP for a minimal repair plan and verify it.

use netrec::core::{solve_isp_with_stats, IspConfig, RecoveryProblem};
use netrec::graph::Graph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Supply graph: ring 0-1-2-3-4-5-0 plus chord 1-4, capacity 10 each.
    let mut g = Graph::with_nodes(6);
    let mut edges = Vec::new();
    for i in 0..6 {
        edges.push(g.add_edge(g.node(i), g.node((i + 1) % 6), 10.0)?);
    }
    let chord = g.add_edge(g.node(1), g.node(4), 10.0)?;

    let mut problem = RecoveryProblem::new(g);

    // Mission-critical demands: 0↔3 needs 6 units, 2↔5 needs 4 units.
    problem.add_demand(problem.graph().node(0), problem.graph().node(3), 6.0)?;
    problem.add_demand(problem.graph().node(2), problem.graph().node(5), 4.0)?;

    // The disaster: nodes 1, 2, 4 and the links around them are down.
    for n in [1, 2, 4] {
        problem.break_node(problem.graph().node(n), 1.0)?;
    }
    for &e in &[edges[0], edges[1], edges[3], chord] {
        problem.break_edge(e, 1.0)?;
    }

    println!(
        "Damage: {} nodes, {} edges broken (of {} / {})",
        problem.broken_node_count(),
        problem.broken_edge_count(),
        problem.graph().node_count(),
        problem.graph().edge_count(),
    );

    // Plan the recovery.
    let (plan, stats) = solve_isp_with_stats(&problem, &IspConfig::default())?;

    println!("\nISP recovery plan ({} iterations):", stats.iterations);
    println!("  repair nodes: {:?}", plan.repaired_nodes);
    println!("  repair edges: {:?}", plan.repaired_edges);
    println!(
        "  total: {} repairs (cost {})",
        plan.total_repairs(),
        plan.repair_cost(&problem)
    );
    println!("  splits: {}, prunes: {}", stats.splits, stats.prunes);

    // Verify: with those repairs the whole demand must be routable.
    assert!(plan.verify_routable(&problem)?);
    println!(
        "\nVerification: all demand routable; satisfied fraction = {:.0}%",
        plan.satisfied_fraction(&problem)? * 100.0
    );
    Ok(())
}
