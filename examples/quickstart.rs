//! Quickstart: plan the recovery of a small damaged network with ISP
//! through the unified solver layer.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The scenario: a six-node metro ring with a cross-link. An incident
//! knocks out three nodes and four links; two mission-critical services
//! (say, hospital↔emergency-control and two government sites) must be
//! restored. We pick the solver as *data* (`SolverSpec::parse("isp")` —
//! any registry algorithm works here), give the run a deadline and a
//! progress listener, and verify the plan.

use netrec::core::solver::{ProgressEvent, SolveContext, SolverSpec};
use netrec::core::RecoveryProblem;
use netrec::graph::Graph;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Supply graph: ring 0-1-2-3-4-5-0 plus chord 1-4, capacity 10 each.
    let mut g = Graph::with_nodes(6);
    let mut edges = Vec::new();
    for i in 0..6 {
        edges.push(g.add_edge(g.node(i), g.node((i + 1) % 6), 10.0)?);
    }
    let chord = g.add_edge(g.node(1), g.node(4), 10.0)?;

    let mut problem = RecoveryProblem::new(g);

    // Mission-critical demands: 0↔3 needs 6 units, 2↔5 needs 4 units.
    problem.add_demand(problem.graph().node(0), problem.graph().node(3), 6.0)?;
    problem.add_demand(problem.graph().node(2), problem.graph().node(5), 4.0)?;

    // The disaster: nodes 1, 2, 4 and the links around them are down.
    for n in [1, 2, 4] {
        problem.break_node(problem.graph().node(n), 1.0)?;
    }
    for &e in &[edges[0], edges[1], edges[3], chord] {
        problem.break_edge(e, 1.0)?;
    }

    println!(
        "Damage: {} nodes, {} edges broken (of {} / {})",
        problem.broken_node_count(),
        problem.broken_edge_count(),
        problem.graph().node_count(),
        problem.graph().edge_count(),
    );

    // Plan the recovery: solver choice is a string, cross-cutting rules
    // (deadline, progress) live on the context.
    let solver = SolverSpec::parse("isp")?.build();
    let mut ctx = SolveContext::new()
        .with_deadline(Duration::from_secs(10))
        .with_progress(|event| {
            if let ProgressEvent::Stage { solver, stage } = event {
                println!("  [{solver}] {stage}");
            }
        });
    let plan = solver.solve(&problem, &mut ctx)?;

    println!(
        "\n{} recovery plan ({} iterations):",
        plan.algorithm, plan.iterations
    );
    println!("  repair nodes: {:?}", plan.repaired_nodes);
    println!("  repair edges: {:?}", plan.repaired_edges);
    println!(
        "  total: {} repairs (cost {})",
        plan.total_repairs(),
        plan.repair_cost(&problem)
    );

    // Verify: with those repairs the whole demand must be routable.
    assert!(plan.verify_routable(&problem)?);
    println!(
        "\nVerification: all demand routable; satisfied fraction = {:.0}%",
        plan.satisfied_fraction(&problem)? * 100.0
    );
    Ok(())
}
