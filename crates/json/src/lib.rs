//! Minimal JSON reading/writing for the `netrec` workspace.
//!
//! The workspace is offline (no `serde_json`; the serde derives are
//! no-op stand-ins, see `DESIGN.md` §7), so campaign specs, journal
//! lines, reports, and the `netrec-serve` JSONL protocol go through
//! this hand-rolled value type instead: a recursive-descent parser (the
//! same approach as the committed `bench_json` guard test, promoted to
//! library code) and a **stable** writer — object members keep
//! insertion order, numbers render through Rust's shortest-round-trip
//! `f64` formatting — so re-serializing unchanged data is
//! byte-identical, which is what makes resumed campaign reports
//! reproducible and daemon replies diffable at the byte level.

use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve member order (insertion order
/// when built, document order when parsed); duplicate keys are a parse
/// error.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (kept as `f64`, like the real thing).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in member order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// A message with the byte offset of the first malformed token.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }

    /// Object member lookup (`None` for missing keys and non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    /// Values above 2^53 are rejected: they already lost precision on
    /// the way through `f64`, so accepting them would silently corrupt
    /// (and possibly collapse) e.g. seed values.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64()
            .filter(|&n| n <= usize::MAX as u64)
            .map(|n| n as usize)
    }

    /// The numeric payload as a `u64`, if it is a non-negative integer
    /// strictly below 2^53 (2^53 itself is rejected: 2^53 + 1 parses to
    /// the same `f64`, so the boundary value is ambiguous; see
    /// [`Json::as_usize`]).
    pub fn as_u64(&self) -> Option<u64> {
        const MAX_EXACT: f64 = (1u64 << 53) as f64;
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n < MAX_EXACT).then_some(n as u64)
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Renders the value on one line (journal format).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value with two-space indentation (report format).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_string(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

/// Numbers render via Rust's shortest-round-trip `f64` formatting —
/// deterministic for identical bits, which the byte-identity guarantees
/// lean on. Non-finite values have no JSON form and become `null`.
fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        // Integral values without the trailing `.0` `{}` would not
        // print anyway — but go through i64 to keep -0.0 as "-0.0"-free
        // canonical "0".
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Containers deeper than this are rejected rather than recursed into:
/// the parser is recursive-descent, and unbounded nesting from hostile
/// input (e.g. `[[[[…`) would otherwise overflow the stack. Real
/// payloads in this workspace nest a handful of levels.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn descend(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at offset {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\r\n".contains(b))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.descend()?;
        self.expect(b'{')?;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?} at offset {}", self.pos));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at offset {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.descend()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at offset {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            // Surrogate pairs are not needed for the
                            // engine's own output (it only escapes
                            // control characters).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid \\u code point {code:#x}"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

/// Convenience: an object from key/value pairs (insertion order kept).
pub fn object(members: Vec<(&str, Json)>) -> Json {
    Json::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hostile_nesting_is_an_error_not_a_stack_overflow() {
        let deep = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // Anything at or under the limit still parses.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(Json::parse(&over).is_err());
    }

    #[test]
    fn parse_round_trips_through_the_writer() {
        let text = r#"{"a": 1, "b": [true, null, "x\ny"], "c": {"mean": 2.5}, "d": -0.125}"#;
        let parsed = Json::parse(text).unwrap();
        let line = parsed.to_line();
        assert_eq!(Json::parse(&line).unwrap(), parsed);
        let pretty = parsed.to_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), parsed);
        // The writer is stable: writing twice is byte-identical.
        assert_eq!(parsed.to_pretty(), pretty);
    }

    #[test]
    fn writer_is_canonical_for_numbers() {
        assert_eq!(Json::Number(3.0).to_line(), "3");
        assert_eq!(Json::Number(-0.0).to_line(), "0");
        assert_eq!(Json::Number(2.5).to_line(), "2.5");
        assert_eq!(Json::Number(f64::NAN).to_line(), "null");
        assert_eq!(Json::Number(1e18).to_line(), "1000000000000000000");
    }

    #[test]
    fn object_order_is_preserved() {
        let obj = object(vec![("z", Json::Number(1.0)), ("a", Json::Number(2.0))]);
        assert_eq!(obj.to_line(), r#"{"z":1,"a":2}"#);
        let parsed = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(parsed, obj);
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        assert!(Json::parse(r#"{"a": 1, "a": 2}"#).is_err());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1}x",
            "\"unterminated",
            "{\"a\" 1}",
            "{\"a\": 1e}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 4, "s": "x", "a": [1], "neg": -1, "frac": 1.5}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), Some(4));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("neg").unwrap().as_usize(), None);
        assert_eq!(v.get("frac").unwrap().as_usize(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        // Integers at or beyond f64's exact range are rejected, not
        // rounded: 2^53 + 1 parses to the same f64 as 2^53, so both
        // are refused and only values below 2^53 pass through.
        for big in ["9007199254740993", "9007199254740992", "1e300"] {
            let parsed = Json::parse(big).unwrap();
            assert_eq!(parsed.as_u64(), None, "{big}");
            assert_eq!(parsed.as_usize(), None, "{big}");
        }
        assert_eq!(
            Json::parse("9007199254740991").unwrap().as_u64(),
            Some((1 << 53) - 1)
        );
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
        assert_eq!(v.as_object().unwrap().len(), 5);
    }

    #[test]
    fn control_characters_escape_and_parse_back() {
        let s = Json::String("a\u{1}b".into());
        let line = s.to_line();
        assert_eq!(line, "\"a\\u0001b\"");
        assert_eq!(Json::parse(&line).unwrap(), s);
    }
}
