//! Offline stand-in for the subset of the `criterion` API used by the
//! `netrec` benches.
//!
//! Measures wall-clock time per iteration (median of the collected
//! samples), prints one line per benchmark, and writes a
//! `BENCH_<group>.json` file per benchmark group into the directory named
//! by the `NETREC_BENCH_DIR` environment variable (default: the current
//! working directory, which under `cargo bench` is the workspace root).
//! No statistical analysis, warm-up tuning, or plotting — just enough to
//! track relative speedups across backends in CI artifacts.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Target measuring time per benchmark (soft cap).
const TARGET_MEASURE: Duration = Duration::from_millis(400);

/// Minimum samples collected per benchmark regardless of the measuring
/// budget: a committed `BENCH_*.json` median must never rest on a single
/// observation (the `bench_json` test rejects `samples < 3`). Slow
/// benchmarks may overshoot [`TARGET_MEASURE`] to reach the floor.
const MIN_SAMPLES: usize = 3;

/// A benchmark identifier: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from the parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Whether the bench binary runs in smoke mode (`cargo bench -- --test`,
/// matching real criterion's flag): every routine executes exactly once,
/// nothing is timed, and no `BENCH_*.json` is written — CI uses this so
/// bench code cannot silently rot without slowing the pipeline or
/// clobbering committed measurements.
fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Measures closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    smoke: bool,
}

impl Bencher {
    /// Times `routine`, collecting up to `sample_size` samples within the
    /// measuring budget. In smoke mode (`-- --test`) the routine runs
    /// once, untimed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            std::hint::black_box(routine());
            return;
        }
        // One untimed warm-up call.
        let warm = Instant::now();
        std::hint::black_box(routine());
        let warm_cost = warm.elapsed();

        let budget = TARGET_MEASURE;
        let started = Instant::now();
        // The floor wins over the budget: even a benchmark whose single
        // iteration exceeds the whole budget collects MIN_SAMPLES
        // observations, so no committed median is a lone sample.
        for _ in 0..self.sample_size.max(MIN_SAMPLES) {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed().as_secs_f64() * 1e9);
            if started.elapsed() + warm_cost > budget && self.samples.len() >= MIN_SAMPLES {
                break;
            }
        }
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
struct BenchResult {
    id: String,
    median_ns: f64,
    samples: usize,
}

/// A named group of benchmarks (API stand-in for criterion's group).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    results: Vec<BenchResult>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let result = run_bench(
            &format!("{}/{}", self.name, id),
            &id,
            self.sample_size,
            |b| f(b),
        );
        self.results.push(result);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_id();
        let result = run_bench(
            &format!("{}/{}", self.name, id),
            &id,
            self.sample_size,
            |b| f(b, input),
        );
        self.results.push(result);
        self
    }

    /// Writes the group's `BENCH_<group>.json` and prints a summary.
    /// In smoke mode (`-- --test`) nothing is written — a 1-iteration
    /// run must not clobber committed measurements.
    pub fn finish(&mut self) {
        if smoke_mode() {
            self.criterion
                .group_results
                .push((self.name.clone(), self.results.len()));
            return;
        }
        let path = bench_dir().join(format!("BENCH_{}.json", sanitize(&self.name)));
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"group\": \"{}\",", self.name);
        json.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let _ = write!(
                json,
                "    {{ \"id\": \"{}\", \"median_ns\": {:.1}, \"samples\": {} }}",
                r.id, r.median_ns, r.samples
            );
            json.push_str(if i + 1 < self.results.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        json.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("criterion-stub: cannot write {}: {e}", path.display());
        }
        self.criterion
            .group_results
            .push((self.name.clone(), self.results.len()));
    }
}

fn bench_dir() -> std::path::PathBuf {
    std::env::var_os("NETREC_BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."))
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn run_bench<F: FnMut(&mut Bencher)>(
    full_name: &str,
    id: &str,
    sample_size: usize,
    mut f: F,
) -> BenchResult {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        smoke: smoke_mode(),
    };
    f(&mut bencher);
    if bencher.smoke {
        println!("bench {full_name}: smoke ok (1 untimed iteration)");
        return BenchResult {
            id: id.to_string(),
            median_ns: f64::NAN,
            samples: 0,
        };
    }
    let mut samples = bencher.samples;
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median_ns = if samples.is_empty() {
        f64::NAN
    } else {
        samples[samples.len() / 2]
    };
    println!(
        "bench {full_name}: median {:.3} ms over {} samples",
        median_ns / 1e6,
        samples.len()
    );
    BenchResult {
        id: id.to_string(),
        median_ns,
        samples: samples.len(),
    }
}

/// The benchmark driver (API stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    group_results: Vec<(String, usize)>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            results: Vec::new(),
        }
    }

    /// Runs one ungrouped benchmark (reported but not written to JSON).
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        run_bench(&id.clone(), &id, 10, |b| f(b));
        self
    }

    /// Prints the end-of-run summary.
    pub fn final_summary(&mut self) {
        let smoke = smoke_mode();
        for (group, n) in &self.group_results {
            if smoke {
                println!("group {group}: {n} benchmarks smoke-tested, nothing written");
            } else {
                println!(
                    "group {group}: {n} benchmarks written to BENCH_{}.json",
                    sanitize(group)
                );
            }
        }
    }
}

/// Defines a function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export matching criterion's `black_box` (deprecated there in favor
/// of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_measure_and_write_json() {
        let dir = std::env::temp_dir().join("netrec-criterion-stub-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("NETREC_BENCH_DIR", &dir);
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        // Requesting a single sample still collects the MIN_SAMPLES
        // floor: committed medians must never be a lone observation.
        g.sample_size(1);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &x| b.iter(|| x * 2));
        g.finish();
        let json = std::fs::read_to_string(dir.join("BENCH_unit.json")).unwrap();
        assert!(json.contains("\"group\": \"unit\""), "{json}");
        assert!(json.contains("param/7"), "{json}");
        assert!(
            json.contains(&format!("\"samples\": {MIN_SAMPLES}")),
            "sample floor not enforced: {json}"
        );
        std::env::remove_var("NETREC_BENCH_DIR");
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("isp", 3).id, "isp/3");
        assert_eq!(BenchmarkId::from_parameter(0.5).id, "0.5");
    }
}
