//! Offline stand-in for the subset of the `rand` API used by `netrec`.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen`
//! (uniform `f64`/`bool`) and `Rng::gen_range` over integer and float
//! ranges. The generator is splitmix64: deterministic per seed, which is
//! all the topology/disruption generators need. Not cryptographic, and the
//! streams differ from the real `StdRng` — experiment seeds are local to
//! this workspace, so only internal reproducibility matters.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types samplable uniformly from raw generator output ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits into [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is ~span/2^64: irrelevant for test-scale spans.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample of `T` (`f64` in `[0, 1)`, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (API stand-in for
    /// `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
