//! Offline stand-in for the subset of the `proptest` API used by the
//! `netrec` test suites.
//!
//! Implements random-input property testing: the [`proptest!`] macro,
//! a [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map`, range / tuple / vec strategies, `any::<bool>()`,
//! `Just`, assumptions, and deterministic per-test seeding. Unlike the
//! real proptest it does **not** shrink failing inputs — a failure
//! reports the case number so the run can be reproduced (seeding is a
//! pure function of the test name and case number).

#![forbid(unsafe_code)]

/// Deterministic splitmix64 RNG driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `usize` below `bound` (> 0).
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample below 0");
        (self.next_u64() % bound as u64) as usize
    }
}

/// FNV-1a over a test name: stable per-test base seed.
pub fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, builds a dependent strategy from it, and
        /// draws from that.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (API compatibility).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

    trait ErasedStrategy<T> {
        fn erased_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> ErasedStrategy<S::Value> for S {
        fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.erased_generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let first = self.inner.generate(rng);
            (self.f)(first).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (self.end() - self.start()) as u64 + 1;
                    self.start() + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.next_f64() * (self.end() - self.start())
        }
    }

    /// A `Vec` of strategies generates element-wise (used e.g. for a
    /// per-node anchor range list).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical “any value” strategy ([`super::arbitrary`]).
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    /// The strategy returned by [`super::arbitrary::any`].
    pub struct AnyStrategy<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` entry point.

    use super::strategy::{AnyStrategy, Arbitrary};

    /// An arbitrary-value strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Length specifications accepted by [`vec()`]: a fixed `usize` or a
    /// `Range<usize>`.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                return self.start;
            }
            self.start + rng.next_below(self.end - self.start)
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` strategy with the given element strategy and length spec.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    //! Run configuration and failure reporting.

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases to run per property.
        pub cases: u32,
        /// Give up after this many rejections (via `prop_assume!`)
        /// without an accepted case.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A configuration running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by an assumption; another is drawn.
        Reject(String),
        /// The property failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs each listed property over randomly generated inputs.
///
/// Supported form (a subset of the real macro):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0usize..10, v in proptest::collection::vec(0.0f64..1.0, 5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg) $($rest)*);
    };
    (@body ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let base = $crate::name_seed(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                while accepted < config.cases {
                    let mut rng = $crate::TestRng::new(base ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
                    case += 1;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "property {}: too many rejected cases ({} accepted so far)",
                                    stringify!($name), accepted
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed at case #{}: {}",
                                stringify!($name), case - 1, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {} ({:?} vs {:?})",
                    stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects the current case (drawing a fresh one) unless the condition
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_match_spec(
            fixed in crate::collection::vec(0u64..5, 7),
            ranged in crate::collection::vec(0u64..5, 2..6),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!(ranged.len() >= 2 && ranged.len() < 6);
        }

        #[test]
        fn flat_map_threads_dependencies(pair in (2usize..8).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, k) = pair;
            prop_assert!(k < n, "k={} n={}", k, n);
        }

        #[test]
        fn assume_rejects_and_retries(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn failures_panic_with_case_number() {
        let result = std::panic::catch_unwind(|| {
            // No #[test] attribute: the runner function is invoked by hand.
            proptest! {
                fn always_fails(_x in 0usize..2) {
                    prop_assert!(false, "doomed");
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("doomed"), "{msg}");
        assert!(msg.contains("case #"), "{msg}");
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::name_seed("abc"), crate::name_seed("abc"));
        assert_ne!(crate::name_seed("abc"), crate::name_seed("abd"));
    }
}
