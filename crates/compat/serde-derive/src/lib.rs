//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace builds without network access, so the real `serde` cannot
//! be fetched. The `netrec` crates only use `#[derive(Serialize,
//! Deserialize)]` as forward-looking annotations (no code serializes
//! through serde yet), so the derives can safely expand to nothing. When
//! the real serde is available, point the `serde` workspace dependency at
//! crates.io and delete `crates/compat`.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts the input and emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts the input and emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
