//! Offline API stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derives so that
//! `use serde::{Deserialize, Serialize};` plus `#[derive(...)]` compiles
//! without network access. See `crates/compat/serde-derive` for details.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
