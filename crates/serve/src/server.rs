//! Transports and scheduling around the [`Engine`].
//!
//! A [`Server`] owns a bounded worker pool fed by a per-session FIFO
//! scheduler: requests for the same session execute strictly in arrival
//! order (one at a time — the state-machine semantics clients rely on),
//! while distinct sessions round-robin across workers, so a slow
//! `query_plan` in one session cannot starve another session's
//! routability queries.
//!
//! Responses go through a per-connection **output sequencer**: every
//! request gets a sequence number at read time, and response lines are
//! written strictly in that order regardless of which worker finishes
//! first. Daemon output for a given input stream is therefore
//! byte-deterministic — the property the CI golden diff and the replay
//! determinism test pin — without giving up parallelism across
//! sessions.
//!
//! # Failure containment (`DESIGN.md` §14)
//!
//! Workers run each dispatch under [`std::panic::catch_unwind`]: a
//! panic while a request executes becomes a typed `internal_error`
//! reply, poisons only that request's session (later requests against
//! it get `session_poisoned`), and leaves every other session and the
//! pool itself untouched. A worker that dies *outside* the protected
//! region respawns, so pool capacity cannot decay. The scheduler is
//! bounded ([`ServerConfig`]): past the global or per-session queue
//! limits, requests are shed at read time with a typed `overloaded`
//! error carrying a `retry_after_ms` hint from an EWMA of recent
//! service times — only `shutdown` bypasses the bound, so the drain
//! path survives any overload.
//!
//! Latency is recorded per operation as each request is processed and
//! summarized (count, p50, p99) in a [`ServeReport`]; the CLI prints it
//! to stderr so stdout stays pure protocol.

use crate::engine::Engine;
use crate::protocol::{Op, Request, Response};
use crate::wal::Wal;
use netrec_json::Json;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io::{BufRead, Read, Write};
use std::net::TcpListener;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Wire name used in latency accounting for lines rejected before
/// dispatch (parse/version errors have no [`Op`]).
const PROTOCOL_ERROR_OP: &str = "protocol_error";

/// Tuning knobs for the server's containment behavior.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Global bound on requests admitted and not yet completed
    /// (queued + executing). Past it, non-shutdown requests are shed
    /// with `overloaded`.
    pub max_queue: usize,
    /// Per-session bound on *pending* (not yet started) requests. A
    /// single chatty session fills its own queue and gets shed without
    /// consuming the global budget other sessions need.
    pub max_session_queue: usize,
    /// TCP read timeout: how often an idle connection thread wakes to
    /// check the shutdown latch. Also the bound on how long a hung
    /// client can delay its own connection thread's exit.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_queue: 1024,
            max_session_queue: 256,
            read_timeout: Duration::from_millis(200),
        }
    }
}

/// One queued request: where to answer (connection + slot), the
/// read-order request index (fault-schedule key), when it was admitted
/// (deadline accounting starts here), and what to run.
struct Job {
    conn: Arc<ConnOut>,
    seq: u64,
    index: u64,
    enqueued_at: Instant,
    /// The request's write-ahead log sequence number, when a WAL is
    /// armed — stamped onto the reply so a reconnecting client can tell
    /// durable events from lost-unacked ones.
    wal_seq: Option<u64>,
    req: Request,
}

/// Per-session FIFO scheduler state (guarded by [`Scheduler::state`]).
struct SchedState {
    /// Pending jobs per session, in arrival order.
    per_session: HashMap<String, VecDeque<Job>>,
    /// Sessions with pending work that no worker currently owns.
    run_queue: VecDeque<String>,
    /// Membership index for `run_queue` (no duplicate entries).
    queued: HashSet<String>,
    /// Sessions a worker is currently executing.
    active: HashSet<String>,
    /// Jobs admitted (reserved) and not yet completed.
    in_flight: usize,
    /// EWMA of per-job service time in microseconds (retry hints).
    ewma_us: f64,
    /// Set by [`Server::finish`]: workers exit once drained.
    stopping: bool,
    /// Set while a WAL checkpoint quiesces the pool: non-shutdown
    /// admissions block until the checkpoint installs.
    paused: bool,
}

impl Default for SchedState {
    fn default() -> Self {
        SchedState {
            per_session: HashMap::new(),
            run_queue: VecDeque::new(),
            queued: HashSet::new(),
            active: HashSet::new(),
            in_flight: 0,
            // Seed estimate: a cheap warm query. The EWMA converges to
            // the real mix within a handful of completions.
            ewma_us: 1_000.0,
            stopping: false,
            paused: false,
        }
    }
}

struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
    workers: usize,
    max_queue: usize,
    max_session_queue: usize,
}

impl Scheduler {
    fn new(workers: usize, config: &ServerConfig) -> Self {
        Scheduler {
            state: Mutex::new(SchedState::default()),
            cv: Condvar::new(),
            workers: workers.max(1),
            max_queue: config.max_queue.max(1),
            max_session_queue: config.max_session_queue.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        // Worker panics are caught around dispatch, never while holding
        // this lock; recover defensively anyway — scheduler state is
        // only mutated under short, panic-free critical sections.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Phase one of admission: claims an in-flight slot, or rejects
    /// when the queue bounds are exceeded. `force` (shutdown) bypasses
    /// both the bounds and a checkpoint pause: the drain path must stay
    /// reachable under any overload and cannot deadlock behind a
    /// quiesce. Admission is split from [`Scheduler::enqueue`] so the
    /// write-ahead append can sit between them — a request's log record
    /// exists before any worker can see the job, and a checkpoint's
    /// drain barrier ([`Scheduler::pause_and_drain`]) cannot catch a
    /// request after its append but outside the state it snapshots.
    ///
    /// # Errors
    ///
    /// A `retry_after_ms` hint — the estimated time for the pool to
    /// drain the current backlog.
    fn reserve(&self, session: &str, force: bool) -> Result<(), u64> {
        let mut st = self.lock();
        while st.paused && !force {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if !force {
            let session_pending = st.per_session.get(session).map_or(0, VecDeque::len);
            if st.in_flight >= self.max_queue || session_pending >= self.max_session_queue {
                let backlog = st.in_flight.max(1) as f64;
                let retry_ms = (backlog * st.ewma_us / self.workers as f64 / 1_000.0).ceil() as u64;
                return Err(retry_ms.clamp(1, 30_000));
            }
        }
        st.in_flight += 1;
        Ok(())
    }

    /// Releases a reservation whose write-ahead append failed: the
    /// request was never logged, so it must never run.
    fn unreserve(&self) {
        let mut st = self.lock();
        st.in_flight -= 1;
        self.cv.notify_all();
    }

    /// Phase two of admission: queues a reserved job for the pool.
    fn enqueue(&self, session: String, job: Job) {
        let mut st = self.lock();
        st.per_session
            .entry(session.clone())
            .or_default()
            .push_back(job);
        if !st.active.contains(&session) && st.queued.insert(session.clone()) {
            st.run_queue.push_back(session);
        }
        self.cv.notify_one();
    }

    /// Checkpoint quiesce: blocks new (non-shutdown) admissions and
    /// waits until every reserved job has completed. On return the pool
    /// is idle and every appended WAL record's effects are in session
    /// state — exactly what a checkpoint must capture.
    fn pause_and_drain(&self) {
        let mut st = self.lock();
        st.paused = true;
        while st.in_flight > 0 {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Lifts the checkpoint pause.
    fn resume(&self) {
        self.lock().paused = false;
        self.cv.notify_all();
    }

    /// Jobs admitted and not yet completed (the `health` op's queue
    /// depth).
    fn depth(&self) -> usize {
        self.lock().in_flight
    }

    /// Blocks for the next runnable job; `None` means drained-and-stopping.
    fn next(&self) -> Option<(String, Job)> {
        let mut st = self.lock();
        loop {
            while let Some(session) = st.run_queue.pop_front() {
                st.queued.remove(&session);
                // Invariant: a queued session has pending jobs. If the
                // invariant is ever violated, a phantom entry must not
                // take the whole daemon down (this was a hard panic
                // once) — log it, skip it, keep serving.
                match st
                    .per_session
                    .get_mut(&session)
                    .and_then(VecDeque::pop_front)
                {
                    Some(job) => {
                        st.active.insert(session.clone());
                        return Some((session, job));
                    }
                    None => {
                        eprintln!(
                            "serve: scheduler invariant violation: queued session \
                             {session:?} has no pending jobs (skipped)"
                        );
                        st.per_session.remove(&session);
                    }
                }
            }
            if st.stopping && st.in_flight == 0 {
                return None;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Marks a job finished; re-queues the session if it has more work.
    fn complete(&self, session: String, service_time: Duration) {
        let mut st = self.lock();
        st.active.remove(&session);
        let more = st.per_session.get(&session).is_some_and(|q| !q.is_empty());
        if more {
            if st.queued.insert(session.clone()) {
                st.run_queue.push_back(session);
            }
        } else {
            st.per_session.remove(&session);
        }
        st.in_flight -= 1;
        st.ewma_us = 0.8 * st.ewma_us + 0.2 * service_time.as_micros() as f64;
        self.cv.notify_all();
    }

    fn stop(&self) {
        self.lock().stopping = true;
        self.cv.notify_all();
    }
}

/// Per-connection response sequencer: responses are buffered until
/// every earlier slot has been written, so output order equals request
/// order no matter which worker finishes first.
struct ConnOut {
    inner: Mutex<ConnOutInner>,
}

struct ConnOutInner {
    next: u64,
    buffered: BTreeMap<u64, String>,
    sink: Box<dyn Write + Send>,
}

impl ConnOut {
    fn new(sink: Box<dyn Write + Send>) -> Self {
        ConnOut {
            inner: Mutex::new(ConnOutInner {
                next: 0,
                buffered: BTreeMap::new(),
                sink,
            }),
        }
    }

    /// Hands in the response for slot `seq`; writes every response line
    /// that is now contiguous. Write failures are swallowed — a client
    /// that hung up cannot take the daemon down.
    fn deliver(&self, seq: u64, line: String) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.buffered.insert(seq, line);
        loop {
            let next = inner.next;
            match inner.buffered.remove(&next) {
                Some(line) => {
                    inner.next += 1;
                    let _ = writeln!(inner.sink, "{line}");
                }
                None => break,
            }
        }
        let _ = inner.sink.flush();
    }
}

/// Per-op latency samples in microseconds.
#[derive(Default)]
struct Latencies(Mutex<HashMap<String, Vec<u64>>>);

impl Latencies {
    fn record(&self, op: &str, elapsed: Duration) {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(op.to_string())
            .or_default()
            .push(elapsed.as_micros() as u64);
    }
}

/// Latency summary for one operation class.
#[derive(Debug, Clone)]
pub struct OpLatency {
    /// Operation wire name (or `protocol_error`).
    pub op: String,
    /// Requests processed.
    pub count: usize,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
}

/// What a server run did, rendered to stderr by the CLI on shutdown.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Total requests processed (including rejected lines).
    pub requests: usize,
    /// Per-op latency summaries, sorted by op name.
    pub per_op: Vec<OpLatency>,
}

impl ServeReport {
    /// Renders the stderr summary, one `serve: op=… count=… p50_us=…
    /// p99_us=…` line per op (stable order) — the format the CI latency
    /// gate parses.
    pub fn render(&self) -> String {
        let mut out = format!("serve: requests={}\n", self.requests);
        for op in &self.per_op {
            out.push_str(&format!(
                "serve: op={} count={} p50_us={} p99_us={}\n",
                op.op, op.count, op.p50_us, op.p99_us
            ));
        }
        out
    }

    /// The summary for `op`, if any requests of that class ran.
    pub fn op(&self, op: &str) -> Option<&OpLatency> {
        self.per_op.iter().find(|l| l.op == op)
    }
}

fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as u64 * pct).div_euclid(100) as usize;
    sorted[idx]
}

/// State shared by the reader threads and the worker pool.
struct Shared {
    engine: Arc<Engine>,
    sched: Scheduler,
    latencies: Latencies,
    /// The engine's write-ahead log, cached here so the read path can
    /// append without an engine call per line.
    wal: Option<Arc<Wal>>,
    /// Serializes checkpoint cycles: two readers may see
    /// `checkpoint_due` at once, and a second quiesce must not begin
    /// until the first has fully installed (resuming admissions while
    /// another install is still truncating segments could delete
    /// records appended after its snapshot).
    checkpoint_lock: Mutex<()>,
    /// Read-order index source for dispatched requests (fault-schedule
    /// key): assigned at *read* time, before any queueing, so the same
    /// input stream maps indices identically at any worker count.
    request_counter: AtomicU64,
    /// Test hook: request index after which the executing worker
    /// panics *post-delivery* (exercises the respawn path; `u64::MAX`
    /// disarms). Fires once.
    #[cfg(test)]
    panic_after: AtomicU64,
}

impl Shared {
    #[cfg(test)]
    fn take_post_delivery_panic(&self, index: u64) -> bool {
        self.panic_after
            .compare_exchange(index, u64::MAX, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }
}

/// Renders a panic payload into the deterministic part of an
/// `internal_error` message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Spawns one pool worker and records its handle for `finish` to join.
fn spawn_worker(shared: Arc<Shared>, handles: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    let handle = {
        let handles = Arc::clone(&handles);
        std::thread::spawn(move || worker_loop(shared, handles))
    };
    handles
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(handle);
}

/// Re-arms pool capacity when a worker dies outside the catch_unwind
/// region (deliver/complete — our own code, but a respawn is cheap
/// insurance against capacity decay in a long-lived daemon).
struct RespawnGuard {
    shared: Arc<Shared>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("serve: worker died outside dispatch isolation; respawning");
            spawn_worker(Arc::clone(&self.shared), Arc::clone(&self.handles));
        }
    }
}

/// Guarantees `Scheduler::complete` runs exactly once per claimed job,
/// even if delivery panics — a stuck `active` session would silently
/// stall every later request against it.
struct CompleteGuard<'a> {
    sched: &'a Scheduler,
    session: Option<String>,
    started: Instant,
}

impl Drop for CompleteGuard<'_> {
    fn drop(&mut self) {
        if let Some(session) = self.session.take() {
            self.sched.complete(session, self.started.elapsed());
        }
    }
}

fn worker_loop(shared: Arc<Shared>, handles: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    let _respawn = RespawnGuard {
        shared: Arc::clone(&shared),
        handles,
    };
    while let Some((session, job)) = shared.sched.next() {
        let started = Instant::now();
        let completer = CompleteGuard {
            sched: &shared.sched,
            session: Some(session),
            started,
        };
        // Panic isolation: a panicking dispatch unwinds through the
        // session's MutexGuard (poisoning exactly that session) and is
        // converted here into a typed reply. The message keeps only the
        // panic text, which for injected faults is deterministic — the
        // chaos replay diffs these lines byte-for-byte across worker
        // counts.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            shared
                .engine
                .dispatch_indexed(&job.req, job.index, Some(job.enqueued_at))
        }));
        let response = match result {
            Ok(response) => response,
            Err(payload) => Response::error(
                Some(&job.req.id),
                "internal_error",
                &format!("worker panicked: {}", panic_message(payload)),
            ),
        };
        // Replies for logged requests carry their record's sequence
        // number — including internal_error replies, whose mutation
        // (if any) is just as durable as the panic-free case.
        let line = match job.wal_seq {
            Some(seq) => response
                .with_member("wal_seq", Json::Number(seq as f64))
                .to_line(),
            None => response.to_line(),
        };
        shared
            .latencies
            .record(job.req.op.name(), started.elapsed());
        job.conn.deliver(job.seq, line);
        drop(completer);
        #[cfg(test)]
        if shared.take_post_delivery_panic(job.index) {
            panic!("test hook: post-delivery worker crash");
        }
    }
}

/// The resident server: an [`Engine`] plus its worker pool.
pub struct Server {
    shared: Arc<Shared>,
    worker_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    config: ServerConfig,
}

impl Server {
    /// Spawns `workers` worker threads over `engine` (clamped to ≥ 1)
    /// with the default [`ServerConfig`].
    pub fn new(engine: Arc<Engine>, workers: usize) -> Self {
        Server::with_config(engine, workers, ServerConfig::default())
    }

    /// Spawns `workers` worker threads over `engine` (clamped to ≥ 1).
    pub fn with_config(engine: Arc<Engine>, workers: usize, config: ServerConfig) -> Self {
        let workers = workers.max(1);
        let wal = engine.wal().cloned();
        let shared = Arc::new(Shared {
            engine,
            sched: Scheduler::new(workers, &config),
            latencies: Latencies::default(),
            wal,
            checkpoint_lock: Mutex::new(()),
            request_counter: AtomicU64::new(0),
            #[cfg(test)]
            panic_after: AtomicU64::new(u64::MAX),
        });
        let worker_handles = Arc::new(Mutex::new(Vec::with_capacity(workers)));
        for _ in 0..workers {
            spawn_worker(Arc::clone(&shared), Arc::clone(&worker_handles));
        }
        Server {
            shared,
            worker_handles,
            conn_threads: Mutex::new(Vec::new()),
            config,
        }
    }

    /// The engine behind this server.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// Test hook: the executing worker panics (post-delivery) after the
    /// request with read-order index `index` — exercises worker
    /// respawn.
    #[cfg(test)]
    fn panic_worker_after(&self, index: u64) {
        self.shared.panic_after.store(index, Ordering::SeqCst);
    }

    /// Serves one connection on the calling thread until EOF or a
    /// `shutdown` request is read. Returns the number of lines read.
    ///
    /// Lines are sequenced as they arrive: protocol rejections and
    /// overload sheds answer immediately through the sequencer, valid
    /// requests queue for the pool. After a `shutdown` line the reader
    /// stops consuming input ("stop accepting"); its response still
    /// flushes once the queue drains.
    pub fn serve_connection(&self, reader: impl BufRead, sink: Box<dyn Write + Send>) -> usize {
        let conn = Arc::new(ConnOut::new(sink));
        let mut seq = 0u64;
        for line in reader.lines() {
            let line = match line {
                Ok(line) => line,
                Err(_) => break,
            };
            if line.trim().is_empty() {
                continue;
            }
            let slot = seq;
            seq += 1;
            if read_one_line(&self.shared, &conn, slot, &line) {
                break;
            }
        }
        seq as usize
    }

    /// Accepts TCP connections until the engine shuts down, one thread
    /// per connection. The listener is polled (non-blocking + sleep) so
    /// a `shutdown` arriving on any transport stops the accept loop
    /// within one poll interval.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures.
    pub fn serve_tcp(&self, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        while !self.shared.engine.is_shutting_down() {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    stream.set_nonblocking(false)?;
                    // Finite read timeout so the connection thread
                    // notices shutdown even when its client stays
                    // silent with the socket open (half-open hardening:
                    // a hung or vanished client costs one parked
                    // connection thread, never a pool worker).
                    stream.set_read_timeout(Some(self.config.read_timeout))?;
                    let sink = Box::new(stream.try_clone()?);
                    let handle = {
                        let shared = Arc::clone(&self.shared);
                        std::thread::spawn(move || {
                            serve_tcp_connection(shared, stream, sink);
                        })
                    };
                    self.conn_threads
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(handle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Drains queued work, stops the pool, joins every thread
    /// (including respawned workers), and returns the latency report.
    pub fn finish(self) -> ServeReport {
        self.shared.sched.stop();
        // Joining pops one handle at a time: a worker that dies during
        // drain pushes its replacement before its own join returns, so
        // the loop always sees (and joins) respawns too.
        loop {
            let handle = self
                .worker_handles
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop();
            match handle {
                Some(handle) => {
                    let _ = handle.join();
                }
                None => break,
            }
        }
        let conn_threads = self
            .conn_threads
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        for t in conn_threads {
            let _ = t.join();
        }
        let table = self
            .shared
            .latencies
            .0
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut per_op: Vec<OpLatency> = table
            .iter()
            .map(|(op, samples)| {
                let mut sorted = samples.clone();
                sorted.sort_unstable();
                OpLatency {
                    op: op.clone(),
                    count: sorted.len(),
                    p50_us: percentile(&sorted, 50),
                    p99_us: percentile(&sorted, 99),
                }
            })
            .collect();
        per_op.sort_by(|a, b| a.op.cmp(&b.op));
        ServeReport {
            requests: per_op.iter().map(|l| l.count).sum(),
            per_op,
        }
    }
}

/// Handles one read line: parse, index, write-ahead log, admit (or
/// shed), and reply inline for protocol errors and `health`. Returns
/// `true` when the line was a `shutdown` request (the reader should
/// stop consuming input).
fn read_one_line(shared: &Arc<Shared>, conn: &Arc<ConnOut>, slot: u64, line: &str) -> bool {
    match Request::parse(line) {
        Ok(req) => {
            // Health answers at read time: shed-exempt (it must work
            // *because* the daemon is overloaded), consumes no request
            // index (a polling supervisor must not shift the fault
            // schedule), and is never WAL-logged (probes are not
            // events).
            if matches!(req.op, Op::Health) {
                let started = Instant::now();
                let response = shared
                    .engine
                    .health_response(&req.id, Some(shared.sched.depth()));
                shared.latencies.record(req.op.name(), started.elapsed());
                conn.deliver(slot, response.to_line());
                return false;
            }
            let is_shutdown = matches!(req.op, Op::Shutdown);
            let op_name = req.op.name();
            let index = shared.request_counter.fetch_add(1, Ordering::SeqCst);
            // Bounded-log maintenance rides the read path: when enough
            // records have accumulated, quiesce, snapshot every
            // session, and truncate — *before* this request is
            // admitted, so its own record lands after the checkpoint.
            if let Some(wal) = &shared.wal {
                if wal.checkpoint_due() {
                    checkpoint_now(shared, wal);
                }
            }
            if let Err(retry_after_ms) = shared.sched.reserve(req.session_name(), is_shutdown) {
                let response = Response::error_with(
                    Some(&req.id),
                    "overloaded",
                    "queue full; retry after the hinted backoff",
                    vec![("retry_after_ms", Json::Number(retry_after_ms as f64))],
                );
                shared.latencies.record(op_name, Duration::ZERO);
                conn.deliver(slot, response.to_line());
                return is_shutdown;
            }
            // Write-ahead: the admitted request is logged and made
            // durable per policy before any worker can execute it. The
            // injected crash faults fire here — after admission, at or
            // mid-append — the exact window the kill-loop harness
            // sweeps. Shed requests above were never logged: no reply
            // was promised, so no durability is owed.
            let mut wal_seq = None;
            if let Some(wal) = &shared.wal {
                let faults = shared
                    .engine
                    .fault_plan()
                    .map(|plan| plan.faults_at(index))
                    .unwrap_or_default();
                wal.crash_abort(&faults);
                wal.torn_abort(line, &faults);
                match wal.append_line(line) {
                    Ok(seq) => wal_seq = Some(seq),
                    Err(e) => {
                        // Unlogged means unexecuted: release the slot
                        // and refuse, or the reply would acknowledge an
                        // event recovery cannot reproduce.
                        shared.sched.unreserve();
                        let response = Response::error(
                            Some(&req.id),
                            "io_error",
                            &format!("write-ahead append failed; event not accepted: {e}"),
                        );
                        shared.latencies.record(op_name, Duration::ZERO);
                        conn.deliver(slot, response.to_line());
                        return is_shutdown;
                    }
                }
            }
            let session = req.session_name().to_string();
            let job = Job {
                conn: Arc::clone(conn),
                seq: slot,
                index,
                enqueued_at: Instant::now(),
                wal_seq,
                req,
            };
            shared.sched.enqueue(session, job);
            is_shutdown
        }
        Err(e) => {
            let started = Instant::now();
            let response = Response::from(&e);
            shared
                .latencies
                .record(PROTOCOL_ERROR_OP, started.elapsed());
            conn.deliver(slot, response.to_line());
            false
        }
    }
}

/// One checkpoint cycle: quiesce the pool, snapshot every session at
/// the log's current high-water mark, install (atomic replace +
/// segment truncation), resume. Failures downgrade to a stderr warning
/// and the log is retained — the previous checkpoint plus the full
/// suffix still recovers, it is just longer. A poisoned session also
/// skips the cycle: its in-memory state is suspect, but its WAL history
/// is sound, and replaying that history at next boot resurrects the
/// session at its last pre-panic state.
fn checkpoint_now(shared: &Shared, wal: &Arc<Wal>) {
    let _serialize = shared
        .checkpoint_lock
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    // A racing reader may have just finished this cycle; re-check under
    // the lock so back-to-back quiesces don't stall the read path.
    if !wal.checkpoint_due() {
        return;
    }
    shared.sched.pause_and_drain();
    match shared.engine.checkpoint_doc(wal.appended_seq()) {
        Ok(doc) => {
            if let Err(e) = wal.install_checkpoint(&doc) {
                eprintln!("serve: wal checkpoint install failed (log retained): {e}");
            }
        }
        Err(why) => eprintln!("serve: wal checkpoint skipped: {why}"),
    }
    shared.sched.resume();
}

/// The TCP connection loop: like [`Server::serve_connection`] but
/// tolerant of read timeouts (used to poll the shutdown latch) and of
/// clients that disconnect mid-request — a torn trailing line without
/// its newline is dropped, never dispatched.
fn serve_tcp_connection(
    shared: Arc<Shared>,
    stream: std::net::TcpStream,
    sink: Box<dyn Write + Send>,
) {
    let conn = Arc::new(ConnOut::new(sink));
    let mut seq = 0u64;
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    let mut reader = std::io::BufReader::new(stream);
    'outer: loop {
        // Byte-at-a-time through a BufReader: simple, timeout-safe
        // line framing (read_line would lose partial data on timeout).
        buf.clear();
        loop {
            match reader.read(&mut byte) {
                Ok(0) => break 'outer,
                Ok(_) => {
                    if byte[0] == b'\n' {
                        break;
                    }
                    buf.push(byte[0]);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if shared.engine.is_shutting_down() {
                        break 'outer;
                    }
                }
                Err(_) => break 'outer,
            }
        }
        let line = String::from_utf8_lossy(&buf).into_owned();
        if line.trim().is_empty() {
            continue;
        }
        let slot = seq;
        seq += 1;
        if read_one_line(&shared, &conn, slot, &line) {
            break;
        }
    }
}

/// Convenience harness: run `input` (a whole JSONL stream) through a
/// fresh pool over `engine` and return `(stdout bytes, report)`.
/// The replay tests and the bench drive the daemon through this.
pub fn run_stream(engine: Arc<Engine>, workers: usize, input: &str) -> (String, ServeReport) {
    run_stream_with(engine, workers, input, ServerConfig::default())
}

/// [`run_stream`] with explicit [`ServerConfig`] knobs (chaos and
/// overload tests).
pub fn run_stream_with(
    engine: Arc<Engine>,
    workers: usize,
    input: &str,
    config: ServerConfig,
) -> (String, ServeReport) {
    let server = Server::with_config(engine, workers, config);
    let out = SharedBuf::default();
    server.serve_connection(input.as_bytes(), Box::new(out.clone()));
    let report = server.finish();
    (out.take(), report)
}

/// A `Write` handle over a shared byte buffer (test/bench sink).
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn take(&self) -> String {
        let bytes = std::mem::take(&mut *self.0.lock().unwrap_or_else(PoisonError::into_inner));
        String::from_utf8(bytes).expect("responses are UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::SyncPolicy;
    use netrec_core::solver::SolverSpec;
    use netrec_core::{FaultPlan, RecoveryProblem};
    use netrec_graph::Graph;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::path::{Path, PathBuf};

    fn problem() -> RecoveryProblem {
        let mut g = Graph::with_nodes(4);
        g.add_edge(g.node(0), g.node(1), 10.0).unwrap();
        g.add_edge(g.node(1), g.node(2), 10.0).unwrap();
        g.add_edge(g.node(2), g.node(3), 10.0).unwrap();
        g.add_edge(g.node(0), g.node(3), 10.0).unwrap();
        let mut p = RecoveryProblem::new(g);
        p.add_demand(p.graph().node(0), p.graph().node(3), 5.0)
            .unwrap();
        p
    }

    fn engine() -> Arc<Engine> {
        Arc::new(Engine::new(problem(), SolverSpec::parse("isp").unwrap()))
    }

    fn faulty_engine(spec: &str) -> Arc<Engine> {
        Arc::new(
            Engine::new(problem(), SolverSpec::parse("isp").unwrap())
                .with_faults(FaultPlan::parse(spec).unwrap()),
        )
    }

    const STREAM: &str = r#"{"v":1,"id":"q0","op":"query_routability"}
{"v":1,"id":"d1","op":"disrupt","edges":[1,3],"cost":1.0}
not json at all
{"v":1,"id":"q1","op":"query_routability"}
{"v":1,"id":"p1","op":"query_plan","solver":"isp"}
{"v":1,"id":"z","op":"shutdown"}
"#;

    #[test]
    fn output_order_matches_input_order_at_any_worker_count() {
        let expected_ids = [
            Some("q0"),
            Some("d1"),
            None,
            Some("q1"),
            Some("p1"),
            Some("z"),
        ];
        let mut outputs = Vec::new();
        for workers in [1, 4] {
            let (out, report) = run_stream(engine(), workers, STREAM);
            let ids: Vec<Option<String>> = out
                .lines()
                .map(|l| Response::parse(l).unwrap().id().map(str::to_string))
                .collect();
            assert_eq!(
                ids,
                expected_ids
                    .iter()
                    .map(|o| o.map(str::to_string))
                    .collect::<Vec<_>>(),
                "workers={workers}"
            );
            assert_eq!(report.requests, 6);
            assert!(report.op("query_routability").unwrap().count == 2);
            assert!(report.op("protocol_error").is_some());
            outputs.push(out);
        }
        assert_eq!(
            outputs[0], outputs[1],
            "stdout is byte-identical regardless of pool size"
        );
    }

    #[test]
    fn sessions_make_progress_despite_a_slow_neighbor() {
        // A heavy plan request on session "slow" queues first; queries
        // on session "fast" still answer (round-robin across sessions)
        // and the final output order is the input order.
        let stream = r#"{"v":1,"id":"a","session":"slow","op":"disrupt","edges":[1,3],"cost":1.0}
{"v":1,"id":"b","session":"slow","op":"query_plan","solver":"opt"}
{"v":1,"id":"c","session":"fast","op":"query_routability"}
{"v":1,"id":"d","session":"fast","op":"query_routability"}
{"v":1,"id":"z","op":"shutdown"}
"#;
        let (out, _) = run_stream(engine(), 2, stream);
        let ids: Vec<&str> = out
            .lines()
            .map(|l| {
                let r = Response::parse(l).unwrap();
                assert!(r.is_ok(), "{l}");
                ""
            })
            .collect();
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn injected_panic_is_contained_to_its_session() {
        // panic@1 fires during d1 (session "default"): the mutation
        // lands, the reply is replaced by internal_error, the session
        // poisons. Later default-session requests get session_poisoned;
        // the "side" session keeps answering; shutdown still drains.
        let stream = r#"{"v":1,"id":"q0","op":"query_routability"}
{"v":1,"id":"d1","op":"disrupt","edges":[1,3],"cost":1.0}
{"v":1,"id":"q1","op":"query_routability"}
{"v":1,"id":"s1","session":"side","op":"query_routability"}
{"v":1,"id":"z","op":"shutdown"}
"#;
        let mut outputs = Vec::new();
        for workers in [1, 4] {
            let (out, _) = run_stream(faulty_engine("panic@1"), workers, stream);
            let replies: Vec<Response> = out.lines().map(|l| Response::parse(l).unwrap()).collect();
            assert_eq!(
                replies.len(),
                5,
                "workers={workers}: every request answered"
            );
            assert!(replies[0].is_ok());
            assert_eq!(replies[1].error_kind(), Some("internal_error"));
            assert!(
                replies[1]
                    .to_line()
                    .contains("injected panic after disrupt (request index 1)"),
                "deterministic panic message: {}",
                replies[1].to_line()
            );
            assert_eq!(replies[2].error_kind(), Some("session_poisoned"));
            assert!(replies[3].is_ok(), "other sessions unaffected");
            assert!(replies[4].is_ok(), "shutdown drains past poisoned sessions");
            outputs.push(out);
        }
        assert_eq!(outputs[0], outputs[1], "containment is byte-deterministic");
    }

    #[test]
    fn overload_sheds_with_typed_retry_hints_and_never_sheds_shutdown() {
        // latency@0 holds the single worker for 300ms while the reader
        // (same thread, instant) floods the queue past max_queue=2.
        let stream = r#"{"v":1,"id":"a","op":"query_routability"}
{"v":1,"id":"b","op":"query_routability"}
{"v":1,"id":"c","op":"query_routability"}
{"v":1,"id":"d","op":"query_routability"}
{"v":1,"id":"z","op":"shutdown"}
"#;
        let config = ServerConfig {
            max_queue: 2,
            ..ServerConfig::default()
        };
        let (out, _) = run_stream_with(faulty_engine("latency@0:300"), 1, stream, config);
        let replies: Vec<Response> = out.lines().map(|l| Response::parse(l).unwrap()).collect();
        assert_eq!(replies.len(), 5, "shed requests still get replies in order");
        assert!(replies[0].is_ok());
        let shed: Vec<&Response> = replies
            .iter()
            .filter(|r| r.error_kind() == Some("overloaded"))
            .collect();
        assert!(!shed.is_empty(), "the flood must shed: {out}");
        for r in &shed {
            let retry = r
                .json()
                .get("error")
                .and_then(|e| e.get("retry_after_ms"))
                .and_then(Json::as_u64)
                .unwrap();
            assert!(retry >= 1, "{}", r.to_line());
        }
        let z = replies.last().unwrap();
        assert!(z.is_ok(), "shutdown bypasses the bound: {}", z.to_line());
    }

    #[test]
    fn worker_respawns_after_a_post_delivery_crash() {
        // One worker, a crash after request index 1: without respawn
        // the remaining requests would never execute and finish() would
        // hang on an undrained queue.
        let server = Server::with_config(engine(), 1, ServerConfig::default());
        server.panic_worker_after(1);
        let out = SharedBuf::default();
        server.serve_connection(STREAM.as_bytes(), Box::new(out.clone()));
        let report = server.finish();
        let out = out.take();
        assert_eq!(out.lines().count(), 6, "all requests answered:\n{out}");
        for line in out.lines() {
            Response::parse(line).unwrap();
        }
        assert_eq!(report.requests, 6);
    }

    #[test]
    fn scheduler_skips_phantom_queue_entries() {
        // Regression: a queued session with no pending jobs was a hard
        // `.expect` panic in the worker loop. Inject the corrupt state
        // directly and prove next() skips it and still drains.
        let sched = Scheduler::new(1, &ServerConfig::default());
        {
            let mut st = sched.lock();
            st.queued.insert("ghost".to_string());
            st.run_queue.push_back("ghost".to_string());
        }
        sched.stop();
        assert!(sched.next().is_none(), "phantom skipped, drain reported");
    }

    fn wal_scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("netrec_server_wal_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// The sim crate's boot sequence in miniature: open the log,
    /// restore checkpoint + replay suffix, attach.
    fn wal_engine(dir: &Path, segment_records: u64) -> Arc<Engine> {
        let (wal, boot) = Wal::open(dir, SyncPolicy::Always, segment_records).unwrap();
        let engine = Engine::new(problem(), SolverSpec::parse("isp").unwrap());
        if let Some(cp) = &boot.checkpoint {
            engine.restore_checkpoint(cp).unwrap();
        }
        for record in &boot.records {
            engine.apply_replay(&record.line).unwrap();
        }
        engine.attach_wal(Arc::new(wal));
        Arc::new(engine)
    }

    #[test]
    fn wal_replies_carry_wal_seq_and_recovery_replays_the_log() {
        let dir = wal_scratch("seq");
        let stream = r#"{"v":1,"id":"d1","op":"disrupt","edges":[1,3],"cost":1.0}
{"v":1,"id":"h1","op":"health"}
{"v":1,"id":"q1","op":"query_routability"}
{"v":1,"id":"z","op":"shutdown"}
"#;
        let (out, _) = run_stream(wal_engine(&dir, 1024), 2, stream);
        let replies: Vec<Response> = out.lines().map(|l| Response::parse(l).unwrap()).collect();
        assert_eq!(replies.len(), 4);
        // Logged requests carry their record seq; health is not logged
        // but reports the log's high-water mark.
        let seq_of = |r: &Response| r.json().get("wal_seq").and_then(Json::as_u64);
        assert_eq!(seq_of(&replies[0]), Some(1), "{out}");
        assert_eq!(seq_of(&replies[1]), Some(1), "health high-water: {out}");
        assert!(
            // Read-time depth: the preceding disrupt may still be in
            // flight, so only the member's presence is deterministic.
            replies[1]
                .json()
                .get("queue_depth")
                .and_then(Json::as_u64)
                .is_some(),
            "{out}"
        );
        assert_eq!(seq_of(&replies[2]), Some(2));
        assert_eq!(seq_of(&replies[3]), Some(3));

        // A fresh engine over the same directory replays the log: the
        // disruption survives the "crash" (health left no record).
        let recovered = wal_engine(&dir, 1024);
        let reply = recovered.process_line(r#"{"v":1,"id":"s","op":"snapshot"}"#);
        let snap = Response::parse(&reply).unwrap();
        assert_eq!(
            snap.json().get("broken_edges").and_then(Json::as_u64),
            Some(2),
            "{reply}"
        );
        // And live appends continue after the replayed suffix.
        let (out2, _) = run_stream(
            recovered,
            1,
            "{\"v\":1,\"id\":\"d2\",\"op\":\"repair\",\"edges\":[1]}\n",
        );
        let r = Response::parse(out2.trim_end()).unwrap();
        assert_eq!(seq_of(&r), Some(4), "{out2}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_checkpoints_quiesce_truncate_and_stay_byte_deterministic() {
        let dir1 = wal_scratch("ckpt_a");
        let dir2 = wal_scratch("ckpt_b");
        // 14 logged requests against a 4-record segment cap: several
        // checkpoint cycles ride the read path mid-stream.
        let mut stream = String::new();
        for i in 0..6 {
            stream.push_str(&format!(
                "{{\"v\":1,\"id\":\"d{i}\",\"op\":\"disrupt\",\"edges\":[{}],\"cost\":1.0}}\n",
                i % 4
            ));
            stream.push_str(&format!(
                "{{\"v\":1,\"id\":\"q{i}\",\"op\":\"query_routability\"}}\n"
            ));
        }
        stream.push_str("{\"v\":1,\"id\":\"r\",\"op\":\"repair\",\"edges\":[0,1,2,3]}\n");
        stream.push_str("{\"v\":1,\"id\":\"z\",\"op\":\"shutdown\"}\n");
        let (out_small, _) = run_stream(wal_engine(&dir1, 4), 4, &stream);
        let (out_large, _) = run_stream(wal_engine(&dir2, 1024), 4, &stream);
        assert_eq!(
            out_small, out_large,
            "checkpoint cycles must not change a single reply byte"
        );
        // The checkpoint bounded the log: far fewer than 14 records
        // remain on disk in the small-segment directory.
        let (_, boot) = Wal::open(&dir1, SyncPolicy::Always, 4).unwrap();
        let cp = boot.checkpoint.expect("a checkpoint was installed");
        assert!(
            cp.get("wal_seq").and_then(Json::as_u64).unwrap() >= 4,
            "{cp:?}"
        );
        assert!(
            boot.records.len() < 14,
            "suffix is bounded: {} records",
            boot.records.len()
        );
        // Both directories recover to identical *state*. (Only state:
        // dir1 recovers through its checkpoint, so its oracle cache is
        // cold and the snapshot's cumulative counters legitimately
        // differ — generation and damage are what durability promises.)
        let a = wal_engine(&dir1, 4);
        let b = wal_engine(&dir2, 1024);
        let probe = r#"{"v":1,"id":"s","op":"snapshot"}"#;
        let snap_a = Response::parse(&a.process_line(probe)).unwrap();
        let snap_b = Response::parse(&b.process_line(probe)).unwrap();
        for member in [
            "generation",
            "broken_nodes",
            "broken_edges",
            "events_applied",
        ] {
            assert_eq!(
                snap_a.json().get(member),
                snap_b.json().get(member),
                "{member}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir1);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn health_consumes_no_request_index_and_is_shed_exempt() {
        // panic@0 hits read-order index 0. If health consumed an index,
        // the disrupt after it would shift to index 1 and execute
        // cleanly; instead the disrupt must be the one that panics.
        let stream = r#"{"v":1,"id":"h0","op":"health"}
{"v":1,"id":"d0","op":"disrupt","edges":[1],"cost":1.0}
{"v":1,"id":"z","op":"shutdown"}
"#;
        let (out, report) = run_stream(faulty_engine("panic@0"), 1, stream);
        let replies: Vec<Response> = out.lines().map(|l| Response::parse(l).unwrap()).collect();
        assert_eq!(replies.len(), 3);
        assert!(replies[0].is_ok(), "{out}");
        assert_eq!(
            replies[0].json().get("op").and_then(Json::as_str),
            Some("health")
        );
        assert!(
            replies[0]
                .json()
                .get("queue_depth")
                .and_then(Json::as_u64)
                .is_some(),
            "server-side health reports queue depth: {out}"
        );
        assert_eq!(
            replies[1].error_kind(),
            Some("internal_error"),
            "health must not have consumed index 0: {out}"
        );
        assert_eq!(report.op("health").unwrap().count, 1);
    }

    #[test]
    fn tcp_round_trip_and_shutdown() {
        let engine = engine();
        let server = Arc::new(Server::new(Arc::clone(&engine), 2));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let acceptor = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.serve_tcp(listener).unwrap())
        };

        let mut client = TcpStream::connect(addr).unwrap();
        client
            .write_all(
                b"{\"v\":1,\"id\":\"t1\",\"op\":\"query_routability\"}\n{\"v\":1,\"id\":\"t2\",\"op\":\"shutdown\"}\n",
            )
            .unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let r = Response::parse(line.trim_end()).unwrap();
        assert!(r.is_ok());
        assert_eq!(r.id(), Some("t1"));
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::parse(line.trim_end()).unwrap().id(), Some("t2"));

        acceptor.join().unwrap();
        assert!(engine.is_shutting_down());
        let report = Arc::try_unwrap(server)
            .ok()
            .expect("acceptor joined; sole owner")
            .finish();
        assert_eq!(report.op("shutdown").unwrap().count, 1);
    }

    #[test]
    fn hung_and_half_open_clients_cannot_wedge_the_daemon() {
        let engine = engine();
        let config = ServerConfig {
            read_timeout: Duration::from_millis(25),
            ..ServerConfig::default()
        };
        let server = Arc::new(Server::with_config(Arc::clone(&engine), 1, config));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let acceptor = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.serve_tcp(listener).unwrap())
        };

        // Client A: sends half a request (no newline) and goes silent —
        // a hung, half-open connection.
        let mut hung = TcpStream::connect(addr).unwrap();
        hung.write_all(b"{\"v\":1,\"id\":\"h1\",\"op\":\"query_rou")
            .unwrap();

        // Client B: full service while A hangs — the worker pool is
        // never parked on A's socket, only A's own reader thread is.
        let mut client = TcpStream::connect(addr).unwrap();
        client
            .write_all(b"{\"v\":1,\"id\":\"b1\",\"op\":\"query_routability\"}\n")
            .unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let r = Response::parse(line.trim_end()).unwrap();
        assert!(r.is_ok(), "served while a client hangs: {line}");
        assert_eq!(r.id(), Some("b1"));

        // Client C disconnects mid-request: the torn line is dropped,
        // nothing dispatches, nothing crashes.
        let mut torn = TcpStream::connect(addr).unwrap();
        torn.write_all(b"{\"v\":1,\"id\":\"t1\",\"op\":\"disrupt\"")
            .unwrap();
        drop(torn);

        client
            .write_all(b"{\"v\":1,\"id\":\"b2\",\"op\":\"shutdown\"}\n")
            .unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::parse(line.trim_end()).unwrap().id(), Some("b2"));

        drop(hung);
        acceptor.join().unwrap();
        // finish() joins A's and C's connection threads: the read
        // timeout guarantees they notice the shutdown latch.
        let report = Arc::try_unwrap(server)
            .ok()
            .expect("acceptor joined; sole owner")
            .finish();
        assert_eq!(report.op("query_routability").unwrap().count, 1);
        assert_eq!(
            report.op("disrupt").map(|l| l.count),
            None,
            "the torn request never dispatched"
        );
    }
}
