//! Transports and scheduling around the [`Engine`].
//!
//! A [`Server`] owns a bounded worker pool fed by a per-session FIFO
//! scheduler: requests for the same session execute strictly in arrival
//! order (one at a time — the state-machine semantics clients rely on),
//! while distinct sessions round-robin across workers, so a slow
//! `query_plan` in one session cannot starve another session's
//! routability queries.
//!
//! Responses go through a per-connection **output sequencer**: every
//! request gets a sequence number at read time, and response lines are
//! written strictly in that order regardless of which worker finishes
//! first. Daemon output for a given input stream is therefore
//! byte-deterministic — the property the CI golden diff and the replay
//! determinism test pin — without giving up parallelism across
//! sessions.
//!
//! Latency is recorded per operation as each request is processed and
//! summarized (count, p50, p99) in a [`ServeReport`]; the CLI prints it
//! to stderr so stdout stays pure protocol.

use crate::engine::Engine;
use crate::protocol::{Op, Request, Response};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io::{BufRead, Read, Write};
use std::net::TcpListener;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Wire name used in latency accounting for lines rejected before
/// dispatch (parse/version errors have no [`Op`]).
const PROTOCOL_ERROR_OP: &str = "protocol_error";

/// One queued request: where to answer (connection + slot) and what to
/// run.
struct Job {
    conn: Arc<ConnOut>,
    seq: u64,
    req: Request,
}

/// Per-session FIFO scheduler state (guarded by [`Scheduler::state`]).
#[derive(Default)]
struct SchedState {
    /// Pending jobs per session, in arrival order.
    per_session: HashMap<String, VecDeque<Job>>,
    /// Sessions with pending work that no worker currently owns.
    run_queue: VecDeque<String>,
    /// Membership index for `run_queue` (no duplicate entries).
    queued: HashSet<String>,
    /// Sessions a worker is currently executing.
    active: HashSet<String>,
    /// Jobs submitted and not yet completed.
    in_flight: usize,
    /// Set by [`Server::finish`]: workers exit once drained.
    stopping: bool,
}

struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl Scheduler {
    fn new() -> Self {
        Scheduler {
            state: Mutex::new(SchedState::default()),
            cv: Condvar::new(),
        }
    }

    fn submit(&self, session: String, job: Job) {
        let mut st = self.state.lock().expect("scheduler poisoned");
        st.per_session
            .entry(session.clone())
            .or_default()
            .push_back(job);
        if !st.active.contains(&session) && st.queued.insert(session.clone()) {
            st.run_queue.push_back(session);
        }
        st.in_flight += 1;
        self.cv.notify_one();
    }

    /// Blocks for the next runnable job; `None` means drained-and-stopping.
    fn next(&self) -> Option<(String, Job)> {
        let mut st = self.state.lock().expect("scheduler poisoned");
        loop {
            if let Some(session) = st.run_queue.pop_front() {
                st.queued.remove(&session);
                let job = st
                    .per_session
                    .get_mut(&session)
                    .and_then(VecDeque::pop_front)
                    .expect("queued session without pending jobs");
                st.active.insert(session.clone());
                return Some((session, job));
            }
            if st.stopping && st.in_flight == 0 {
                return None;
            }
            st = self.cv.wait(st).expect("scheduler poisoned");
        }
    }

    /// Marks a job finished; re-queues the session if it has more work.
    fn complete(&self, session: String) {
        let mut st = self.state.lock().expect("scheduler poisoned");
        st.active.remove(&session);
        let more = st.per_session.get(&session).is_some_and(|q| !q.is_empty());
        if more {
            if st.queued.insert(session.clone()) {
                st.run_queue.push_back(session);
            }
        } else {
            st.per_session.remove(&session);
        }
        st.in_flight -= 1;
        self.cv.notify_all();
    }

    fn stop(&self) {
        self.state.lock().expect("scheduler poisoned").stopping = true;
        self.cv.notify_all();
    }
}

/// Per-connection response sequencer: responses are buffered until
/// every earlier slot has been written, so output order equals request
/// order no matter which worker finishes first.
struct ConnOut {
    inner: Mutex<ConnOutInner>,
}

struct ConnOutInner {
    next: u64,
    buffered: BTreeMap<u64, String>,
    sink: Box<dyn Write + Send>,
}

impl ConnOut {
    fn new(sink: Box<dyn Write + Send>) -> Self {
        ConnOut {
            inner: Mutex::new(ConnOutInner {
                next: 0,
                buffered: BTreeMap::new(),
                sink,
            }),
        }
    }

    /// Hands in the response for slot `seq`; writes every response line
    /// that is now contiguous. Write failures are swallowed — a client
    /// that hung up cannot take the daemon down.
    fn deliver(&self, seq: u64, line: String) {
        let mut inner = self.inner.lock().expect("connection sink poisoned");
        inner.buffered.insert(seq, line);
        loop {
            let next = inner.next;
            match inner.buffered.remove(&next) {
                Some(line) => {
                    inner.next += 1;
                    let _ = writeln!(inner.sink, "{line}");
                }
                None => break,
            }
        }
        let _ = inner.sink.flush();
    }
}

/// Per-op latency samples in microseconds.
#[derive(Default)]
struct Latencies(Mutex<HashMap<String, Vec<u64>>>);

impl Latencies {
    fn record(&self, op: &str, elapsed: Duration) {
        self.0
            .lock()
            .expect("latency table poisoned")
            .entry(op.to_string())
            .or_default()
            .push(elapsed.as_micros() as u64);
    }
}

/// Latency summary for one operation class.
#[derive(Debug, Clone)]
pub struct OpLatency {
    /// Operation wire name (or `protocol_error`).
    pub op: String,
    /// Requests processed.
    pub count: usize,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
}

/// What a server run did, rendered to stderr by the CLI on shutdown.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Total requests processed (including rejected lines).
    pub requests: usize,
    /// Per-op latency summaries, sorted by op name.
    pub per_op: Vec<OpLatency>,
}

impl ServeReport {
    /// Renders the stderr summary, one `serve: op=… count=… p50_us=…
    /// p99_us=…` line per op (stable order) — the format the CI latency
    /// gate parses.
    pub fn render(&self) -> String {
        let mut out = format!("serve: requests={}\n", self.requests);
        for op in &self.per_op {
            out.push_str(&format!(
                "serve: op={} count={} p50_us={} p99_us={}\n",
                op.op, op.count, op.p50_us, op.p99_us
            ));
        }
        out
    }

    /// The summary for `op`, if any requests of that class ran.
    pub fn op(&self, op: &str) -> Option<&OpLatency> {
        self.per_op.iter().find(|l| l.op == op)
    }
}

fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as u64 * pct).div_euclid(100) as usize;
    sorted[idx]
}

/// The resident server: an [`Engine`] plus its worker pool.
pub struct Server {
    engine: Arc<Engine>,
    sched: Arc<Scheduler>,
    latencies: Arc<Latencies>,
    workers: Vec<JoinHandle<()>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Spawns `workers` worker threads over `engine` (clamped to ≥ 1).
    pub fn new(engine: Arc<Engine>, workers: usize) -> Self {
        let sched = Arc::new(Scheduler::new());
        let latencies = Arc::new(Latencies::default());
        let workers = (0..workers.max(1))
            .map(|_| {
                let engine = Arc::clone(&engine);
                let sched = Arc::clone(&sched);
                let latencies = Arc::clone(&latencies);
                std::thread::spawn(move || {
                    while let Some((session, job)) = sched.next() {
                        let started = Instant::now();
                        let response = engine.dispatch(&job.req);
                        latencies.record(job.req.op.name(), started.elapsed());
                        job.conn.deliver(job.seq, response.to_line());
                        sched.complete(session);
                    }
                })
            })
            .collect();
        Server {
            engine,
            sched,
            latencies,
            workers,
            conn_threads: Mutex::new(Vec::new()),
        }
    }

    /// The engine behind this server.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Serves one connection on the calling thread until EOF or a
    /// `shutdown` request is read. Returns the number of lines read.
    ///
    /// Lines are sequenced as they arrive: protocol rejections answer
    /// immediately through the sequencer, valid requests queue for the
    /// pool. After a `shutdown` line the reader stops consuming input
    /// ("stop accepting"); its response still flushes once the queue
    /// drains.
    pub fn serve_connection(&self, reader: impl BufRead, sink: Box<dyn Write + Send>) -> usize {
        let conn = Arc::new(ConnOut::new(sink));
        let mut seq = 0u64;
        for line in reader.lines() {
            let line = match line {
                Ok(line) => line,
                Err(_) => break,
            };
            if line.trim().is_empty() {
                continue;
            }
            let slot = seq;
            seq += 1;
            match Request::parse(&line) {
                Ok(req) => {
                    let is_shutdown = matches!(req.op, Op::Shutdown);
                    self.sched.submit(
                        req.session_name().to_string(),
                        Job {
                            conn: Arc::clone(&conn),
                            seq: slot,
                            req,
                        },
                    );
                    if is_shutdown {
                        break;
                    }
                }
                Err(e) => {
                    let started = Instant::now();
                    let response = Response::from(&e);
                    self.latencies.record(PROTOCOL_ERROR_OP, started.elapsed());
                    conn.deliver(slot, response.to_line());
                }
            }
        }
        seq as usize
    }

    /// Accepts TCP connections until the engine shuts down, one thread
    /// per connection. The listener is polled (non-blocking + sleep) so
    /// a `shutdown` arriving on any transport stops the accept loop
    /// within one poll interval.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures.
    pub fn serve_tcp(&self, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        while !self.engine.is_shutting_down() {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    stream.set_nonblocking(false)?;
                    // Finite read timeout so the connection thread
                    // notices shutdown even when its client stays
                    // silent with the socket open.
                    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
                    let sink = Box::new(stream.try_clone()?);
                    let handle = {
                        let engine = Arc::clone(&self.engine);
                        let sched = Arc::clone(&self.sched);
                        let latencies = Arc::clone(&self.latencies);
                        std::thread::spawn(move || {
                            serve_tcp_connection(engine, sched, latencies, stream, sink);
                        })
                    };
                    self.conn_threads
                        .lock()
                        .expect("connection table poisoned")
                        .push(handle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Drains queued work, stops the pool, joins every thread, and
    /// returns the latency report.
    pub fn finish(self) -> ServeReport {
        self.sched.stop();
        for worker in self.workers {
            let _ = worker.join();
        }
        let conn_threads = self
            .conn_threads
            .into_inner()
            .expect("connection table poisoned");
        for t in conn_threads {
            let _ = t.join();
        }
        let table = self.latencies.0.lock().expect("latency table poisoned");
        let mut per_op: Vec<OpLatency> = table
            .iter()
            .map(|(op, samples)| {
                let mut sorted = samples.clone();
                sorted.sort_unstable();
                OpLatency {
                    op: op.clone(),
                    count: sorted.len(),
                    p50_us: percentile(&sorted, 50),
                    p99_us: percentile(&sorted, 99),
                }
            })
            .collect();
        per_op.sort_by(|a, b| a.op.cmp(&b.op));
        ServeReport {
            requests: per_op.iter().map(|l| l.count).sum(),
            per_op,
        }
    }
}

/// The TCP connection loop: like [`Server::serve_connection`] but
/// tolerant of read timeouts (used to poll the shutdown latch).
fn serve_tcp_connection(
    engine: Arc<Engine>,
    sched: Arc<Scheduler>,
    latencies: Arc<Latencies>,
    stream: std::net::TcpStream,
    sink: Box<dyn Write + Send>,
) {
    let conn = Arc::new(ConnOut::new(sink));
    let mut seq = 0u64;
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    let mut reader = std::io::BufReader::new(stream);
    'outer: loop {
        // Byte-at-a-time through a BufReader: simple, timeout-safe
        // line framing (read_line would lose partial data on timeout).
        buf.clear();
        loop {
            match reader.read(&mut byte) {
                Ok(0) => break 'outer,
                Ok(_) => {
                    if byte[0] == b'\n' {
                        break;
                    }
                    buf.push(byte[0]);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if engine.is_shutting_down() {
                        break 'outer;
                    }
                }
                Err(_) => break 'outer,
            }
        }
        let line = String::from_utf8_lossy(&buf).into_owned();
        if line.trim().is_empty() {
            continue;
        }
        let slot = seq;
        seq += 1;
        match Request::parse(&line) {
            Ok(req) => {
                let is_shutdown = matches!(req.op, Op::Shutdown);
                sched.submit(
                    req.session_name().to_string(),
                    Job {
                        conn: Arc::clone(&conn),
                        seq: slot,
                        req,
                    },
                );
                if is_shutdown {
                    break;
                }
            }
            Err(e) => {
                let started = Instant::now();
                let response = Response::from(&e);
                latencies.record(PROTOCOL_ERROR_OP, started.elapsed());
                conn.deliver(slot, response.to_line());
            }
        }
    }
}

/// Convenience harness: run `input` (a whole JSONL stream) through a
/// fresh pool over `engine` and return `(stdout bytes, report)`.
/// The replay tests and the bench drive the daemon through this.
pub fn run_stream(engine: Arc<Engine>, workers: usize, input: &str) -> (String, ServeReport) {
    let server = Server::new(engine, workers);
    let out = SharedBuf::default();
    server.serve_connection(input.as_bytes(), Box::new(out.clone()));
    let report = server.finish();
    (out.take(), report)
}

/// A `Write` handle over a shared byte buffer (test/bench sink).
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn take(&self) -> String {
        let bytes = std::mem::take(&mut *self.0.lock().expect("buffer poisoned"));
        String::from_utf8(bytes).expect("responses are UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrec_core::solver::SolverSpec;
    use netrec_core::RecoveryProblem;
    use netrec_graph::Graph;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn engine() -> Arc<Engine> {
        let mut g = Graph::with_nodes(4);
        g.add_edge(g.node(0), g.node(1), 10.0).unwrap();
        g.add_edge(g.node(1), g.node(2), 10.0).unwrap();
        g.add_edge(g.node(2), g.node(3), 10.0).unwrap();
        g.add_edge(g.node(0), g.node(3), 10.0).unwrap();
        let mut p = RecoveryProblem::new(g);
        p.add_demand(p.graph().node(0), p.graph().node(3), 5.0)
            .unwrap();
        Arc::new(Engine::new(p, SolverSpec::parse("isp").unwrap()))
    }

    const STREAM: &str = r#"{"v":1,"id":"q0","op":"query_routability"}
{"v":1,"id":"d1","op":"disrupt","edges":[1,3],"cost":1.0}
not json at all
{"v":1,"id":"q1","op":"query_routability"}
{"v":1,"id":"p1","op":"query_plan","solver":"isp"}
{"v":1,"id":"z","op":"shutdown"}
"#;

    #[test]
    fn output_order_matches_input_order_at_any_worker_count() {
        let expected_ids = [
            Some("q0"),
            Some("d1"),
            None,
            Some("q1"),
            Some("p1"),
            Some("z"),
        ];
        let mut outputs = Vec::new();
        for workers in [1, 4] {
            let (out, report) = run_stream(engine(), workers, STREAM);
            let ids: Vec<Option<String>> = out
                .lines()
                .map(|l| Response::parse(l).unwrap().id().map(str::to_string))
                .collect();
            assert_eq!(
                ids,
                expected_ids
                    .iter()
                    .map(|o| o.map(str::to_string))
                    .collect::<Vec<_>>(),
                "workers={workers}"
            );
            assert_eq!(report.requests, 6);
            assert!(report.op("query_routability").unwrap().count == 2);
            assert!(report.op("protocol_error").is_some());
            outputs.push(out);
        }
        assert_eq!(
            outputs[0], outputs[1],
            "stdout is byte-identical regardless of pool size"
        );
    }

    #[test]
    fn sessions_make_progress_despite_a_slow_neighbor() {
        // A heavy plan request on session "slow" queues first; queries
        // on session "fast" still answer (round-robin across sessions)
        // and the final output order is the input order.
        let stream = r#"{"v":1,"id":"a","session":"slow","op":"disrupt","edges":[1,3],"cost":1.0}
{"v":1,"id":"b","session":"slow","op":"query_plan","solver":"opt"}
{"v":1,"id":"c","session":"fast","op":"query_routability"}
{"v":1,"id":"d","session":"fast","op":"query_routability"}
{"v":1,"id":"z","op":"shutdown"}
"#;
        let (out, _) = run_stream(engine(), 2, stream);
        let ids: Vec<&str> = out
            .lines()
            .map(|l| {
                let r = Response::parse(l).unwrap();
                assert!(r.is_ok(), "{l}");
                ""
            })
            .collect();
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn tcp_round_trip_and_shutdown() {
        let engine = engine();
        let server = Arc::new(Server::new(Arc::clone(&engine), 2));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let acceptor = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.serve_tcp(listener).unwrap())
        };

        let mut client = TcpStream::connect(addr).unwrap();
        client
            .write_all(
                b"{\"v\":1,\"id\":\"t1\",\"op\":\"query_routability\"}\n{\"v\":1,\"id\":\"t2\",\"op\":\"shutdown\"}\n",
            )
            .unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let r = Response::parse(line.trim_end()).unwrap();
        assert!(r.is_ok());
        assert_eq!(r.id(), Some("t1"));
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::parse(line.trim_end()).unwrap().id(), Some("t2"));

        acceptor.join().unwrap();
        assert!(engine.is_shutting_down());
        let report = Arc::try_unwrap(server)
            .ok()
            .expect("acceptor joined; sole owner")
            .finish();
        assert_eq!(report.op("shutdown").unwrap().count, 1);
    }
}
