//! The write-ahead event log: durability for the resident daemon
//! (`DESIGN.md` §16).
//!
//! Every admitted request line is appended to a segmented, checksummed
//! log *before* it is enqueued for execution, so a crash can lose at
//! most replies, never acknowledged events: `serve --wal DIR` boot
//! replays checkpoint + log suffix through the engine and reaches
//! exactly the state the durable prefix describes. The append path is
//! the reader thread — the same thread that assigns read-order request
//! indices — so the log *is* the dispatch order and replay is
//! deterministic at any worker count.
//!
//! # Layout
//!
//! `DIR/checkpoint` is an [`fsio`] container
//! (atomic tmp+rename) holding the persisted state of every session
//! plus the log sequence number it covers. `DIR/wal-NNNNNN.log` are
//! append-only segments of [`fsio::frame_record`] frames; each record
//! payload is one JSON line `{"seq":N,"line":"<request line>"}`.
//! Appends rotate to a fresh segment every [`Wal::SEGMENT_RECORDS`]
//! records, and a successful checkpoint deletes every covered segment —
//! the log is bounded by one segment plus the checkpoint.
//!
//! # Salvage
//!
//! A crash mid-append leaves a torn tail frame. Boot truncates the
//! damaged segment back to its longest valid record prefix and reports
//! a warning — it never refuses to boot over tail damage, because tail
//! damage is exactly what a crash is expected to leave. Records are
//! checksummed individually, so everything before the tear is trusted.
//!
//! # Sync policy
//!
//! [`SyncPolicy`] decides when appends become *durable* (fsync):
//! `always` fsyncs every append before the request may execute (the
//! strict ack-after-fsync contract), `interval:MS` group-commits from a
//! background flusher (bounded loss window, much cheaper), `off` leaves
//! it to the OS (crash-consistent, not power-safe). Replies carry the
//! record's `wal_seq` either way, and the `health` op reports both the
//! appended and the durable sequence, so clients can reconcile after a
//! reconnect.

use netrec_core::fault::Faults;
use netrec_core::fsio;
use netrec_json::{object, Json};
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError, Weak};
use std::time::{Duration, Instant};

/// The container kind tag of the checkpoint file.
const CHECKPOINT_KIND: &str = "netrec-wal-checkpoint";

/// The checkpoint format version.
const CHECKPOINT_VERSION: u32 = 1;

/// When appended records become durable (fsynced).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Fsync every append before its request executes: no acknowledged
    /// event can be lost, even to power failure.
    Always,
    /// Group-commit: a background flusher fsyncs dirty appends every
    /// this-many milliseconds. Loss window bounded by the interval.
    Interval(u64),
    /// Never fsync explicitly: appends reach the OS immediately (they
    /// survive a process crash) but power loss may drop the tail.
    Off,
}

impl SyncPolicy {
    /// Parses the `--wal-sync` flag grammar: `always`, `interval:MS`,
    /// or `off`.
    ///
    /// # Errors
    ///
    /// A message naming the malformed value.
    pub fn parse(spec: &str) -> Result<SyncPolicy, String> {
        match spec {
            "always" => Ok(SyncPolicy::Always),
            "off" => Ok(SyncPolicy::Off),
            other => match other.strip_prefix("interval:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .ok()
                    .filter(|&ms| ms > 0)
                    .map(SyncPolicy::Interval)
                    .ok_or_else(|| {
                        format!("bad interval in --wal-sync {spec:?} (want interval:MS)")
                    }),
                None => Err(format!(
                    "unknown --wal-sync {spec:?} (want always, interval:MS, or off)"
                )),
            },
        }
    }
}

impl std::fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncPolicy::Always => f.write_str("always"),
            SyncPolicy::Interval(ms) => write!(f, "interval:{ms}"),
            SyncPolicy::Off => f.write_str("off"),
        }
    }
}

/// One logged request, as recovered at boot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The record's log sequence number (1-based; replies echo it as
    /// `wal_seq`).
    pub seq: u64,
    /// The raw request line exactly as the client sent it.
    pub line: String,
}

/// What [`Wal::open`] found on disk: the state to rebuild and how.
#[derive(Debug)]
pub struct WalBoot {
    /// The checkpoint document, when one exists (restore its sessions
    /// first, then replay `records` on top).
    pub checkpoint: Option<Json>,
    /// Log records past the checkpoint, in sequence order.
    pub records: Vec<WalRecord>,
    /// Salvage and consistency warnings (torn tails truncated, ignored
    /// trailing segments) — boot proceeds, the operator is told.
    pub warnings: Vec<String>,
}

/// A snapshot of the log's durability counters (the `health` op).
#[derive(Debug, Clone, Copy)]
pub struct WalHealth {
    /// Sequence number of the last appended record (0 = none yet).
    pub appended_seq: u64,
    /// Sequence number of the last *fsynced* record.
    pub durable_seq: u64,
    /// How long the oldest unsynced append has been waiting, in
    /// milliseconds (0 when everything is durable).
    pub fsync_lag_ms: u64,
}

struct WalState {
    /// The live segment. Appends are buffered: `always` flushes and
    /// fsyncs every record before returning, while `interval`/`off`
    /// leave bytes in the buffer until the next [`Wal::sync`] — their
    /// durability window already tolerates that, and it keeps a logged
    /// append within ~2x of an unlogged request instead of paying a
    /// write syscall per event.
    file: BufWriter<File>,
    seg_index: u64,
    seg_records: u64,
    next_seq: u64,
    appended_seq: u64,
    synced_seq: u64,
    /// Records appended since the last installed checkpoint.
    since_checkpoint: u64,
    /// When the oldest unsynced append landed (`None` = clean).
    dirty_since: Option<Instant>,
}

/// A live write-ahead log rooted at one directory. See the module docs
/// for layout, salvage, and sync semantics.
pub struct Wal {
    dir: PathBuf,
    policy: SyncPolicy,
    segment_records: u64,
    state: Mutex<WalState>,
}

impl Wal {
    /// Records per segment before appends rotate to a fresh file, and
    /// the checkpoint cadence (the server checkpoints when this many
    /// records have accumulated past the last checkpoint).
    pub const SEGMENT_RECORDS: u64 = 1024;

    /// Opens (creating if needed) the log directory, salvages any torn
    /// segment tail, and returns the live log plus everything needed to
    /// rebuild state: checkpoint document and post-checkpoint records.
    ///
    /// Tail damage is a warning, never a failure — but a checkpoint
    /// file that exists and cannot be validated *is* an error: it is
    /// written atomically, so damage there means real corruption, and
    /// silently dropping it would resurrect a stale world.
    ///
    /// # Errors
    ///
    /// Filesystem errors, or a corrupt checkpoint file.
    pub fn open(
        dir: &Path,
        policy: SyncPolicy,
        segment_records: u64,
    ) -> std::io::Result<(Wal, WalBoot)> {
        std::fs::create_dir_all(dir)?;
        let mut warnings = Vec::new();
        let checkpoint_path = dir.join("checkpoint");
        let (checkpoint, checkpoint_seq) =
            match fsio::read_container(&checkpoint_path, CHECKPOINT_KIND, CHECKPOINT_VERSION) {
                Ok(payload) => {
                    let text = String::from_utf8(payload).map_err(|_| {
                        std::io::Error::other("wal checkpoint payload is not UTF-8")
                    })?;
                    let doc = Json::parse(text.trim()).map_err(|e| {
                        std::io::Error::other(format!("wal checkpoint is not valid JSON: {e}"))
                    })?;
                    let seq = doc.get("wal_seq").and_then(Json::as_u64).ok_or_else(|| {
                        std::io::Error::other("wal checkpoint is missing \"wal_seq\"")
                    })?;
                    (Some(doc), seq)
                }
                Err(fsio::ContainerError::Io(std::io::ErrorKind::NotFound, _)) => (None, 0),
                Err(e) => {
                    return Err(std::io::Error::other(format!(
                        "wal checkpoint {} is corrupt: {e}",
                        checkpoint_path.display()
                    )))
                }
            };
        // Scan segments in name order; each is salvaged independently.
        // Damage in a non-final segment orphans everything after it —
        // records past a hole cannot be trusted to describe a
        // contiguous history, so they are dropped with a warning.
        let mut seg_indices: Vec<u64> = std::fs::read_dir(dir)?
            .filter_map(|entry| {
                let name = entry.ok()?.file_name().into_string().ok()?;
                let idx = name.strip_prefix("wal-")?.strip_suffix(".log")?;
                idx.parse::<u64>().ok()
            })
            .collect();
        seg_indices.sort_unstable();
        let mut records: Vec<WalRecord> = Vec::new();
        let mut next_seq = checkpoint_seq + 1;
        let mut last_seg = 0u64;
        'segments: for (pos, &seg) in seg_indices.iter().enumerate() {
            last_seg = seg;
            let path = segment_path(dir, seg);
            let scan = fsio::salvage_records(&path)?;
            if let Some(reason) = &scan.torn {
                warnings.push(format!(
                    "wal segment {} salvaged: {reason} (truncated to {} bytes)",
                    path.display(),
                    scan.valid_len
                ));
            }
            for payload in &scan.records {
                let record = match parse_record(payload) {
                    Ok(r) => r,
                    Err(why) => {
                        warnings.push(format!(
                            "wal segment {}: unreadable record ({why}); \
                             replay stops at seq {}",
                            path.display(),
                            next_seq.saturating_sub(1)
                        ));
                        break 'segments;
                    }
                };
                // Records at or below the checkpoint are already baked
                // into it (a crash between checkpoint install and
                // segment deletion leaves them behind harmlessly).
                if record.seq < next_seq {
                    continue;
                }
                if record.seq > next_seq {
                    warnings.push(format!(
                        "wal segment {}: sequence gap (expected {next_seq}, found {}); \
                         replay stops before the gap",
                        path.display(),
                        record.seq
                    ));
                    break 'segments;
                }
                next_seq += 1;
                records.push(record);
            }
            if scan.torn.is_some() && pos + 1 < seg_indices.len() {
                warnings.push(format!(
                    "wal segments after {} ignored: they follow a torn tail",
                    path.display()
                ));
                break 'segments;
            }
        }
        // Live appends continue into a fresh segment — never into a
        // salvaged one, so a boot loop under a crashy workload cannot
        // compound damage in a single file.
        let seg_index = last_seg + 1;
        let file = BufWriter::new(open_segment(dir, seg_index)?);
        let wal = Wal {
            dir: dir.to_path_buf(),
            policy,
            segment_records: segment_records.max(1),
            state: Mutex::new(WalState {
                file,
                seg_index,
                seg_records: 0,
                next_seq,
                appended_seq: next_seq - 1,
                synced_seq: next_seq - 1,
                since_checkpoint: records.len() as u64,
                dirty_since: None,
            }),
        };
        Ok((
            wal,
            WalBoot {
                checkpoint,
                records,
                warnings,
            },
        ))
    }

    /// The configured sync policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WalState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends one request line and applies the sync policy; returns
    /// the record's sequence number. Under `always`, the record is
    /// durable when this returns — the request has not executed yet,
    /// which is exactly the write-ahead contract.
    ///
    /// # Errors
    ///
    /// Filesystem errors. The caller must not execute the request: a
    /// reply would acknowledge an event the log did not capture.
    pub fn append_line(&self, line: &str) -> std::io::Result<u64> {
        let mut st = self.lock();
        let seq = st.next_seq;
        let frame = fsio::frame_record(&record_payload(seq, line));
        st.file.write_all(&frame)?;
        st.next_seq += 1;
        st.appended_seq = seq;
        st.seg_records += 1;
        st.since_checkpoint += 1;
        if st.dirty_since.is_none() {
            st.dirty_since = Some(Instant::now());
        }
        if self.policy == SyncPolicy::Always {
            st.file.flush()?;
            st.file.get_ref().sync_data()?;
            st.synced_seq = seq;
            st.dirty_since = None;
        }
        if st.seg_records >= self.segment_records {
            self.rotate(&mut st)?;
        }
        Ok(seq)
    }

    /// Injected crash fault (`crash@I`): makes every *prior* append
    /// durable, then aborts the process before this request's record
    /// exists. The recovered state is exactly the durable prefix —
    /// deterministic, which is what lets the kill-loop harness compare
    /// against a golden byte-for-byte.
    pub fn crash_abort(&self, faults: &Faults) -> bool {
        if !faults.crash {
            return false;
        }
        let mut st = self.lock();
        let _ = st.file.flush();
        let _ = st.file.get_ref().sync_data();
        std::process::abort();
    }

    /// Injected torn-append fault (`wal_torn@I`): writes roughly half
    /// of this request's frame, forces it to disk, and aborts — leaving
    /// a genuine torn tail for boot salvage to truncate. (A plain kill
    /// rarely tears a small buffered write; this makes the salvage path
    /// testable on demand.)
    pub fn torn_abort(&self, line: &str, faults: &Faults) -> bool {
        if !faults.wal_torn {
            return false;
        }
        let mut st = self.lock();
        let seq = st.next_seq;
        let frame = fsio::frame_record(&record_payload(seq, line));
        let half = (frame.len() / 2).max(1);
        let _ = st.file.write_all(&frame[..half]);
        let _ = st.file.flush();
        let _ = st.file.get_ref().sync_data();
        std::process::abort();
    }

    /// Fsyncs outstanding appends, if any (the interval flusher's tick;
    /// also used on shutdown).
    ///
    /// # Errors
    ///
    /// Filesystem errors from the fsync.
    pub fn sync(&self) -> std::io::Result<()> {
        let mut st = self.lock();
        if st.dirty_since.is_some() {
            st.file.flush()?;
            st.file.get_ref().sync_data()?;
            st.synced_seq = st.appended_seq;
            st.dirty_since = None;
        }
        Ok(())
    }

    /// Spawns the group-commit flusher when the policy is
    /// `interval:MS`; no-op otherwise. The thread holds only a [`Weak`]
    /// handle and exits on its next tick after the log is dropped.
    pub fn spawn_flusher(wal: &Arc<Wal>) {
        let SyncPolicy::Interval(ms) = wal.policy else {
            return;
        };
        let weak: Weak<Wal> = Arc::downgrade(wal);
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(ms));
            match weak.upgrade() {
                Some(wal) => {
                    if let Err(e) = wal.sync() {
                        eprintln!("serve: wal interval fsync failed: {e}");
                    }
                }
                None => return,
            }
        });
    }

    /// Sequence number of the last appended record.
    pub fn appended_seq(&self) -> u64 {
        self.lock().appended_seq
    }

    /// Whether enough records have accumulated past the last checkpoint
    /// that the server should quiesce and install a new one.
    pub fn checkpoint_due(&self) -> bool {
        self.lock().since_checkpoint >= self.segment_records
    }

    /// Durability counters for the `health` op.
    pub fn health(&self) -> WalHealth {
        let st = self.lock();
        WalHealth {
            appended_seq: st.appended_seq,
            durable_seq: if self.policy == SyncPolicy::Off {
                // Without fsyncs the OS owns durability; report what
                // was handed to it rather than a misleading zero.
                st.appended_seq
            } else {
                st.synced_seq
            },
            fsync_lag_ms: st
                .dirty_since
                .map(|t| t.elapsed().as_millis() as u64)
                .filter(|_| self.policy != SyncPolicy::Off)
                .unwrap_or(0),
        }
    }

    /// Installs a checkpoint covering every record appended so far: the
    /// document is written atomically, then all fully-covered segments
    /// are deleted and appends continue into a fresh one. The caller
    /// must have quiesced execution — the document must describe the
    /// state *after* the last appended record.
    ///
    /// # Errors
    ///
    /// Filesystem errors; on error the previous checkpoint (if any)
    /// still stands and no segment has been deleted.
    pub fn install_checkpoint(&self, doc: &Json) -> std::io::Result<()> {
        let mut st = self.lock();
        fsio::write_container(
            &self.dir.join("checkpoint"),
            CHECKPOINT_KIND,
            CHECKPOINT_VERSION,
            doc.to_line().as_bytes(),
            true,
        )?;
        // The checkpoint is the authority now: every segment (including
        // the live one) holds only covered records. Start fresh.
        let old_seg = st.seg_index;
        st.seg_index += 1;
        st.file = BufWriter::new(open_segment(&self.dir, st.seg_index)?);
        st.seg_records = 0;
        st.since_checkpoint = 0;
        st.synced_seq = st.appended_seq;
        st.dirty_since = None;
        drop(st);
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(idx) = name
                    .to_str()
                    .and_then(|n| n.strip_prefix("wal-")?.strip_suffix(".log"))
                    .and_then(|i| i.parse::<u64>().ok())
                else {
                    continue;
                };
                if idx <= old_seg {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok(())
    }

    fn rotate(&self, st: &mut WalState) -> std::io::Result<()> {
        // Finish the outgoing segment cleanly so its tail can never
        // look torn to a later boot.
        st.file.flush()?;
        st.file.get_ref().sync_data()?;
        st.synced_seq = st.appended_seq;
        st.dirty_since = None;
        st.seg_index += 1;
        st.file = BufWriter::new(open_segment(&self.dir, st.seg_index)?);
        st.seg_records = 0;
        Ok(())
    }
}

/// Builds the JSON payload of one log record.
fn record_payload(seq: u64, line: &str) -> Vec<u8> {
    object(vec![
        ("seq", Json::Number(seq as f64)),
        ("line", Json::String(line.to_string())),
    ])
    .to_line()
    .into_bytes()
}

/// Parses one record payload back into `(seq, line)`.
fn parse_record(payload: &[u8]) -> Result<WalRecord, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    let doc = Json::parse(text).map_err(|e| format!("payload is not JSON: {e}"))?;
    let seq = doc
        .get("seq")
        .and_then(Json::as_u64)
        .ok_or_else(|| "missing \"seq\"".to_string())?;
    let line = doc
        .get("line")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing \"line\"".to_string())?
        .to_string();
    Ok(WalRecord { seq, line })
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:06}.log"))
}

fn open_segment(dir: &Path, index: u64) -> std::io::Result<File> {
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(segment_path(dir, index))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("netrec_wal_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sync_policy_grammar_round_trips() {
        for (spec, policy) in [
            ("always", SyncPolicy::Always),
            ("off", SyncPolicy::Off),
            ("interval:25", SyncPolicy::Interval(25)),
        ] {
            let parsed = SyncPolicy::parse(spec).unwrap();
            assert_eq!(parsed, policy);
            assert_eq!(parsed.to_string(), spec);
        }
        for bad in ["", "sometimes", "interval:", "interval:0", "interval:ms"] {
            SyncPolicy::parse(bad).expect_err(bad);
        }
    }

    #[test]
    fn appends_replay_in_order_across_reopen() {
        let dir = scratch("roundtrip");
        let lines = ["{\"a\":1}", "{\"b\":2}", "{\"c\":3}"];
        {
            let (wal, boot) = Wal::open(&dir, SyncPolicy::Always, 1024).unwrap();
            assert!(boot.checkpoint.is_none() && boot.records.is_empty());
            assert!(boot.warnings.is_empty());
            for (i, line) in lines.iter().enumerate() {
                assert_eq!(wal.append_line(line).unwrap(), i as u64 + 1);
            }
            assert_eq!(wal.appended_seq(), 3);
            let h = wal.health();
            assert_eq!((h.appended_seq, h.durable_seq, h.fsync_lag_ms), (3, 3, 0));
        }
        let (wal, boot) = Wal::open(&dir, SyncPolicy::Always, 1024).unwrap();
        assert_eq!(
            boot.records,
            lines
                .iter()
                .enumerate()
                .map(|(i, l)| WalRecord {
                    seq: i as u64 + 1,
                    line: (*l).to_string()
                })
                .collect::<Vec<_>>()
        );
        assert!(boot.warnings.is_empty(), "{:?}", boot.warnings);
        // Sequence numbering continues where the log left off.
        assert_eq!(wal.append_line("{\"d\":4}").unwrap(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_salvaged_with_a_warning() {
        let dir = scratch("torn");
        {
            let (wal, _) = Wal::open(&dir, SyncPolicy::Off, 1024).unwrap();
            wal.append_line("{\"keep\":1}").unwrap();
            wal.append_line("{\"tear\":2}").unwrap();
        }
        // Tear the tail of the only segment by hand.
        let seg = segment_path(&dir, 1);
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 5]).unwrap();
        let (wal, boot) = Wal::open(&dir, SyncPolicy::Off, 1024).unwrap();
        assert_eq!(boot.records.len(), 1);
        assert_eq!(boot.records[0].line, "{\"keep\":1}");
        assert!(
            boot.warnings.iter().any(|w| w.contains("salvaged")),
            "{:?}",
            boot.warnings
        );
        // The next append continues at the sequence after the survivor.
        assert_eq!(wal.append_line("{\"next\":3}").unwrap(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_rotate_and_checkpoints_truncate() {
        let dir = scratch("rotate");
        let (wal, _) = Wal::open(&dir, SyncPolicy::Off, 2).unwrap();
        for i in 0..5 {
            wal.append_line(&format!("{{\"i\":{i}}}")).unwrap();
        }
        let segs = |dir: &Path| {
            let mut v: Vec<String> = std::fs::read_dir(dir)
                .unwrap()
                .filter_map(|e| e.ok()?.file_name().into_string().ok())
                .filter(|n| n.starts_with("wal-"))
                .collect();
            v.sort();
            v
        };
        assert!(segs(&dir).len() >= 3, "{:?}", segs(&dir));
        assert!(wal.checkpoint_due());
        let doc = object(vec![
            ("wal_seq", Json::Number(wal.appended_seq() as f64)),
            ("sessions", Json::Array(vec![])),
        ]);
        wal.install_checkpoint(&doc).unwrap();
        assert_eq!(segs(&dir).len(), 1, "covered segments deleted");
        assert!(!wal.checkpoint_due());
        // Post-checkpoint appends land in the fresh segment and replay
        // on top of the checkpoint.
        wal.append_line("{\"after\":1}").unwrap();
        drop(wal);
        let (_, boot) = Wal::open(&dir, SyncPolicy::Off, 2).unwrap();
        let cp = boot.checkpoint.expect("checkpoint survives");
        assert_eq!(cp.get("wal_seq").and_then(Json::as_u64), Some(5));
        assert_eq!(boot.records.len(), 1);
        assert_eq!(boot.records[0].seq, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interval_flusher_catches_up() {
        let dir = scratch("interval");
        let (wal, _) = Wal::open(&dir, SyncPolicy::Interval(10), 1024).unwrap();
        let wal = Arc::new(wal);
        Wal::spawn_flusher(&wal);
        wal.append_line("{\"x\":1}").unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while wal.health().durable_seq < 1 {
            assert!(Instant::now() < deadline, "flusher never synced");
            std::thread::sleep(Duration::from_millis(5));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
