//! The versioned JSONL request/response protocol (`DESIGN.md` §13).
//!
//! One JSON object per line in both directions. Every request carries
//! the protocol version (`"v": 1`), a caller-chosen request id echoed
//! verbatim in the reply, an operation (`"op"`), and optionally a
//! session name (default session: `"default"`). [`Request::parse`] and
//! [`Request::to_line`] are exact inverses on valid requests (the
//! round-trip property the proptest suite pins), and parsing is total:
//! malformed input becomes a structured error value, never a panic —
//! the daemon's event loop stays alive on any byte stream.
//!
//! Responses are built through [`Response`] so every reply has the same
//! envelope: `{"v":1,"id":...,"ok":true,...}` on success,
//! `{"v":1,"id":...,"ok":false,"error":{"kind":...,"message":...}}` on
//! failure. Error kinds are stable wire strings: protocol-level kinds
//! from this module (`parse`, `version`, `bad_request`, `unknown_op`),
//! containment kinds from the failure-containment layer
//! (`internal_error` for an isolated worker panic, `session_poisoned`
//! for requests against a session a panic corrupted, `overloaded` for
//! load-shed rejections — these carry `retry_after_ms` — and
//! `io_error` for failed snapshot persistence), and solver-level kinds
//! from [`RecoveryError::kind`](netrec_core::RecoveryError::kind)
//! (`deadline_exceeded`, `infeasible`, `injected_fault`, …).

use netrec_json::{object, Json};

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u64 = 1;

/// The session a request without an explicit `"session"` lands on.
pub const DEFAULT_SESSION: &str = "default";

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Caller-chosen id, echoed in the response.
    pub id: String,
    /// Target session (`None` = [`DEFAULT_SESSION`]).
    pub session: Option<String>,
    /// The operation.
    pub op: Op,
}

/// The operation catalogue of protocol v1.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Break components (cost applies to every component in the event).
    Disrupt {
        /// Node ids to break.
        nodes: Vec<usize>,
        /// Edge ids to break.
        edges: Vec<usize>,
        /// Repair cost recorded for each broken component.
        cost: f64,
    },
    /// Un-break components.
    Repair {
        /// Node ids to repair.
        nodes: Vec<usize>,
        /// Edge ids to repair.
        edges: Vec<usize>,
    },
    /// Append demand pairs, optionally replacing the current set.
    Demand {
        /// `(source, target, amount)` triples.
        pairs: Vec<(usize, usize, f64)>,
        /// Whether to clear the existing demand set first.
        replace: bool,
    },
    /// "Is the current state routable?" — served from warm state.
    QueryRoutability {
        /// Accept a degraded answer: when the session's O(1) verdict
        /// cache cannot answer, reply from the certified Garg–Könemann
        /// threshold path (`"degraded":true` + a certificate level)
        /// instead of paying an exact incremental solve.
        degraded_ok: bool,
    },
    /// "Best recovery plan now" — a fresh solve of the session state.
    QueryPlan {
        /// Solver spec string (`isp`, `grd-nc:...`, …); the daemon
        /// default applies when empty.
        solver: Option<String>,
        /// Per-request wall-clock budget in milliseconds, measured from
        /// *enqueue* — time spent queued counts against it.
        deadline_ms: Option<u64>,
        /// Accept a degraded answer: when the deadline interrupts the
        /// solve, reply with the session's last known-good plan plus
        /// staleness metadata instead of a bare `deadline_exceeded`.
        degraded_ok: bool,
    },
    /// Report session state; with `fork`, clone the session (problem
    /// overlay + oracle witnesses) under the new name; with `path`,
    /// also persist the session state to a file (atomic tmp+rename).
    Snapshot {
        /// Name of the session to create as a copy of this one.
        fork: Option<String>,
        /// File to persist the session snapshot to (crash-safe; the
        /// daemon's `--restore` resurrects sessions from these files).
        path: Option<String>,
    },
    /// Liveness/durability probe: uptime, session count, queue depth,
    /// and WAL counters (`wal_seq`, durable seq, fsync lag). Answered
    /// at admission time, exempt from load shedding, never logged to
    /// the WAL, and consumes no request index — a supervisor can poll
    /// it without perturbing fault schedules or replay determinism.
    Health,
    /// Stop accepting input and exit once queued work drains.
    Shutdown,
}

impl Op {
    /// The wire name of the operation.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Disrupt { .. } => "disrupt",
            Op::Repair { .. } => "repair",
            Op::Demand { .. } => "demand",
            Op::QueryRoutability { .. } => "query_routability",
            Op::QueryPlan { .. } => "query_plan",
            Op::Snapshot { .. } => "snapshot",
            Op::Health => "health",
            Op::Shutdown => "shutdown",
        }
    }
}

/// A protocol-level request rejection: the line never reached a session.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError {
    /// Stable wire kind: `parse`, `version`, `bad_request`, `unknown_op`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// The request id, when the line was parseable enough to carry one.
    pub id: Option<String>,
}

impl ProtocolError {
    fn new(kind: &'static str, message: impl Into<String>, id: Option<String>) -> Self {
        ProtocolError {
            kind,
            message: message.into(),
            id,
        }
    }
}

/// Reads an optional boolean member, defaulting to `false`.
fn bool_member(obj: &Json, key: &str, id: &Option<String>) -> Result<bool, ProtocolError> {
    match obj.get(key) {
        None => Ok(false),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(ProtocolError::new(
            "bad_request",
            format!("{key:?} must be a boolean"),
            id.clone(),
        )),
    }
}

/// Reads an optional non-empty string member.
fn string_member(
    obj: &Json,
    key: &str,
    id: &Option<String>,
) -> Result<Option<String>, ProtocolError> {
    match obj.get(key) {
        None => Ok(None),
        Some(s) => s
            .as_str()
            .filter(|s| !s.is_empty())
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| {
                ProtocolError::new(
                    "bad_request",
                    format!("{key:?} must be a non-empty string"),
                    id.clone(),
                )
            }),
    }
}

/// Reads a non-negative integer id list member (`"nodes"`, `"edges"`).
fn id_list(obj: &Json, key: &str, id: &Option<String>) -> Result<Vec<usize>, ProtocolError> {
    match obj.get(key) {
        None => Ok(Vec::new()),
        Some(value) => {
            let items = value.as_array().ok_or_else(|| {
                ProtocolError::new(
                    "bad_request",
                    format!("{key:?} must be an array"),
                    id.clone(),
                )
            })?;
            items
                .iter()
                .map(|v| {
                    v.as_usize().ok_or_else(|| {
                        ProtocolError::new(
                            "bad_request",
                            format!("{key:?} entries must be non-negative integers"),
                            id.clone(),
                        )
                    })
                })
                .collect()
        }
    }
}

impl Request {
    /// Parses one request line. Total: every failure is a structured
    /// [`ProtocolError`] carrying the id when one was recoverable, so
    /// the caller can still address its reply.
    ///
    /// # Errors
    ///
    /// `parse` for malformed JSON or a missing/ill-typed envelope,
    /// `version` for a wrong `"v"`, `unknown_op` for an unrecognized
    /// operation, `bad_request` for ill-typed operation fields.
    pub fn parse(line: &str) -> Result<Request, ProtocolError> {
        let doc = Json::parse(line)
            .map_err(|e| ProtocolError::new("parse", format!("invalid JSON: {e}"), None))?;
        if doc.as_object().is_none() {
            return Err(ProtocolError::new(
                "parse",
                "request must be a JSON object",
                None,
            ));
        }
        // The id is extracted first so later failures can carry it.
        let id = doc
            .get("id")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ProtocolError::new("parse", "missing string \"id\"", None))?;
        let id_some = Some(id.clone());
        match doc.get("v").and_then(Json::as_u64) {
            Some(PROTOCOL_VERSION) => {}
            Some(v) => {
                return Err(ProtocolError::new(
                    "version",
                    format!(
                        "protocol version {v} unsupported (this build speaks {PROTOCOL_VERSION})"
                    ),
                    id_some,
                ))
            }
            None => {
                return Err(ProtocolError::new(
                    "version",
                    "missing integer \"v\"",
                    id_some,
                ))
            }
        }
        let session = match doc.get("session") {
            None => None,
            Some(s) => Some(
                s.as_str()
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .ok_or_else(|| {
                        ProtocolError::new(
                            "bad_request",
                            "\"session\" must be a non-empty string",
                            id_some.clone(),
                        )
                    })?,
            ),
        };
        let op_name = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtocolError::new("parse", "missing string \"op\"", id_some.clone()))?;
        let op = match op_name {
            "disrupt" => {
                let cost = match doc.get("cost") {
                    None => 1.0,
                    Some(c) => c.as_f64().ok_or_else(|| {
                        ProtocolError::new(
                            "bad_request",
                            "\"cost\" must be a number",
                            id_some.clone(),
                        )
                    })?,
                };
                Op::Disrupt {
                    nodes: id_list(&doc, "nodes", &id_some)?,
                    edges: id_list(&doc, "edges", &id_some)?,
                    cost,
                }
            }
            "repair" => Op::Repair {
                nodes: id_list(&doc, "nodes", &id_some)?,
                edges: id_list(&doc, "edges", &id_some)?,
            },
            "demand" => {
                let pairs = match doc.get("pairs") {
                    None => Vec::new(),
                    Some(value) => {
                        let items = value.as_array().ok_or_else(|| {
                            ProtocolError::new(
                                "bad_request",
                                "\"pairs\" must be an array",
                                id_some.clone(),
                            )
                        })?;
                        let mut pairs = Vec::with_capacity(items.len());
                        for item in items {
                            let triple = item.as_array().filter(|t| t.len() == 3);
                            let parsed = triple.and_then(|t| {
                                Some((t[0].as_usize()?, t[1].as_usize()?, t[2].as_f64()?))
                            });
                            match parsed {
                                Some(p) => pairs.push(p),
                                None => {
                                    return Err(ProtocolError::new(
                                        "bad_request",
                                        "\"pairs\" entries must be [source, target, amount]",
                                        id_some,
                                    ))
                                }
                            }
                        }
                        pairs
                    }
                };
                let replace = match doc.get("replace") {
                    None => false,
                    Some(Json::Bool(b)) => *b,
                    Some(_) => {
                        return Err(ProtocolError::new(
                            "bad_request",
                            "\"replace\" must be a boolean",
                            id_some,
                        ))
                    }
                };
                Op::Demand { pairs, replace }
            }
            "query_routability" => Op::QueryRoutability {
                degraded_ok: bool_member(&doc, "degraded_ok", &id_some)?,
            },
            "query_plan" => {
                let solver = string_member(&doc, "solver", &id_some)?;
                let deadline_ms = match doc.get("deadline_ms") {
                    None => None,
                    Some(d) => Some(d.as_u64().ok_or_else(|| {
                        ProtocolError::new(
                            "bad_request",
                            "\"deadline_ms\" must be a non-negative integer",
                            id_some.clone(),
                        )
                    })?),
                };
                Op::QueryPlan {
                    solver,
                    deadline_ms,
                    degraded_ok: bool_member(&doc, "degraded_ok", &id_some)?,
                }
            }
            "snapshot" => Op::Snapshot {
                fork: string_member(&doc, "fork", &id_some)?,
                path: string_member(&doc, "path", &id_some)?,
            },
            "health" => Op::Health,
            "shutdown" => Op::Shutdown,
            other => {
                return Err(ProtocolError::new(
                    "unknown_op",
                    format!("unknown op {other:?}"),
                    id_some,
                ))
            }
        };
        Ok(Request { id, session, op })
    }

    /// Renders the canonical one-line encoding ([`Request::parse`]'s
    /// exact inverse: parse ∘ to_line = identity on valid requests).
    pub fn to_line(&self) -> String {
        let mut members = vec![
            ("v", Json::Number(PROTOCOL_VERSION as f64)),
            ("id", Json::String(self.id.clone())),
        ];
        if let Some(session) = &self.session {
            members.push(("session", Json::String(session.clone())));
        }
        members.push(("op", Json::String(self.op.name().to_string())));
        let ids =
            |list: &[usize]| Json::Array(list.iter().map(|&i| Json::Number(i as f64)).collect());
        match &self.op {
            Op::Disrupt { nodes, edges, cost } => {
                members.push(("nodes", ids(nodes)));
                members.push(("edges", ids(edges)));
                members.push(("cost", Json::Number(*cost)));
            }
            Op::Repair { nodes, edges } => {
                members.push(("nodes", ids(nodes)));
                members.push(("edges", ids(edges)));
            }
            Op::Demand { pairs, replace } => {
                members.push((
                    "pairs",
                    Json::Array(
                        pairs
                            .iter()
                            .map(|&(s, t, a)| {
                                Json::Array(vec![
                                    Json::Number(s as f64),
                                    Json::Number(t as f64),
                                    Json::Number(a),
                                ])
                            })
                            .collect(),
                    ),
                ));
                members.push(("replace", Json::Bool(*replace)));
            }
            Op::Health | Op::Shutdown => {}
            Op::QueryRoutability { degraded_ok } => {
                // Rendered only when set, so pre-existing streams and
                // goldens keep their exact bytes.
                if *degraded_ok {
                    members.push(("degraded_ok", Json::Bool(true)));
                }
            }
            Op::QueryPlan {
                solver,
                deadline_ms,
                degraded_ok,
            } => {
                if let Some(solver) = solver {
                    members.push(("solver", Json::String(solver.clone())));
                }
                if let Some(ms) = deadline_ms {
                    members.push(("deadline_ms", Json::Number(*ms as f64)));
                }
                if *degraded_ok {
                    members.push(("degraded_ok", Json::Bool(true)));
                }
            }
            Op::Snapshot { fork, path } => {
                if let Some(fork) = fork {
                    members.push(("fork", Json::String(fork.clone())));
                }
                if let Some(path) = path {
                    members.push(("path", Json::String(path.clone())));
                }
            }
        }
        object(members).to_line()
    }

    /// The effective session name.
    pub fn session_name(&self) -> &str {
        self.session.as_deref().unwrap_or(DEFAULT_SESSION)
    }
}

impl std::fmt::Display for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_line())
    }
}

/// A response line under construction. Always renders the full
/// envelope; the writer is the byte-stable [`Json`] writer, so replying
/// twice to identical state is byte-identical (the golden-diff
/// property CI leans on).
#[derive(Debug, Clone, PartialEq)]
pub struct Response(Json);

impl Response {
    /// A success reply: the envelope plus `body` members in order.
    pub fn ok(id: &str, op: &'static str, body: Vec<(&str, Json)>) -> Response {
        let mut members = vec![
            ("v", Json::Number(PROTOCOL_VERSION as f64)),
            ("id", Json::String(id.to_string())),
            ("ok", Json::Bool(true)),
            ("op", Json::String(op.to_string())),
        ];
        members.extend(body);
        Response(object(members))
    }

    /// An error reply. `id` is `null` when the line was too malformed
    /// to carry one.
    pub fn error(id: Option<&str>, kind: &str, message: &str) -> Response {
        Response::error_with(id, kind, message, Vec::new())
    }

    /// An error reply with additional members inside the `"error"`
    /// object (e.g. `retry_after_ms` on an `overloaded` rejection).
    pub fn error_with(
        id: Option<&str>,
        kind: &str,
        message: &str,
        extra: Vec<(&str, Json)>,
    ) -> Response {
        let mut error = vec![
            ("kind", Json::String(kind.to_string())),
            ("message", Json::String(message.to_string())),
        ];
        error.extend(extra);
        Response(object(vec![
            ("v", Json::Number(PROTOCOL_VERSION as f64)),
            (
                "id",
                id.map_or(Json::Null, |id| Json::String(id.to_string())),
            ),
            ("ok", Json::Bool(false)),
            ("error", object(error)),
        ]))
    }

    /// Appends a top-level member to the reply envelope (used to stamp
    /// `wal_seq` onto every reply when the write-ahead log is armed —
    /// the member appears last, so WAL-off reply bytes are unchanged).
    #[must_use]
    pub fn with_member(mut self, key: &str, value: Json) -> Response {
        if let Json::Object(members) = &mut self.0 {
            members.push((key.to_string(), value));
        }
        self
    }

    /// The one-line wire encoding.
    pub fn to_line(&self) -> String {
        self.0.to_line()
    }

    /// The underlying JSON value (tests and clients).
    pub fn json(&self) -> &Json {
        &self.0
    }

    /// Parses a response line back into its JSON value, validating the
    /// envelope (version, id, `ok` flag, error shape).
    ///
    /// # Errors
    ///
    /// A message describing the envelope violation.
    pub fn parse(line: &str) -> Result<Response, String> {
        let doc = Json::parse(line)?;
        if doc.get("v").and_then(Json::as_u64) != Some(PROTOCOL_VERSION) {
            return Err("missing or unsupported \"v\"".to_string());
        }
        match doc.get("id") {
            Some(Json::String(_)) | Some(Json::Null) => {}
            _ => return Err("missing \"id\"".to_string()),
        }
        match doc.get("ok") {
            Some(Json::Bool(true)) => {}
            Some(Json::Bool(false)) => {
                let error = doc.get("error").ok_or("error reply without \"error\"")?;
                if error.get("kind").and_then(Json::as_str).is_none() {
                    return Err("\"error\" without string \"kind\"".to_string());
                }
            }
            _ => return Err("missing boolean \"ok\"".to_string()),
        }
        Ok(Response(doc))
    }

    /// Whether this is a success reply.
    pub fn is_ok(&self) -> bool {
        matches!(self.0.get("ok"), Some(Json::Bool(true)))
    }

    /// The echoed request id (`None` for unaddressable parse errors).
    pub fn id(&self) -> Option<&str> {
        self.0.get("id").and_then(Json::as_str)
    }

    /// The error kind of a failure reply.
    pub fn error_kind(&self) -> Option<&str> {
        self.0
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
    }
}

impl From<&ProtocolError> for Response {
    fn from(e: &ProtocolError) -> Self {
        Response::error(e.id.as_deref(), e.kind, &e.message)
    }
}

impl std::fmt::Display for Response {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_line())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trips(req: Request) {
        let line = req.to_line();
        let parsed = Request::parse(&line).unwrap_or_else(|e| panic!("{line}: {e:?}"));
        assert_eq!(parsed, req, "{line}");
        assert_eq!(parsed.to_line(), line, "re-render is byte-stable");
    }

    #[test]
    fn every_op_round_trips() {
        round_trips(Request {
            id: "a-1".into(),
            session: None,
            op: Op::Disrupt {
                nodes: vec![1, 2],
                edges: vec![0],
                cost: 2.5,
            },
        });
        round_trips(Request {
            id: "r".into(),
            session: Some("ops".into()),
            op: Op::Repair {
                nodes: vec![],
                edges: vec![3],
            },
        });
        round_trips(Request {
            id: "d".into(),
            session: None,
            op: Op::Demand {
                pairs: vec![(0, 5, 3.25), (2, 4, 1.0)],
                replace: true,
            },
        });
        round_trips(Request {
            id: "q".into(),
            session: Some("what-if".into()),
            op: Op::QueryRoutability { degraded_ok: false },
        });
        round_trips(Request {
            id: "qd".into(),
            session: None,
            op: Op::QueryRoutability { degraded_ok: true },
        });
        round_trips(Request {
            id: "p".into(),
            session: None,
            op: Op::QueryPlan {
                solver: Some("grd-nc".into()),
                deadline_ms: Some(250),
                degraded_ok: true,
            },
        });
        round_trips(Request {
            id: "p2".into(),
            session: None,
            op: Op::QueryPlan {
                solver: None,
                deadline_ms: None,
                degraded_ok: false,
            },
        });
        round_trips(Request {
            id: "s".into(),
            session: None,
            op: Op::Snapshot {
                fork: Some("backup".into()),
                path: Some("/tmp/snap.json".into()),
            },
        });
        round_trips(Request {
            id: "s2".into(),
            session: None,
            op: Op::Snapshot {
                fork: None,
                path: None,
            },
        });
        round_trips(Request {
            id: "h".into(),
            session: None,
            op: Op::Health,
        });
        round_trips(Request {
            id: "bye".into(),
            session: None,
            op: Op::Shutdown,
        });
    }

    #[test]
    fn with_member_appends_to_the_envelope_tail() {
        let reply = Response::ok("d1", "disrupt", vec![("broken_nodes", Json::Number(1.0))])
            .with_member("wal_seq", Json::Number(7.0));
        let line = reply.to_line();
        assert!(line.ends_with(",\"wal_seq\":7}"), "{line}");
        let parsed = Response::parse(&line).unwrap();
        assert_eq!(parsed.json().get("wal_seq").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn malformed_lines_are_structured_errors() {
        for (line, kind) in [
            ("", "parse"),
            ("not json", "parse"),
            ("[1,2]", "parse"),
            ("{}", "parse"),
            (r#"{"id": 7, "v": 1, "op": "shutdown"}"#, "parse"),
            (r#"{"id": "x", "op": "shutdown"}"#, "version"),
            (r#"{"id": "x", "v": 2, "op": "shutdown"}"#, "version"),
            (r#"{"id": "x", "v": 1}"#, "parse"),
            (r#"{"id": "x", "v": 1, "op": "reboot"}"#, "unknown_op"),
            (
                r#"{"id": "x", "v": 1, "op": "disrupt", "nodes": "all"}"#,
                "bad_request",
            ),
            (
                r#"{"id": "x", "v": 1, "op": "disrupt", "nodes": [-1]}"#,
                "bad_request",
            ),
            (
                r#"{"id": "x", "v": 1, "op": "disrupt", "cost": "big"}"#,
                "bad_request",
            ),
            (
                r#"{"id": "x", "v": 1, "op": "demand", "pairs": [[1, 2]]}"#,
                "bad_request",
            ),
            (
                r#"{"id": "x", "v": 1, "op": "demand", "replace": 1}"#,
                "bad_request",
            ),
            (
                r#"{"id": "x", "v": 1, "op": "query_plan", "deadline_ms": -5}"#,
                "bad_request",
            ),
            (
                r#"{"id": "x", "v": 1, "op": "query_plan", "solver": ""}"#,
                "bad_request",
            ),
            (
                r#"{"id": "x", "v": 1, "session": "", "op": "shutdown"}"#,
                "bad_request",
            ),
            (
                r#"{"id": "x", "v": 1, "op": "query_routability", "degraded_ok": 1}"#,
                "bad_request",
            ),
            (
                r#"{"id": "x", "v": 1, "op": "snapshot", "path": ""}"#,
                "bad_request",
            ),
        ] {
            let err = Request::parse(line).expect_err(line);
            assert_eq!(err.kind, kind, "{line}: {err:?}");
            // Every error renders as a valid error response line.
            let rendered = Response::from(&err).to_line();
            let reply = Response::parse(&rendered).unwrap();
            assert!(!reply.is_ok());
            assert_eq!(reply.error_kind(), Some(kind));
        }
    }

    #[test]
    fn recoverable_ids_are_carried_into_the_error() {
        let err = Request::parse(r#"{"id": "x-9", "v": 1, "op": "reboot"}"#).unwrap_err();
        assert_eq!(err.id.as_deref(), Some("x-9"));
        let err = Request::parse("garbage").unwrap_err();
        assert_eq!(err.id, None);
        assert!(Response::from(&err).to_line().contains("\"id\":null"));
    }

    #[test]
    fn response_envelope_is_validated() {
        let ok = Response::ok(
            "q1",
            "query_routability",
            vec![("routable", Json::Bool(true))],
        );
        let parsed = Response::parse(&ok.to_line()).unwrap();
        assert!(parsed.is_ok());
        assert_eq!(parsed.id(), Some("q1"));
        assert!(
            Response::parse(r#"{"id":"x","ok":true}"#).is_err(),
            "no version"
        );
        assert!(
            Response::parse(r#"{"v":1,"id":"x","ok":false}"#).is_err(),
            "no error"
        );
    }

    #[test]
    fn error_with_carries_extra_members() {
        let reply = Response::error_with(
            Some("r1"),
            "overloaded",
            "queue full",
            vec![("retry_after_ms", Json::Number(40.0))],
        );
        let parsed = Response::parse(&reply.to_line()).unwrap();
        assert!(!parsed.is_ok());
        assert_eq!(parsed.error_kind(), Some("overloaded"));
        assert_eq!(
            parsed
                .json()
                .get("error")
                .and_then(|e| e.get("retry_after_ms"))
                .and_then(Json::as_u64),
            Some(40)
        );
    }
}
