//! Per-session warm state.
//!
//! Every session owns a private [`RecoveryProblem`] overlay — cloned
//! once from the shared immutable base topology when the session is
//! created — plus a persistent [`IncrementalOracle`] whose witnesses
//! and warm LP bases survive across requests. That persistence is the
//! daemon's whole value proposition: the first routability query after
//! a disruption pays a solve, subsequent queries on nearby states are
//! answered from monotone witnesses or a dual-simplex re-solve of the
//! same warm system, orders of magnitude cheaper than booting a
//! process and solving cold (`BENCH_serve.json` pins the ratio).
//!
//! `query_plan` deliberately does **not** reuse warm solver state: each
//! plan request builds a fresh solver from its [`SolverSpec`] and a
//! fresh [`SolveContext`], so the produced plan is byte-identical to
//! solving the same prefix state from scratch — the replay-determinism
//! contract. Only the *oracle* is warm, and the incremental backend's
//! routability verdicts and satisfied totals are exact regardless of
//! history.

use netrec_core::oracle::{
    ConcurrentFlowApprox, EvalOracle, IncrementalOracle, OracleStats, RoutabilityOracle,
};
use netrec_core::solver::{SolveContext, SolverSpec};
use netrec_core::{
    AnswerSource, RecoveryError, RecoveryPlan, RecoveryProblem, RoutabilityArtifact, StatePatch,
};
use std::sync::Arc;
use std::time::Instant;

/// The last known-good plan a session produced, kept so a later
/// deadline-interrupted `query_plan` with `degraded_ok` can answer
/// *something* — stale but honest, with staleness metadata attached.
#[derive(Debug, Clone)]
pub struct StalePlan {
    /// The normalized plan as originally produced.
    pub plan: RecoveryPlan,
    /// The solver spec string that produced it.
    pub solver: String,
    /// `events_applied` at production time (staleness =
    /// current − this).
    pub events_applied: usize,
    /// The session fingerprint at production time.
    pub fingerprint: u64,
}

/// One live session: a problem overlay plus warm oracle state.
pub struct Session {
    base: Arc<RecoveryProblem>,
    problem: RecoveryProblem,
    oracle: IncrementalOracle,
    /// Optional precomputed routability artifact, shared read-only
    /// across every session of the daemon (`netrec-serve --artifact`).
    /// Probed before the warm oracle on exact routability queries: a
    /// hit is an O(1)–O(|E|) lookup that touches no live solver state.
    artifact: Option<Arc<RoutabilityArtifact>>,
    /// Artifact probe outcomes for this session (the warm oracle's own
    /// counters cannot see queries the artifact absorbed).
    artifact_hits: std::cell::Cell<usize>,
    artifact_misses: std::cell::Cell<usize>,
    /// Protocol events successfully applied since creation (forks
    /// inherit the parent's count — it measures state lineage depth,
    /// not per-session traffic).
    events_applied: usize,
    /// Memoized routability verdict and the tier that produced it,
    /// valid while `events_applied` matches the recorded value. Every
    /// mutation goes through [`Session::apply_stream`], so an unchanged
    /// counter proves the observable state is unchanged and the verdict
    /// can be replayed in O(1) — repeat monitoring queries skip even
    /// the O(|V|+|E|) canonicalization the warm oracle would pay. The
    /// replay reports the *original* answer source: the tier contract
    /// describes where the verdict came from, not the cost of the
    /// replay.
    routability_cache: std::cell::Cell<Option<(usize, bool, AnswerSource)>>,
    /// Memoized [`Session::fingerprint`] under the same invalidation
    /// rule — every response carries the generation, and recomputing an
    /// O(|V|+|E|) hash per reply would dominate cheap queries.
    fingerprint_cache: std::cell::Cell<Option<(usize, u64)>>,
    /// Last known-good plan (degraded `query_plan` fallback). Never
    /// consulted on the normal path, so it cannot perturb replay
    /// determinism of fault-free streams.
    last_plan: std::cell::RefCell<Option<StalePlan>>,
}

impl Session {
    /// Opens a session on the shared base topology. The overlay is a
    /// one-time clone: sessions pay O(|V|+|E|) memory each for fully
    /// independent mutation, which keeps every query lock-free with
    /// respect to other sessions.
    pub fn new(base: Arc<RecoveryProblem>) -> Self {
        Session {
            problem: (*base).clone(),
            oracle: IncrementalOracle::new(),
            base,
            artifact: None,
            artifact_hits: std::cell::Cell::new(0),
            artifact_misses: std::cell::Cell::new(0),
            events_applied: 0,
            routability_cache: std::cell::Cell::new(None),
            fingerprint_cache: std::cell::Cell::new(None),
            last_plan: std::cell::RefCell::new(None),
        }
    }

    /// Attaches (or detaches) the shared precomputed artifact. Exact
    /// routability queries probe it before the warm oracle; answers
    /// stay exact either way (the artifact stores proven verdicts
    /// only), so attaching one changes costs and provenance, never
    /// verdicts.
    pub fn set_artifact(&mut self, artifact: Option<Arc<RoutabilityArtifact>>) {
        self.artifact = artifact;
    }

    /// Rebuilds a session from persisted snapshot parts: stored damage,
    /// the stored demand set (replacing the base's), and the lineage
    /// depth. The oracle starts cold — warm witnesses are a cache, not
    /// state, so dropping them is correct (just slower on first query).
    ///
    /// # Errors
    ///
    /// Component ids out of range for the base topology, or invalid
    /// costs/amounts.
    pub fn restore(
        base: Arc<RecoveryProblem>,
        broken_nodes: &[(usize, f64)],
        broken_edges: &[(usize, f64)],
        demands: &[(usize, usize, f64)],
        events_applied: usize,
    ) -> Result<Session, RecoveryError> {
        let mut session = Session::new(base);
        let node_count = session.problem.graph().node_count();
        let edge_count = session.problem.graph().edge_count();
        session.problem.clear_demands();
        for &(s, t, amount) in demands {
            if s >= node_count || t >= node_count {
                return Err(RecoveryError::UnknownDemandEndpoint);
            }
            session.problem.add_demand(
                session.problem.graph().node(s),
                session.problem.graph().node(t),
                amount,
            )?;
        }
        for &(n, cost) in broken_nodes {
            if n >= node_count {
                return Err(RecoveryError::UnknownDemandEndpoint);
            }
            session
                .problem
                .break_node(netrec_graph::NodeId::new(n), cost)?;
        }
        for &(e, cost) in broken_edges {
            if e >= edge_count {
                return Err(RecoveryError::UnknownDemandEndpoint);
            }
            session
                .problem
                .break_edge(netrec_graph::EdgeId::new(e), cost)?;
        }
        session.events_applied = events_applied;
        Ok(session)
    }

    /// Forks this session: the overlay is cloned and the oracle's
    /// transferable warm state (generation fingerprint + monotone
    /// witnesses) is carried over, so the fork answers its first
    /// queries warm instead of cold.
    pub fn fork(&self) -> Session {
        let oracle = IncrementalOracle::new();
        oracle.restore_state(&self.oracle.snapshot_state());
        Session {
            base: Arc::clone(&self.base),
            problem: self.problem.clone(),
            oracle,
            // The artifact is shared; probe counters are per-session
            // traffic and start fresh (like the oracle's own counters).
            artifact: self.artifact.clone(),
            artifact_hits: std::cell::Cell::new(0),
            artifact_misses: std::cell::Cell::new(0),
            events_applied: self.events_applied,
            // The fork shares the parent's state, so its verdict too.
            routability_cache: self.routability_cache.clone(),
            fingerprint_cache: self.fingerprint_cache.clone(),
            last_plan: self.last_plan.clone(),
        }
    }

    /// The current overlay state.
    pub fn problem(&self) -> &RecoveryProblem {
        &self.problem
    }

    /// Events successfully applied along this session's lineage.
    pub fn events_applied(&self) -> usize {
        self.events_applied
    }

    /// Applies a patch stream; prefix-applied on error (the protocol
    /// rejects the whole event, but [`RecoveryProblem::apply_stream`]
    /// semantics mean a multi-component event is atomic only when every
    /// component validates — the engine pre-validates ids against the
    /// topology so in practice rejection happens before mutation).
    ///
    /// # Errors
    ///
    /// The first patch rejection with its position.
    pub fn apply_stream(
        &mut self,
        patches: &[StatePatch],
    ) -> Result<usize, (usize, RecoveryError)> {
        let applied = self.problem.apply_stream(patches)?;
        self.events_applied += 1;
        Ok(applied)
    }

    /// FNV-1a fingerprint of the session's *observable* state: topology
    /// shape, capacities, broken masks, repair costs of broken
    /// components, and the demand list. Two sessions with equal
    /// fingerprints answer every query identically, so responses carry
    /// it as the generation witness for replay verification.
    pub fn fingerprint(&self) -> u64 {
        if let Some((at, fp)) = self.fingerprint_cache.get() {
            if at == self.events_applied {
                return fp;
            }
        }
        let fp = self.fingerprint_uncached();
        self.fingerprint_cache.set(Some((self.events_applied, fp)));
        fp
    }

    /// The full O(|V|+|E|) hash behind [`Session::fingerprint`] (also
    /// exercised directly by tests to prove the cache never desyncs).
    fn fingerprint_uncached(&self) -> u64 {
        let mut h = Fnv::new();
        let g = self.problem.graph();
        h.usize(g.node_count());
        h.usize(g.edge_count());
        for e in 0..g.edge_count() {
            let id = netrec_graph::EdgeId::new(e);
            let (u, v) = g.endpoints(id);
            h.usize(u.index());
            h.usize(v.index());
            h.f64(g.capacity(id));
        }
        for (i, &broken) in self.problem.broken_node_mask().iter().enumerate() {
            if broken {
                h.usize(i);
                h.f64(self.problem.node_cost(g.node(i)));
            }
        }
        h.u8(0xff); // domain separator: broken nodes / broken edges
        for (i, &broken) in self.problem.broken_edge_mask().iter().enumerate() {
            if broken {
                h.usize(i);
                h.f64(self.problem.edge_cost(netrec_graph::EdgeId::new(i)));
            }
        }
        h.u8(0xfe);
        for (s, t, amount) in self.problem.demand_pairs() {
            h.usize(s.index());
            h.usize(t.index());
            h.f64(amount);
        }
        h.finish()
    }

    /// Answers "is the current state routable?" — precomputed artifact
    /// first (when one is attached), warm oracle on a miss — returning
    /// the verdict, the oracle work this request cost (the delta
    /// against the pre-request counters), and the [`AnswerSource`]
    /// tier that produced the verdict.
    ///
    /// # Errors
    ///
    /// LP-level failures from the oracle.
    pub fn query_routability(&self) -> Result<(bool, OracleStats, AnswerSource), RecoveryError> {
        // Unchanged state ⇒ unchanged verdict: answer in O(1) with a
        // zero-work stats delta (neither artifact nor oracle was
        // consulted) and the source recorded when the verdict was
        // actually produced.
        if let Some((at, verdict, source)) = self.routability_cache.get() {
            if at == self.events_applied {
                return Ok((verdict, OracleStats::default(), source));
            }
        }
        let (nm, em) = self.problem.working_masks();
        let view = self
            .problem
            .full_view()
            .with_node_mask(&nm)
            .with_edge_mask(&em);
        let demands = self.problem.demands();
        if let Some(artifact) = &self.artifact {
            if let Some(verdict) = artifact.lookup(&view, &demands) {
                self.artifact_hits.set(self.artifact_hits.get() + 1);
                self.routability_cache.set(Some((
                    self.events_applied,
                    verdict,
                    AnswerSource::Artifact,
                )));
                let cost = OracleStats {
                    routability_queries: 1,
                    artifact_hits: 1,
                    ..OracleStats::default()
                };
                return Ok((verdict, cost, AnswerSource::Artifact));
            }
            self.artifact_misses.set(self.artifact_misses.get() + 1);
        }
        let baseline = self.oracle.stats();
        let routable = self.oracle.is_routable(&view, &demands)?;
        let mut cost = self.oracle.stats().delta_since(&baseline);
        if self.artifact.is_some() {
            cost.artifact_misses = 1;
        }
        let source = AnswerSource::classify(&cost);
        self.routability_cache
            .set(Some((self.events_applied, routable, source)));
        Ok((routable, cost, source))
    }

    /// Answers routability *degradedly*: a fresh conservative
    /// concurrent-flow oracle instead of the warm exact path. Returns
    /// the verdict plus a certificate level — `"exact"` (verdict cache
    /// hit or exact-LP fast path answered), `"certified"` (the
    /// Garg–Könemann threshold certificate proved feasibility), or
    /// `"conservative"` (an unroutable verdict that may be a boundary
    /// artifact — only extra repairs at stake, never correctness).
    ///
    /// Isolation: the warm oracle is not consulted, and neither the
    /// verdict cache nor the warm state is updated — a conservative
    /// degraded verdict must never poison the exact path, and a
    /// fault-free replay must be byte-identical whether or not degraded
    /// queries ran in between.
    ///
    /// # Errors
    ///
    /// LP-level failures from the fallback oracle.
    pub fn query_routability_degraded(&self) -> Result<(bool, &'static str), RecoveryError> {
        if let Some((at, verdict, _)) = self.routability_cache.get() {
            if at == self.events_applied {
                return Ok((verdict, "exact"));
            }
        }
        let oracle = ConcurrentFlowApprox::default();
        let (nm, em) = self.problem.working_masks();
        let view = self
            .problem
            .full_view()
            .with_node_mask(&nm)
            .with_edge_mask(&em);
        let routable = oracle.is_routable(&view, &self.problem.demands())?;
        let stats = oracle.stats();
        let certificate = if stats.boundary_fallbacks > 0 {
            "exact"
        } else if routable {
            "certified"
        } else {
            "conservative"
        };
        Ok((routable, certificate))
    }

    /// Solves the current state with a fresh solver and a fresh
    /// context (plus an optional absolute deadline — absolute so queue
    /// wait counts against the request budget). Determinism: nothing
    /// warm flows into the solve, so the plan equals a from-scratch
    /// solve of the same state with the same spec. With `inject_fault`
    /// the context's chaos hook is armed and the solve fails on its
    /// first checkpoint with zero side effects.
    ///
    /// # Errors
    ///
    /// Solver failures, including [`RecoveryError::DeadlineExceeded`]
    /// when the per-request budget runs out and
    /// [`RecoveryError::InjectedFault`] under the chaos plane — the
    /// caller maps both to typed responses and the session survives.
    pub fn query_plan(
        &self,
        spec: &SolverSpec,
        deadline_at: Option<Instant>,
        inject_fault: bool,
    ) -> Result<RecoveryPlan, RecoveryError> {
        let solver = spec.build();
        let mut ctx = SolveContext::new();
        if let Some(at) = deadline_at {
            ctx = ctx.with_deadline_at(at);
        }
        if inject_fault {
            ctx = ctx.with_injected_fault();
        }
        let mut plan = solver.solve(&self.problem, &mut ctx)?;
        plan.normalize();
        self.last_plan.replace(Some(StalePlan {
            plan: plan.clone(),
            solver: spec.to_string(),
            events_applied: self.events_applied,
            fingerprint: self.fingerprint(),
        }));
        Ok(plan)
    }

    /// The last known-good plan, if any (degraded `query_plan`
    /// fallback).
    pub fn last_plan(&self) -> Option<StalePlan> {
        self.last_plan.borrow().clone()
    }

    /// Cumulative oracle counters since the session opened, including
    /// artifact probe outcomes. Queries the artifact absorbed count as
    /// routability queries here — the counters describe questions asked
    /// of the session, not of any one backend.
    pub fn oracle_stats(&self) -> OracleStats {
        let mut stats = self.oracle.stats();
        stats.routability_queries += self.artifact_hits.get();
        stats.artifact_hits += self.artifact_hits.get();
        stats.artifact_misses += self.artifact_misses.get();
        stats
    }

    /// Witness count of the warm oracle state (diagnostics).
    pub fn warm_witnesses(&self) -> usize {
        self.oracle.snapshot_state().witness_count()
    }
}

/// FNV-1a, 64-bit. Tiny, dependency-free, stable across platforms —
/// exactly what a wire-visible fingerprint needs (`DefaultHasher` is
/// explicitly unstable across releases).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn usize(&mut self, v: usize) {
        for b in (v as u64).to_le_bytes() {
            self.u8(b);
        }
    }

    fn f64(&mut self, v: f64) {
        for b in v.to_bits().to_le_bytes() {
            self.u8(b);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrec_graph::{EdgeId, Graph, NodeId};

    fn base() -> Arc<RecoveryProblem> {
        let mut g = Graph::with_nodes(4);
        g.add_edge(g.node(0), g.node(1), 10.0).unwrap();
        g.add_edge(g.node(1), g.node(2), 10.0).unwrap();
        g.add_edge(g.node(2), g.node(3), 10.0).unwrap();
        g.add_edge(g.node(0), g.node(3), 10.0).unwrap();
        let mut p = RecoveryProblem::new(g);
        p.add_demand(p.graph().node(0), p.graph().node(3), 5.0)
            .unwrap();
        Arc::new(p)
    }

    #[test]
    fn fingerprint_tracks_observable_state() {
        let mut a = Session::new(base());
        let b = Session::new(base());
        assert_eq!(a.fingerprint(), b.fingerprint(), "same state, same print");
        let before = a.fingerprint();
        a.apply_stream(&[StatePatch::BreakEdge {
            edge: EdgeId::new(3),
            cost: 2.0,
        }])
        .unwrap();
        assert_ne!(a.fingerprint(), before, "a break changes the print");
        a.apply_stream(&[StatePatch::RepairEdge {
            edge: EdgeId::new(3),
        }])
        .unwrap();
        assert_eq!(
            a.fingerprint(),
            before,
            "repair restores the observable state (costs of intact components are unobservable)"
        );
    }

    #[test]
    fn routability_flips_with_damage() {
        let mut s = Session::new(base());
        assert!(s.query_routability().unwrap().0);
        s.apply_stream(&[
            StatePatch::BreakEdge {
                edge: EdgeId::new(3),
                cost: 1.0,
            },
            StatePatch::BreakEdge {
                edge: EdgeId::new(1),
                cost: 1.0,
            },
        ])
        .unwrap();
        let (routable, cost, _) = s.query_routability().unwrap();
        assert!(!routable);
        assert!(cost.routability_queries >= 1, "delta covers this request");
        s.apply_stream(&[StatePatch::RepairEdge {
            edge: EdgeId::new(1),
        }])
        .unwrap();
        assert!(s.query_routability().unwrap().0);
    }

    #[test]
    fn repeat_queries_are_replayed_without_oracle_work() {
        let mut s = Session::new(base());
        let (first, cost, source) = s.query_routability().unwrap();
        assert!(first);
        assert!(cost.routability_queries >= 1, "first query pays");
        // Same state: the verdict replays, the oracle is not consulted,
        // and the replay reports the original answer source.
        let (again, cost, replayed) = s.query_routability().unwrap();
        assert!(again);
        assert_eq!(cost, OracleStats::default(), "cached verdict is free");
        assert_eq!(replayed, source, "replay keeps the original source");
        // Any mutation invalidates the cache.
        s.apply_stream(&[
            StatePatch::BreakEdge {
                edge: EdgeId::new(3),
                cost: 1.0,
            },
            StatePatch::BreakEdge {
                edge: EdgeId::new(1),
                cost: 1.0,
            },
        ])
        .unwrap();
        let (after, cost, _) = s.query_routability().unwrap();
        assert!(!after);
        assert!(cost.routability_queries >= 1, "mutation forces a re-answer");
        // The fingerprint cache obeys the same invalidation rule.
        assert_eq!(s.fingerprint(), s.fingerprint_uncached());
        assert_eq!(s.fingerprint(), s.fingerprint_uncached());
    }

    #[test]
    fn forks_inherit_state_and_diverge_independently() {
        let mut a = Session::new(base());
        a.apply_stream(&[StatePatch::BreakEdge {
            edge: EdgeId::new(0),
            cost: 1.0,
        }])
        .unwrap();
        a.query_routability().unwrap();
        let mut b = a.fork();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(b.warm_witnesses() > 0, "fork starts warm");
        b.apply_stream(&[StatePatch::BreakEdge {
            edge: EdgeId::new(3),
            cost: 1.0,
        }])
        .unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert!(a.query_routability().unwrap().0, "parent unaffected");
        assert!(!b.query_routability().unwrap().0);
    }

    #[test]
    fn attached_artifact_answers_swept_states_without_oracle_work() {
        use netrec_core::oracle::artifact::ArtifactBuilder;
        use netrec_core::oracle::ExactLp;

        let base = base();
        let demands = base.demands();
        let exact = ExactLp::new();
        // Sweep the intact state and every single-edge cut offline.
        let mut builder = ArtifactBuilder::new(base.graph(), &demands);
        let mut masks: Vec<Vec<bool>> = vec![vec![true; 4]];
        for e in 0..4 {
            let mut m = vec![true; 4];
            m[e] = false;
            masks.push(m);
        }
        for mask in &masks {
            let view = base.graph().view().with_edge_mask(mask);
            let routable = exact.is_routable(&view, &demands).unwrap();
            builder.record(&view, &demands, routable);
        }
        let artifact = Arc::new(builder.finish("square", &["single-cut".to_string()]));

        let mut s = Session::new(Arc::clone(&base));
        s.set_artifact(Some(Arc::clone(&artifact)));
        s.apply_stream(&[StatePatch::BreakEdge {
            edge: EdgeId::new(3),
            cost: 1.0,
        }])
        .unwrap();
        // A swept state: the artifact answers, no solver state touched.
        let (routable, cost, source) = s.query_routability().unwrap();
        assert!(routable);
        assert_eq!(source, netrec_core::AnswerSource::Artifact);
        assert_eq!(cost.artifact_hits, 1, "{cost:?}");
        assert_eq!(cost.lp_solves, 0, "{cost:?}");
        assert_eq!(cost.routability_queries, 1, "{cost:?}");
        // The O(1) replay reports the original source.
        let (_, cost, replayed) = s.query_routability().unwrap();
        assert_eq!(cost, OracleStats::default());
        assert_eq!(replayed, netrec_core::AnswerSource::Artifact);
        // Cumulative session stats fold the artifact probes in.
        let stats = s.oracle_stats();
        assert_eq!(stats.artifact_hits, 1, "{stats:?}");
        assert_eq!(stats.routability_queries, 1, "{stats:?}");
        // Forks share the artifact (fresh counters).
        let mut f = s.fork();
        f.apply_stream(&[StatePatch::RepairEdge {
            edge: EdgeId::new(3),
        }])
        .unwrap();
        let (routable, cost, source) = f.query_routability().unwrap();
        assert!(routable, "intact square is routable");
        assert_eq!(source, netrec_core::AnswerSource::Artifact);
        assert_eq!(cost.artifact_hits, 1, "{cost:?}");
        assert_eq!(f.oracle_stats().artifact_hits, 1);
        // An unswept state (two broken edges) misses and falls through
        // to the warm oracle — verdict still exact, provenance honest.
        s.apply_stream(&[StatePatch::BreakEdge {
            edge: EdgeId::new(1),
            cost: 1.0,
        }])
        .unwrap();
        let (routable, cost, source) = s.query_routability().unwrap();
        assert!(!routable, "edges 1 and 3 down severs 0→3");
        assert_ne!(source, netrec_core::AnswerSource::Artifact);
        assert_eq!(cost.artifact_misses, 1, "{cost:?}");
    }

    #[test]
    fn plans_match_from_scratch_solves() {
        let mut s = Session::new(base());
        s.apply_stream(&[
            StatePatch::BreakEdge {
                edge: EdgeId::new(3),
                cost: 1.0,
            },
            StatePatch::BreakNode {
                node: NodeId::new(1),
                cost: 1.0,
            },
        ])
        .unwrap();
        // Warm the oracle so any state leak would show.
        s.query_routability().unwrap();
        let spec = SolverSpec::parse("isp").unwrap();
        let warm = s.query_plan(&spec, None, false).unwrap();

        let mut scratch = (*base()).clone();
        scratch.break_edge(EdgeId::new(3), 1.0).unwrap();
        scratch.break_node(NodeId::new(1), 1.0).unwrap();
        let mut cold = spec
            .build()
            .solve(&scratch, &mut SolveContext::new())
            .unwrap();
        cold.normalize();
        assert_eq!(warm.repaired_nodes, cold.repaired_nodes);
        assert_eq!(warm.repaired_edges, cold.repaired_edges);
        assert_eq!(warm.algorithm, cold.algorithm);
    }

    #[test]
    fn zero_deadline_is_a_typed_interruption() {
        let mut s = Session::new(base());
        s.apply_stream(&[StatePatch::BreakEdge {
            edge: EdgeId::new(0),
            cost: 1.0,
        }])
        .unwrap();
        let spec = SolverSpec::parse("isp").unwrap();
        let err = s
            .query_plan(&spec, Some(Instant::now()), false)
            .unwrap_err();
        assert_eq!(err.kind(), "deadline_exceeded");
        assert!(err.is_interruption());
        // The session is still serviceable afterwards.
        assert!(s.query_routability().is_ok());
        assert!(s.query_plan(&spec, None, false).is_ok());
    }

    #[test]
    fn injected_fault_fails_the_solve_with_no_side_effects() {
        let mut s = Session::new(base());
        s.apply_stream(&[StatePatch::BreakEdge {
            edge: EdgeId::new(0),
            cost: 1.0,
        }])
        .unwrap();
        let spec = SolverSpec::parse("isp").unwrap();
        let err = s.query_plan(&spec, None, true).unwrap_err();
        assert_eq!(err.kind(), "injected_fault");
        assert!(s.last_plan().is_none(), "a failed solve records no plan");
        // The same session then solves normally.
        assert!(s.query_plan(&spec, None, false).is_ok());
        assert!(s.last_plan().is_some());
    }

    #[test]
    fn last_plan_tracks_staleness() {
        let mut s = Session::new(base());
        s.apply_stream(&[StatePatch::BreakEdge {
            edge: EdgeId::new(0),
            cost: 1.0,
        }])
        .unwrap();
        let spec = SolverSpec::parse("isp").unwrap();
        let plan = s.query_plan(&spec, None, false).unwrap();
        let stale = s.last_plan().unwrap();
        assert_eq!(stale.plan.repaired_edges, plan.repaired_edges);
        assert_eq!(stale.events_applied, s.events_applied());
        assert_eq!(stale.fingerprint, s.fingerprint());
        // Mutations age the stored plan but do not drop it.
        s.apply_stream(&[StatePatch::BreakEdge {
            edge: EdgeId::new(3),
            cost: 1.0,
        }])
        .unwrap();
        let stale = s.last_plan().unwrap();
        assert_eq!(s.events_applied() - stale.events_applied, 1);
        assert_ne!(stale.fingerprint, s.fingerprint());
    }

    #[test]
    fn degraded_routability_is_isolated_from_the_exact_path() {
        let mut s = Session::new(base());
        s.apply_stream(&[StatePatch::BreakEdge {
            edge: EdgeId::new(3),
            cost: 1.0,
        }])
        .unwrap();
        // No prior exact query: the degraded path answers without
        // touching the warm oracle or the verdict cache.
        let (routable, certificate) = s.query_routability_degraded().unwrap();
        assert!(routable, "one broken edge of the square leaves a path");
        assert!(matches!(certificate, "exact" | "certified"));
        assert_eq!(
            s.oracle_stats(),
            OracleStats::default(),
            "warm oracle untouched"
        );
        // An exact query afterwards pays full price (cache not seeded).
        let (exact, cost, _) = s.query_routability().unwrap();
        assert_eq!(exact, routable);
        assert!(cost.routability_queries >= 1, "cache was not poisoned");
        // With the verdict cache warm, the degraded path serves it.
        let (again, certificate) = s.query_routability_degraded().unwrap();
        assert_eq!(again, exact);
        assert_eq!(certificate, "exact");
    }

    #[test]
    fn restore_rebuilds_the_observable_state() {
        let mut s = Session::new(base());
        s.apply_stream(&[
            StatePatch::BreakEdge {
                edge: EdgeId::new(3),
                cost: 2.5,
            },
            StatePatch::BreakNode {
                node: NodeId::new(1),
                cost: 1.5,
            },
        ])
        .unwrap();
        let demands: Vec<(usize, usize, f64)> = s
            .problem()
            .demand_pairs()
            .iter()
            .map(|&(a, b, d)| (a.index(), b.index(), d))
            .collect();
        let restored = Session::restore(
            base(),
            &[(1, 1.5)],
            &[(3, 2.5)],
            &demands,
            s.events_applied(),
        )
        .unwrap();
        assert_eq!(restored.fingerprint(), s.fingerprint());
        assert_eq!(restored.events_applied(), s.events_applied());
        // Out-of-range components are typed errors, not panics.
        assert!(Session::restore(base(), &[(99, 1.0)], &[], &demands, 1).is_err());
        assert!(Session::restore(base(), &[], &[(99, 1.0)], &demands, 1).is_err());
        assert!(Session::restore(base(), &[], &[], &[(0, 99, 1.0)], 1).is_err());
    }
}
