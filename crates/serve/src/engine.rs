//! Request dispatch: the bridge from protocol values to session state.
//!
//! [`Engine::process_line`] is the daemon's whole behavior as one
//! synchronous, deterministic function — parse a request line, route it
//! to its session, render a response line. The server wraps it with
//! transports and a worker pool; tests and the replay bench call it
//! directly, so the golden streams CI diffs exercise exactly the code
//! the daemon runs.
//!
//! Mutating events pre-validate every component id against the topology
//! **before** applying anything, so a protocol event is atomic: either
//! the whole event commits or the session state is untouched and a
//! structured error comes back. (The underlying
//! [`RecoveryProblem::apply_stream`] is prefix-applied; the
//! pre-validation is what lifts that to all-or-nothing at the protocol
//! layer.)

use crate::protocol::{Op, Request, Response};
use crate::session::Session;
use netrec_core::oracle::OracleStats;
use netrec_core::solver::SolverSpec;
use netrec_core::{RecoveryError, RecoveryPlan, RecoveryProblem, StatePatch};
use netrec_graph::{EdgeId, NodeId};
use netrec_json::{object, Json};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The resident dispatcher: shared base topology, the session table,
/// and the shutdown latch.
pub struct Engine {
    base: Arc<RecoveryProblem>,
    sessions: Mutex<HashMap<String, Arc<Mutex<Session>>>>,
    default_solver: SolverSpec,
    shutdown: AtomicBool,
}

impl Engine {
    /// Boots an engine over `base`. `default_solver` answers
    /// `query_plan` requests that name no solver.
    pub fn new(base: RecoveryProblem, default_solver: SolverSpec) -> Self {
        Engine {
            base: Arc::new(base),
            sessions: Mutex::new(HashMap::new()),
            default_solver,
            shutdown: AtomicBool::new(false),
        }
    }

    /// Whether a `shutdown` request has been accepted.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The shared base topology.
    pub fn base(&self) -> &Arc<RecoveryProblem> {
        &self.base
    }

    /// Number of open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().expect("session table poisoned").len()
    }

    /// The session handle for `name`, created on first use. The table
    /// lock is held only for the lookup — solves run under the
    /// individual session's lock, so a long `query_plan` in one session
    /// never blocks another session's queries.
    fn session(&self, name: &str) -> Arc<Mutex<Session>> {
        let mut table = self.sessions.lock().expect("session table poisoned");
        Arc::clone(
            table
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Mutex::new(Session::new(Arc::clone(&self.base))))),
        )
    }

    /// Processes one request line and returns the response line
    /// (without trailing newline). Total: any input produces exactly
    /// one well-formed response line; nothing panics the caller's loop.
    pub fn process_line(&self, line: &str) -> String {
        match Request::parse(line) {
            Ok(req) => self.dispatch(&req).to_line(),
            Err(e) => Response::from(&e).to_line(),
        }
    }

    /// Routes a parsed request to its session.
    pub fn dispatch(&self, req: &Request) -> Response {
        let session_name = req.session_name();
        let handle = self.session(session_name);
        let mut session = handle.lock().expect("session poisoned");
        match &req.op {
            Op::Disrupt { nodes, edges, cost } => self.mutate(req, &mut session, |problem| {
                if !cost.is_finite() || *cost < 0.0 {
                    return Err(RecoveryError::InvalidCost(*cost));
                }
                let mut patches = Vec::with_capacity(nodes.len() + edges.len());
                for &n in nodes {
                    check_node(problem, n)?;
                    patches.push(StatePatch::BreakNode {
                        node: NodeId::new(n),
                        cost: *cost,
                    });
                }
                for &e in edges {
                    check_edge(problem, e)?;
                    patches.push(StatePatch::BreakEdge {
                        edge: EdgeId::new(e),
                        cost: *cost,
                    });
                }
                Ok(patches)
            }),
            Op::Repair { nodes, edges } => self.mutate(req, &mut session, |problem| {
                let mut patches = Vec::with_capacity(nodes.len() + edges.len());
                for &n in nodes {
                    check_node(problem, n)?;
                    patches.push(StatePatch::RepairNode {
                        node: NodeId::new(n),
                    });
                }
                for &e in edges {
                    check_edge(problem, e)?;
                    patches.push(StatePatch::RepairEdge {
                        edge: EdgeId::new(e),
                    });
                }
                Ok(patches)
            }),
            Op::Demand { pairs, replace } => self.mutate(req, &mut session, |problem| {
                let mut patches = Vec::with_capacity(pairs.len() + 1);
                if *replace {
                    patches.push(StatePatch::ClearDemands);
                }
                for &(s, t, amount) in pairs {
                    check_node(problem, s)?;
                    check_node(problem, t)?;
                    if s == t {
                        return Err(RecoveryError::UnknownDemandEndpoint);
                    }
                    if !amount.is_finite() || amount < 0.0 {
                        return Err(RecoveryError::InvalidCost(amount));
                    }
                    patches.push(StatePatch::AddDemand {
                        source: NodeId::new(s),
                        target: NodeId::new(t),
                        amount,
                    });
                }
                Ok(patches)
            }),
            Op::QueryRoutability => match session.query_routability() {
                Ok((routable, cost)) => Response::ok(
                    &req.id,
                    "query_routability",
                    vec![
                        ("generation", generation(&session)),
                        ("routable", Json::Bool(routable)),
                        ("oracle", stats_json(&cost)),
                    ],
                ),
                Err(e) => recovery_error(req, &e),
            },
            Op::QueryPlan {
                solver,
                deadline_ms,
            } => {
                let spec = match solver {
                    None => self.default_solver.clone(),
                    Some(s) => match SolverSpec::parse(s) {
                        Ok(spec) => spec,
                        Err(e) => {
                            return Response::error(
                                Some(&req.id),
                                "bad_request",
                                &format!("invalid solver spec: {e}"),
                            )
                        }
                    },
                };
                let baseline = session.oracle_stats();
                match session.query_plan(&spec, *deadline_ms) {
                    Ok(plan) => Response::ok(
                        &req.id,
                        "query_plan",
                        vec![
                            ("generation", generation(&session)),
                            ("solver", Json::String(spec.to_string())),
                            ("plan", plan_json(&plan, session.problem())),
                            (
                                "oracle",
                                stats_json(&session.oracle_stats().delta_since(&baseline)),
                            ),
                        ],
                    ),
                    Err(e) => recovery_error(req, &e),
                }
            }
            Op::Snapshot { fork } => {
                let mut body = vec![
                    ("generation", generation(&session)),
                    (
                        "nodes",
                        Json::Number(session.problem().graph().node_count() as f64),
                    ),
                    (
                        "edges",
                        Json::Number(session.problem().graph().edge_count() as f64),
                    ),
                    (
                        "broken_nodes",
                        Json::Number(session.problem().broken_node_count() as f64),
                    ),
                    (
                        "broken_edges",
                        Json::Number(session.problem().broken_edge_count() as f64),
                    ),
                    (
                        "demands",
                        Json::Number(session.problem().demand_pairs().len() as f64),
                    ),
                    (
                        "total_demand",
                        Json::Number(session.problem().total_demand()),
                    ),
                    (
                        "events_applied",
                        Json::Number(session.events_applied() as f64),
                    ),
                    (
                        "warm_witnesses",
                        Json::Number(session.warm_witnesses() as f64),
                    ),
                    ("oracle", stats_json(&session.oracle_stats())),
                ];
                if let Some(fork_name) = fork {
                    if fork_name == session_name {
                        return Response::error(
                            Some(&req.id),
                            "bad_request",
                            "cannot fork a session onto itself",
                        );
                    }
                    let mut table = self.sessions.lock().expect("session table poisoned");
                    if table.contains_key(fork_name) {
                        return Response::error(
                            Some(&req.id),
                            "bad_request",
                            &format!("session {fork_name:?} already exists"),
                        );
                    }
                    table.insert(fork_name.clone(), Arc::new(Mutex::new(session.fork())));
                    body.push(("forked", Json::String(fork_name.clone())));
                }
                Response::ok(&req.id, "snapshot", body)
            }
            Op::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                Response::ok(
                    &req.id,
                    "shutdown",
                    vec![("sessions", Json::Number(self.session_count() as f64))],
                )
            }
        }
    }

    /// Shared shape of the three mutating ops: validate and build the
    /// patch list against the current state, apply it atomically,
    /// answer with the new generation.
    fn mutate(
        &self,
        req: &Request,
        session: &mut Session,
        build: impl FnOnce(&RecoveryProblem) -> Result<Vec<StatePatch>, RecoveryError>,
    ) -> Response {
        let patches = match build(session.problem()) {
            Ok(p) => p,
            Err(e) => return recovery_error(req, &e),
        };
        match session.apply_stream(&patches) {
            Ok(applied) => Response::ok(
                &req.id,
                req.op.name(),
                vec![
                    ("generation", generation(session)),
                    ("applied", Json::Number(applied as f64)),
                    (
                        "broken_nodes",
                        Json::Number(session.problem().broken_node_count() as f64),
                    ),
                    (
                        "broken_edges",
                        Json::Number(session.problem().broken_edge_count() as f64),
                    ),
                ],
            ),
            // Unreachable given pre-validation, but keep the session
            // consistent and the reply structured if it ever fires.
            Err((_, e)) => recovery_error(req, &e),
        }
    }
}

fn check_node(problem: &RecoveryProblem, n: usize) -> Result<(), RecoveryError> {
    if n >= problem.graph().node_count() {
        return Err(RecoveryError::UnknownDemandEndpoint);
    }
    Ok(())
}

fn check_edge(problem: &RecoveryProblem, e: usize) -> Result<(), RecoveryError> {
    if e >= problem.graph().edge_count() {
        return Err(RecoveryError::UnknownDemandEndpoint);
    }
    Ok(())
}

/// The generation fingerprint as a fixed-width hex string (JSON numbers
/// are f64 and cannot carry 64 bits losslessly).
fn generation(session: &Session) -> Json {
    Json::String(format!("{:016x}", session.fingerprint()))
}

/// A solver-layer failure as a typed error reply. Interruptions
/// (deadline, cancellation) use the same path: the kind string tells
/// the client, and the session stays open.
fn recovery_error(req: &Request, e: &RecoveryError) -> Response {
    Response::error(Some(&req.id), e.kind(), &e.to_string())
}

/// The subset of oracle counters a client can act on.
fn stats_json(stats: &OracleStats) -> Json {
    object(vec![
        (
            "routability_queries",
            Json::Number(stats.routability_queries as f64),
        ),
        (
            "satisfaction_queries",
            Json::Number(stats.satisfaction_queries as f64),
        ),
        ("lp_solves", Json::Number(stats.lp_solves as f64)),
        (
            "warm_start_hits",
            Json::Number(stats.warm_start_hits as f64),
        ),
        ("cache_hits", Json::Number(stats.cache_hits as f64)),
        ("full_solves", Json::Number(stats.full_solves as f64)),
    ])
}

/// A plan in wire form: sorted component ids (the plan is normalized),
/// totals, and the solver's run counters.
fn plan_json(plan: &RecoveryPlan, problem: &RecoveryProblem) -> Json {
    object(vec![
        ("algorithm", Json::String(plan.algorithm.clone())),
        (
            "repaired_nodes",
            Json::Array(
                plan.repaired_nodes
                    .iter()
                    .map(|n| Json::Number(n.index() as f64))
                    .collect(),
            ),
        ),
        (
            "repaired_edges",
            Json::Array(
                plan.repaired_edges
                    .iter()
                    .map(|e| Json::Number(e.index() as f64))
                    .collect(),
            ),
        ),
        ("total_repairs", Json::Number(plan.total_repairs() as f64)),
        ("repair_cost", Json::Number(plan.repair_cost(problem))),
        ("iterations", Json::Number(plan.iterations as f64)),
        ("used_fallback", Json::Bool(plan.used_fallback)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrec_graph::Graph;

    fn engine() -> Engine {
        let mut g = Graph::with_nodes(4);
        g.add_edge(g.node(0), g.node(1), 10.0).unwrap();
        g.add_edge(g.node(1), g.node(2), 10.0).unwrap();
        g.add_edge(g.node(2), g.node(3), 10.0).unwrap();
        g.add_edge(g.node(0), g.node(3), 10.0).unwrap();
        let mut p = RecoveryProblem::new(g);
        p.add_demand(p.graph().node(0), p.graph().node(3), 5.0)
            .unwrap();
        Engine::new(p, SolverSpec::parse("isp").unwrap())
    }

    fn ok(engine: &Engine, line: &str) -> Response {
        let reply = Response::parse(&engine.process_line(line)).unwrap();
        assert!(reply.is_ok(), "{line} -> {}", reply.to_line());
        reply
    }

    fn err(engine: &Engine, line: &str) -> Response {
        let reply = Response::parse(&engine.process_line(line)).unwrap();
        assert!(!reply.is_ok(), "{line} -> {}", reply.to_line());
        reply
    }

    #[test]
    fn disrupt_query_repair_round() {
        let e = engine();
        let r = ok(&e, r#"{"v":1,"id":"q0","op":"query_routability"}"#);
        assert_eq!(r.json().get("routable"), Some(&Json::Bool(true)));
        ok(
            &e,
            r#"{"v":1,"id":"d1","op":"disrupt","edges":[1,3],"cost":2.0}"#,
        );
        let r = ok(&e, r#"{"v":1,"id":"q1","op":"query_routability"}"#);
        assert_eq!(r.json().get("routable"), Some(&Json::Bool(false)));
        ok(&e, r#"{"v":1,"id":"r1","op":"repair","edges":[3]}"#);
        let r = ok(&e, r#"{"v":1,"id":"q2","op":"query_routability"}"#);
        assert_eq!(r.json().get("routable"), Some(&Json::Bool(true)));
    }

    #[test]
    fn mutating_events_are_atomic() {
        let e = engine();
        let before = ok(&e, r#"{"v":1,"id":"s0","op":"snapshot"}"#);
        let gen_before = before.json().get("generation").cloned();
        // Edge 99 is out of range: the whole event must be rejected,
        // including the valid edge 1 before it.
        let r = err(&e, r#"{"v":1,"id":"d1","op":"disrupt","edges":[1,99]}"#);
        assert_eq!(r.error_kind(), Some("unknown_endpoint"));
        let after = ok(&e, r#"{"v":1,"id":"s1","op":"snapshot"}"#);
        assert_eq!(after.json().get("generation").cloned(), gen_before);
        assert_eq!(after.json().get("broken_edges"), Some(&Json::Number(0.0)));
    }

    #[test]
    fn sessions_are_isolated_and_forkable() {
        let e = engine();
        ok(
            &e,
            r#"{"v":1,"id":"d1","session":"a","op":"disrupt","edges":[0],"cost":1.0}"#,
        );
        let r = ok(
            &e,
            r#"{"v":1,"id":"q1","session":"b","op":"query_routability"}"#,
        );
        assert_eq!(r.json().get("routable"), Some(&Json::Bool(true)));
        let r = ok(
            &e,
            r#"{"v":1,"id":"s1","session":"a","op":"snapshot","fork":"a2"}"#,
        );
        assert_eq!(r.json().get("forked").and_then(Json::as_str), Some("a2"));
        // Fork carries the damage; diverging it leaves "a" untouched.
        ok(
            &e,
            r#"{"v":1,"id":"d2","session":"a2","op":"disrupt","edges":[3],"cost":1.0}"#,
        );
        let a = ok(&e, r#"{"v":1,"id":"s2","session":"a","op":"snapshot"}"#);
        assert_eq!(a.json().get("broken_edges"), Some(&Json::Number(1.0)));
        let a2 = ok(&e, r#"{"v":1,"id":"s3","session":"a2","op":"snapshot"}"#);
        assert_eq!(a2.json().get("broken_edges"), Some(&Json::Number(2.0)));
        // Forking onto an existing name is rejected.
        let r = err(
            &e,
            r#"{"v":1,"id":"s4","session":"a","op":"snapshot","fork":"a2"}"#,
        );
        assert_eq!(r.error_kind(), Some("bad_request"));
    }

    #[test]
    fn query_plan_solves_and_reports() {
        let e = engine();
        ok(
            &e,
            r#"{"v":1,"id":"d1","op":"disrupt","edges":[1,3],"cost":1.0}"#,
        );
        let r = ok(&e, r#"{"v":1,"id":"p1","op":"query_plan","solver":"isp"}"#);
        let plan = r.json().get("plan").unwrap();
        assert_eq!(plan.get("algorithm").and_then(Json::as_str), Some("ISP"));
        assert!(plan.get("total_repairs").and_then(Json::as_usize).unwrap() >= 1);
        let r = err(
            &e,
            r#"{"v":1,"id":"p2","op":"query_plan","solver":"warp-drive"}"#,
        );
        assert_eq!(r.error_kind(), Some("bad_request"));
    }

    #[test]
    fn deadline_exceeded_is_typed_and_survivable() {
        let e = engine();
        ok(
            &e,
            r#"{"v":1,"id":"d1","op":"disrupt","edges":[1,3],"cost":1.0}"#,
        );
        let r = err(&e, r#"{"v":1,"id":"p1","op":"query_plan","deadline_ms":0}"#);
        assert_eq!(r.error_kind(), Some("deadline_exceeded"));
        // The session survives the interruption.
        let r = ok(&e, r#"{"v":1,"id":"p2","op":"query_plan"}"#);
        assert!(r.is_ok(), "{}", r.to_line());
    }

    #[test]
    fn demand_replace_swaps_the_demand_set() {
        let e = engine();
        ok(
            &e,
            r#"{"v":1,"id":"m1","op":"demand","pairs":[[1,2,3.0]],"replace":true}"#,
        );
        let s = ok(&e, r#"{"v":1,"id":"s1","op":"snapshot"}"#);
        assert_eq!(s.json().get("demands"), Some(&Json::Number(1.0)));
        assert_eq!(s.json().get("total_demand"), Some(&Json::Number(3.0)));
        // Self-demand is rejected atomically.
        let r = err(
            &e,
            r#"{"v":1,"id":"m2","op":"demand","pairs":[[0,3,1.0],[2,2,1.0]]}"#,
        );
        assert_eq!(r.error_kind(), Some("unknown_endpoint"));
        let s = ok(&e, r#"{"v":1,"id":"s2","op":"snapshot"}"#);
        assert_eq!(s.json().get("demands"), Some(&Json::Number(1.0)));
    }

    #[test]
    fn shutdown_latches() {
        let e = engine();
        assert!(!e.is_shutting_down());
        ok(&e, r#"{"v":1,"id":"z","op":"shutdown"}"#);
        assert!(e.is_shutting_down());
    }

    #[test]
    fn malformed_lines_never_panic_and_always_answer() {
        let e = engine();
        for line in [
            "",
            "{",
            "[]",
            r#"{"v":9,"id":"x","op":"shutdown"}"#,
            "\u{0}",
        ] {
            let reply = Response::parse(&e.process_line(line)).unwrap();
            assert!(!reply.is_ok());
        }
        assert!(!e.is_shutting_down(), "bad version must not shut down");
    }
}
