//! Request dispatch: the bridge from protocol values to session state.
//!
//! [`Engine::process_line`] is the daemon's whole behavior as one
//! synchronous, deterministic function — parse a request line, route it
//! to its session, render a response line. The server wraps it with
//! transports and a worker pool; tests and the replay bench call it
//! directly, so the golden streams CI diffs exercise exactly the code
//! the daemon runs.
//!
//! Mutating events pre-validate every component id against the topology
//! **before** applying anything, so a protocol event is atomic: either
//! the whole event commits or the session state is untouched and a
//! structured error comes back. (The underlying
//! [`RecoveryProblem::apply_stream`] is prefix-applied; the
//! pre-validation is what lifts that to all-or-nothing at the protocol
//! layer.)

use crate::protocol::{Op, Request, Response};
use crate::session::Session;
use crate::wal::Wal;
use netrec_core::fault::{FaultPlan, Faults};
use netrec_core::fsio;
use netrec_core::oracle::OracleStats;
use netrec_core::solver::SolverSpec;
use netrec_core::{
    AnswerSource, RecoveryError, RecoveryPlan, RecoveryProblem, RoutabilityArtifact, StatePatch,
};
use netrec_graph::{EdgeId, NodeId};
use netrec_json::{object, Json};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// The outcome of a successful [`Engine::restore_from_file`].
#[derive(Debug, Clone)]
pub struct RestoreReport {
    /// The restored session's name (recorded in the snapshot).
    pub session: String,
    /// Set when the file's torn trailing record was salvaged — the
    /// restore succeeded from the valid prefix, but the operator should
    /// know the file was damaged and has been truncated.
    pub warning: Option<String>,
}

/// The resident dispatcher: shared base topology, the session table,
/// the shutdown latch, and (under chaos testing) the fault plan.
pub struct Engine {
    base: Arc<RecoveryProblem>,
    sessions: Mutex<HashMap<String, Arc<Mutex<Session>>>>,
    default_solver: SolverSpec,
    shutdown: AtomicBool,
    faults: Option<FaultPlan>,
    /// Shared precomputed routability artifact, attached to every
    /// session (created, forked, or restored) when present.
    artifact: Option<Arc<RoutabilityArtifact>>,
    /// Request index source for callers that dispatch without a
    /// transport (tests, benches, the CLI's inline loop): the server
    /// assigns indices at read time instead, so fault schedules hit the
    /// same requests at any worker count.
    dispatch_counter: AtomicU64,
    /// Boot time, for the `health` op's uptime.
    started: Instant,
    /// The write-ahead log, when `--wal` armed one (attached once at
    /// boot, after recovery replay, before any transport runs).
    wal: OnceLock<Arc<Wal>>,
}

impl Engine {
    /// Boots an engine over `base`. `default_solver` answers
    /// `query_plan` requests that name no solver.
    pub fn new(base: RecoveryProblem, default_solver: SolverSpec) -> Self {
        Engine {
            base: Arc::new(base),
            sessions: Mutex::new(HashMap::new()),
            default_solver,
            shutdown: AtomicBool::new(false),
            faults: None,
            artifact: None,
            dispatch_counter: AtomicU64::new(0),
            started: Instant::now(),
            wal: OnceLock::new(),
        }
    }

    /// Attaches the write-ahead log (at most once, at boot). The server
    /// reads it back via [`Engine::wal`] to arm the append-before-reply
    /// admission path and to stamp `wal_seq` onto replies.
    pub fn attach_wal(&self, wal: Arc<Wal>) {
        let _ = self.wal.set(wal);
    }

    /// The attached write-ahead log, if any.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.get()
    }

    /// Arms the deterministic fault-injection plane: dispatched
    /// requests are matched against `plan` by their read-order index.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attaches a shared precomputed routability artifact
    /// (`netrec-cli precompute`): every session probes it before its
    /// warm oracle on exact routability queries. Verdicts are
    /// unchanged — the artifact stores proven answers — only costs and
    /// the reported `answer_source` differ.
    pub fn with_artifact(mut self, artifact: Arc<RoutabilityArtifact>) -> Self {
        self.artifact = Some(artifact);
        self
    }

    /// The attached artifact, if any.
    pub fn artifact(&self) -> Option<&Arc<RoutabilityArtifact>> {
        self.artifact.as_ref()
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Whether a `shutdown` request has been accepted.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The shared base topology.
    pub fn base(&self) -> &Arc<RecoveryProblem> {
        &self.base
    }

    /// Number of open sessions.
    pub fn session_count(&self) -> usize {
        // A worker panic can only poison an individual session lock —
        // the table lock is never held across user code — but recover
        // anyway: the table itself (a name→handle map) cannot be left
        // half-mutated by our lock holders.
        self.sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// The session handle for `name`, created on first use. The table
    /// lock is held only for the lookup — solves run under the
    /// individual session's lock, so a long `query_plan` in one session
    /// never blocks another session's queries.
    fn session(&self, name: &str) -> Arc<Mutex<Session>> {
        let mut table = self.sessions.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(table.entry(name.to_string()).or_insert_with(|| {
            let mut session = Session::new(Arc::clone(&self.base));
            session.set_artifact(self.artifact.clone());
            Arc::new(Mutex::new(session))
        }))
    }

    /// Processes one request line and returns the response line
    /// (without trailing newline). Total: any input produces exactly
    /// one well-formed response line; nothing panics the caller's loop
    /// (except a deliberately injected panic fault, which the server's
    /// worker isolation converts to a typed `internal_error`).
    pub fn process_line(&self, line: &str) -> String {
        match Request::parse(line) {
            Ok(req) => self.dispatch(&req).to_line(),
            Err(e) => Response::from(&e).to_line(),
        }
    }

    /// Routes a parsed request to its session, drawing the request
    /// index from the engine's own counter (transportless callers).
    pub fn dispatch(&self, req: &Request) -> Response {
        // Health consumes no request index: a supervisor polling it
        // must not shift which requests the fault plan hits.
        if matches!(req.op, Op::Health) {
            return self.health_response(&req.id, None);
        }
        let index = self.dispatch_counter.fetch_add(1, Ordering::SeqCst);
        self.dispatch_indexed(req, index, None)
    }

    /// Routes a parsed request to its session. `index` is the
    /// read-order request index the fault plan keys on; `enqueued_at`
    /// anchors deadline accounting (a request's `deadline_ms` budget
    /// includes its queue wait, so an overloaded daemon sheds work via
    /// `deadline_exceeded` instead of solving for clients that gave
    /// up).
    pub fn dispatch_indexed(
        &self,
        req: &Request,
        index: u64,
        enqueued_at: Option<Instant>,
    ) -> Response {
        let faults = match &self.faults {
            Some(plan) => plan.faults_at(index),
            None => Faults::default(),
        };
        if let Some(ms) = faults.latency_ms {
            std::thread::sleep(Duration::from_millis(ms));
        }
        // Health takes no session lock either — it must answer even
        // when every session is poisoned (that is when an operator
        // needs it most).
        if matches!(req.op, Op::Health) {
            return self.health_response(&req.id, None);
        }
        // Shutdown is handled before any session lock: the drain path
        // must stay reachable even when every session is poisoned, and
        // an injected panic must not be able to wedge it.
        if matches!(req.op, Op::Shutdown) {
            self.shutdown.store(true, Ordering::SeqCst);
            return Response::ok(
                &req.id,
                "shutdown",
                vec![("sessions", Json::Number(self.session_count() as f64))],
            );
        }
        let session_name = req.session_name();
        let handle = self.session(session_name);
        let mut session = match handle.lock() {
            Ok(guard) => guard,
            // A previous panic died while mutating this session: its
            // state is suspect, so every later request against it gets
            // a typed rejection instead of suspect answers. Other
            // sessions are unaffected — poisoning is the containment
            // boundary.
            Err(_) => {
                return Response::error(
                    Some(&req.id),
                    "session_poisoned",
                    &format!(
                        "session {session_name:?} was poisoned by an earlier panic; \
                         open a fresh session or restore from a snapshot"
                    ),
                )
            }
        };
        let reply = self.execute(req, &mut session, session_name, &faults, enqueued_at);
        // The injected panic fires *after* the op executed, while the
        // session guard is still held — modeling a panic in response
        // rendering, the worst case for state consistency: side effects
        // landed, the reply is lost, and the lock poisons so the
        // containment above kicks in for every later request.
        if faults.panic {
            panic!(
                "injected panic after {} (request index {index})",
                req.op.name()
            );
        }
        reply
    }

    /// Executes one non-shutdown op under its session lock.
    fn execute(
        &self,
        req: &Request,
        session: &mut Session,
        session_name: &str,
        faults: &Faults,
        enqueued_at: Option<Instant>,
    ) -> Response {
        match &req.op {
            Op::Disrupt { nodes, edges, cost } => self.mutate(req, session, |problem| {
                if !cost.is_finite() || *cost < 0.0 {
                    return Err(RecoveryError::InvalidCost(*cost));
                }
                let mut patches = Vec::with_capacity(nodes.len() + edges.len());
                for &n in nodes {
                    check_node(problem, n)?;
                    patches.push(StatePatch::BreakNode {
                        node: NodeId::new(n),
                        cost: *cost,
                    });
                }
                for &e in edges {
                    check_edge(problem, e)?;
                    patches.push(StatePatch::BreakEdge {
                        edge: EdgeId::new(e),
                        cost: *cost,
                    });
                }
                Ok(patches)
            }),
            Op::Repair { nodes, edges } => self.mutate(req, session, |problem| {
                let mut patches = Vec::with_capacity(nodes.len() + edges.len());
                for &n in nodes {
                    check_node(problem, n)?;
                    patches.push(StatePatch::RepairNode {
                        node: NodeId::new(n),
                    });
                }
                for &e in edges {
                    check_edge(problem, e)?;
                    patches.push(StatePatch::RepairEdge {
                        edge: EdgeId::new(e),
                    });
                }
                Ok(patches)
            }),
            Op::Demand { pairs, replace } => self.mutate(req, session, |problem| {
                let mut patches = Vec::with_capacity(pairs.len() + 1);
                if *replace {
                    patches.push(StatePatch::ClearDemands);
                }
                for &(s, t, amount) in pairs {
                    check_node(problem, s)?;
                    check_node(problem, t)?;
                    if s == t {
                        return Err(RecoveryError::UnknownDemandEndpoint);
                    }
                    if !amount.is_finite() || amount < 0.0 {
                        return Err(RecoveryError::InvalidCost(amount));
                    }
                    patches.push(StatePatch::AddDemand {
                        source: NodeId::new(s),
                        target: NodeId::new(t),
                        amount,
                    });
                }
                Ok(patches)
            }),
            Op::QueryRoutability { degraded_ok } => {
                let reply = if *degraded_ok {
                    match session.query_routability_degraded() {
                        Ok((routable, certificate)) => Response::ok(
                            &req.id,
                            "query_routability",
                            vec![
                                ("generation", generation(session)),
                                ("routable", Json::Bool(routable)),
                                ("degraded", Json::Bool(true)),
                                ("certificate", Json::String(certificate.to_string())),
                            ],
                        ),
                        Err(e) => recovery_error(req, &e),
                    }
                } else {
                    match session.query_routability() {
                        Ok((routable, cost, source)) => Response::ok(
                            &req.id,
                            "query_routability",
                            vec![
                                ("generation", generation(session)),
                                ("routable", Json::Bool(routable)),
                                ("answer_source", Json::String(source.as_str().to_string())),
                                ("oracle", stats_json(&cost)),
                            ],
                        ),
                        Err(e) => recovery_error(req, &e),
                    }
                };
                // A solve-error fault *replaces* the reply after the
                // query ran normally: warm oracle state and the verdict
                // cache evolve exactly as in the fault-free run, so
                // every non-faulted response downstream stays
                // byte-identical.
                if faults.solve_error {
                    return recovery_error(req, &RecoveryError::InjectedFault);
                }
                reply
            }
            Op::QueryPlan {
                solver,
                deadline_ms,
                degraded_ok,
            } => {
                let spec = match solver {
                    None => self.default_solver.clone(),
                    Some(s) => match SolverSpec::parse(s) {
                        Ok(spec) => spec,
                        Err(e) => {
                            return Response::error(
                                Some(&req.id),
                                "bad_request",
                                &format!("invalid solver spec: {e}"),
                            )
                        }
                    },
                };
                let deadline_at = deadline_ms
                    .map(|ms| enqueued_at.unwrap_or_else(Instant::now) + Duration::from_millis(ms));
                let baseline = session.oracle_stats();
                // query_plan side effects are a fresh solver + fresh
                // context, so a solve-error fault can be injected
                // genuinely (the context hook): it fails on the first
                // checkpoint with zero side effects.
                match session.query_plan(&spec, deadline_at, faults.solve_error) {
                    Ok(plan) => {
                        let delta = session.oracle_stats().delta_since(&baseline);
                        Response::ok(
                            &req.id,
                            "query_plan",
                            vec![
                                ("generation", generation(session)),
                                ("solver", Json::String(spec.to_string())),
                                ("plan", plan_json(&plan, session.problem())),
                                // Plans are always fresh solves (the
                                // replay-determinism contract), so the
                                // classified tier is `full_solve` unless
                                // a future warm-plan path changes that.
                                (
                                    "answer_source",
                                    Json::String(
                                        AnswerSource::classify(&delta).as_str().to_string(),
                                    ),
                                ),
                                ("oracle", stats_json(&delta)),
                            ],
                        )
                    }
                    Err(e)
                        if *degraded_ok
                            && (e.is_interruption() || e == RecoveryError::InjectedFault) =>
                    {
                        // Degraded answer: the last known-good plan with
                        // staleness metadata, instead of a bare typed
                        // error the client can do nothing with.
                        match session.last_plan() {
                            Some(stale) => Response::ok(
                                &req.id,
                                "query_plan",
                                vec![
                                    ("generation", generation(session)),
                                    ("degraded", Json::Bool(true)),
                                    ("reason", Json::String(e.kind().to_string())),
                                    ("solver", Json::String(stale.solver.clone())),
                                    ("plan", plan_json(&stale.plan, session.problem())),
                                    (
                                        "stale_events",
                                        Json::Number(
                                            (session.events_applied() - stale.events_applied)
                                                as f64,
                                        ),
                                    ),
                                    (
                                        "stale_generation",
                                        Json::String(format!("{:016x}", stale.fingerprint)),
                                    ),
                                ],
                            ),
                            None => recovery_error(req, &e),
                        }
                    }
                    Err(e) => recovery_error(req, &e),
                }
            }
            Op::Snapshot { fork, path } => {
                let mut body = vec![
                    ("generation", generation(session)),
                    (
                        "nodes",
                        Json::Number(session.problem().graph().node_count() as f64),
                    ),
                    (
                        "edges",
                        Json::Number(session.problem().graph().edge_count() as f64),
                    ),
                    (
                        "broken_nodes",
                        Json::Number(session.problem().broken_node_count() as f64),
                    ),
                    (
                        "broken_edges",
                        Json::Number(session.problem().broken_edge_count() as f64),
                    ),
                    (
                        "demands",
                        Json::Number(session.problem().demand_pairs().len() as f64),
                    ),
                    (
                        "total_demand",
                        Json::Number(session.problem().total_demand()),
                    ),
                    (
                        "events_applied",
                        Json::Number(session.events_applied() as f64),
                    ),
                    (
                        "warm_witnesses",
                        Json::Number(session.warm_witnesses() as f64),
                    ),
                    ("oracle", stats_json(&session.oracle_stats())),
                ];
                if let Some(fork_name) = fork {
                    if fork_name == session_name {
                        return Response::error(
                            Some(&req.id),
                            "bad_request",
                            "cannot fork a session onto itself",
                        );
                    }
                    let mut table = self.sessions.lock().unwrap_or_else(PoisonError::into_inner);
                    if table.contains_key(fork_name) {
                        return Response::error(
                            Some(&req.id),
                            "bad_request",
                            &format!("session {fork_name:?} already exists"),
                        );
                    }
                    table.insert(fork_name.clone(), Arc::new(Mutex::new(session.fork())));
                    body.push(("forked", Json::String(fork_name.clone())));
                }
                if let Some(path) = path {
                    let doc = persist_json(session_name, session);
                    // Persisted as one checksummed record frame, so
                    // `--restore` can verify integrity byte-for-byte
                    // and salvage a torn tail someone appends later.
                    let bytes = fsio::frame_record(doc.to_line().as_bytes());
                    match fsio::atomic_write_torn(Path::new(path), &bytes, false, faults.torn) {
                        Ok(()) => body.push(("persisted", Json::String(path.clone()))),
                        // The write is atomic: on failure the path holds
                        // its previous complete content (or nothing), so
                        // a typed error is the whole story.
                        Err(e) => {
                            return Response::error(
                                Some(&req.id),
                                "io_error",
                                &format!("snapshot persist to {path:?} failed: {e}"),
                            )
                        }
                    }
                }
                Response::ok(&req.id, "snapshot", body)
            }
            // Handled before the session lock in dispatch_indexed;
            // answer again rather than panic if a caller routes one here.
            Op::Health => self.health_response(&req.id, None),
            // Handled before the session lock in dispatch_indexed;
            // latch again rather than panic if a caller routes one here.
            Op::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                Response::ok(
                    &req.id,
                    "shutdown",
                    vec![("sessions", Json::Number(self.session_count() as f64))],
                )
            }
        }
    }

    /// Restores a session persisted by `snapshot` with `path` into the
    /// table under its recorded name. The recorded generation is
    /// re-verified against the rebuilt state — a snapshot against a
    /// different base topology (or a corrupted complete file) is
    /// rejected rather than silently served.
    ///
    /// Snapshot files are checksummed record streams
    /// ([`fsio::frame_record`]; the
    /// last valid record is the snapshot). Checksums are verified
    /// record by record, and a torn *trailing* record — what a crash
    /// mid-append leaves — is salvaged: the file is truncated back to
    /// its valid prefix and the restore proceeds with a typed warning
    /// instead of refusing to boot. Legacy bare-JSON snapshot files are
    /// still accepted.
    ///
    /// # Errors
    ///
    /// A human-readable reason: unreadable file, no intact record,
    /// malformed or wrong-kind JSON, component ids outside the base
    /// topology, fingerprint mismatch, or a name collision with a live
    /// session.
    pub fn restore_from_file(&self, path: &Path) -> Result<RestoreReport, String> {
        let bytes =
            std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let origin = path.display().to_string();
        let (doc, warning) = if fsio::is_record_stream(&bytes) {
            let scan = fsio::salvage_records(path)
                .map_err(|e| format!("{origin}: salvage failed: {e}"))?;
            let warning = scan.torn.as_ref().map(|reason| {
                format!(
                    "{origin}: torn trailing record salvaged ({reason}); \
                     truncated to {} bytes",
                    scan.valid_len
                )
            });
            let payload = scan.records.last().ok_or_else(|| {
                format!(
                    "{origin}: no intact snapshot record survives ({})",
                    scan.torn.as_deref().unwrap_or("empty file")
                )
            })?;
            let text = std::str::from_utf8(payload)
                .map_err(|_| format!("{origin}: snapshot record is not UTF-8"))?;
            let doc =
                Json::parse(text.trim()).map_err(|e| format!("{origin} is not valid JSON: {e}"))?;
            (doc, warning)
        } else {
            // Legacy format: the whole file is one bare JSON line.
            let text =
                String::from_utf8(bytes).map_err(|_| format!("{origin}: snapshot is not UTF-8"))?;
            let doc =
                Json::parse(text.trim()).map_err(|e| format!("{origin} is not valid JSON: {e}"))?;
            (doc, None)
        };
        let session = self.restore_session_doc(&doc, &origin)?;
        Ok(RestoreReport { session, warning })
    }

    /// Builds the `health` reply: uptime, session count, optionally the
    /// submitter's queue depth, and WAL durability counters when a log
    /// is attached. Deliberately timing-dependent — health is an
    /// operator probe, not part of the deterministic replay surface,
    /// which is why it is never WAL-logged and consumes no request
    /// index.
    pub fn health_response(&self, id: &str, queue_depth: Option<usize>) -> Response {
        let mut body = vec![
            (
                "uptime_ms",
                Json::Number(self.started.elapsed().as_millis() as f64),
            ),
            ("sessions", Json::Number(self.session_count() as f64)),
            (
                "shutting_down",
                Json::Bool(self.shutdown.load(Ordering::SeqCst)),
            ),
        ];
        if let Some(depth) = queue_depth {
            body.push(("queue_depth", Json::Number(depth as f64)));
        }
        if let Some(wal) = self.wal.get() {
            let h = wal.health();
            body.push(("wal_sync", Json::String(wal.policy().to_string())));
            body.push(("wal_seq", Json::Number(h.appended_seq as f64)));
            body.push(("wal_durable_seq", Json::Number(h.durable_seq as f64)));
            body.push(("last_fsync_lag_ms", Json::Number(h.fsync_lag_ms as f64)));
        }
        Response::ok(id, "health", body)
    }

    /// Re-executes one logged request line during WAL recovery: same
    /// dispatch path as live traffic, but fault-free (injected faults
    /// already happened in the previous life — replaying them would
    /// diverge recovery from the durable history) and with replies
    /// discarded. Queries are replayed too, not just mutations: they
    /// warm the oracle exactly as the original run did, which is what
    /// makes post-recovery replies byte-identical to an uninterrupted
    /// run. `shutdown` and `health` records are skipped.
    ///
    /// # Errors
    ///
    /// The line no longer parses (a damaged log record whose checksum
    /// still held — the caller stops replay there with a warning).
    pub fn apply_replay(&self, line: &str) -> Result<(), String> {
        let req =
            Request::parse(line).map_err(|e| format!("unreplayable record: {}", e.message))?;
        if matches!(req.op, Op::Shutdown | Op::Health) {
            return Ok(());
        }
        let session_name = req.session_name();
        let handle = self.session(session_name);
        let mut session = handle.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = self.execute(&req, &mut session, session_name, &Faults::default(), None);
        Ok(())
    }

    /// Renders the checkpoint document covering the WAL up to
    /// `wal_seq`: every live session in its persisted form, sorted by
    /// name. The caller must have quiesced execution first.
    ///
    /// # Errors
    ///
    /// A session lock is poisoned: its in-memory state is suspect, but
    /// its WAL history is sound — so the right move is to *skip* the
    /// checkpoint (keeping the full log) rather than bake suspect state
    /// into the new recovery root. A later boot replays the poisoned
    /// session back to its last pre-panic state, clean.
    pub fn checkpoint_doc(&self, wal_seq: u64) -> Result<Json, String> {
        let handles: Vec<(String, Arc<Mutex<Session>>)> = {
            let table = self.sessions.lock().unwrap_or_else(PoisonError::into_inner);
            let mut v: Vec<_> = table
                .iter()
                .map(|(name, handle)| (name.clone(), Arc::clone(handle)))
                .collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        let mut sessions = Vec::with_capacity(handles.len());
        for (name, handle) in &handles {
            match handle.lock() {
                Ok(session) => sessions.push(persist_json(name, &session)),
                Err(_) => {
                    return Err(format!(
                        "session {name:?} is poisoned; checkpoint skipped so its \
                         WAL history survives for replay"
                    ))
                }
            }
        }
        Ok(object(vec![
            ("wal_seq", Json::Number(wal_seq as f64)),
            ("sessions", Json::Array(sessions)),
        ]))
    }

    /// Restores every session of a WAL checkpoint document into the
    /// (empty, boot-time) session table, verifying each rebuilt
    /// generation fingerprint. Returns the number of sessions restored.
    ///
    /// # Errors
    ///
    /// A malformed document, a session that does not rebuild on this
    /// base topology, or a fingerprint mismatch.
    pub fn restore_checkpoint(&self, doc: &Json) -> Result<usize, String> {
        let sessions = doc
            .get("sessions")
            .and_then(Json::as_array)
            .ok_or_else(|| "checkpoint is missing array \"sessions\"".to_string())?;
        for session_doc in sessions {
            self.restore_session_doc(session_doc, "wal checkpoint")?;
        }
        Ok(sessions.len())
    }

    /// Rebuilds one persisted session document, verifies its recorded
    /// generation fingerprint against the rebuilt state, and inserts it
    /// under its recorded name.
    fn restore_session_doc(&self, doc: &Json, origin: &str) -> Result<String, String> {
        if doc.get("kind").and_then(Json::as_str) != Some(SNAPSHOT_KIND) {
            return Err(format!(
                "{origin} is not a session snapshot (missing kind {SNAPSHOT_KIND:?})"
            ));
        }
        if doc.get("v").and_then(Json::as_u64) != Some(crate::protocol::PROTOCOL_VERSION) {
            return Err(format!("{origin}: unsupported snapshot version"));
        }
        let name = doc
            .get("session")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{origin}: missing session name"))?
            .to_string();
        let generation = doc
            .get("generation")
            .and_then(Json::as_str)
            .and_then(|g| u64::from_str_radix(g, 16).ok())
            .ok_or_else(|| format!("{origin}: missing or malformed generation"))?;
        let events_applied = doc
            .get("events_applied")
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("{origin}: missing events_applied"))?;
        let broken_nodes = cost_pairs(doc, "broken_nodes").map_err(|e| format!("{origin}: {e}"))?;
        let broken_edges = cost_pairs(doc, "broken_edges").map_err(|e| format!("{origin}: {e}"))?;
        let demands = demand_triples(doc).map_err(|e| format!("{origin}: {e}"))?;
        let mut session = Session::restore(
            Arc::clone(&self.base),
            &broken_nodes,
            &broken_edges,
            &demands,
            events_applied,
        )
        .map_err(|e| format!("{origin}: {e}"))?;
        session.set_artifact(self.artifact.clone());
        if session.fingerprint() != generation {
            return Err(format!(
                "{origin}: generation mismatch (snapshot {:016x}, rebuilt {:016x}) — \
                 wrong base topology or corrupted snapshot",
                generation,
                session.fingerprint()
            ));
        }
        let mut table = self.sessions.lock().unwrap_or_else(PoisonError::into_inner);
        if table.contains_key(&name) {
            return Err(format!("{origin}: session {name:?} already exists"));
        }
        table.insert(name.clone(), Arc::new(Mutex::new(session)));
        Ok(name)
    }

    /// Shared shape of the three mutating ops: validate and build the
    /// patch list against the current state, apply it atomically,
    /// answer with the new generation.
    fn mutate(
        &self,
        req: &Request,
        session: &mut Session,
        build: impl FnOnce(&RecoveryProblem) -> Result<Vec<StatePatch>, RecoveryError>,
    ) -> Response {
        let patches = match build(session.problem()) {
            Ok(p) => p,
            Err(e) => return recovery_error(req, &e),
        };
        match session.apply_stream(&patches) {
            Ok(applied) => Response::ok(
                &req.id,
                req.op.name(),
                vec![
                    ("generation", generation(session)),
                    ("applied", Json::Number(applied as f64)),
                    (
                        "broken_nodes",
                        Json::Number(session.problem().broken_node_count() as f64),
                    ),
                    (
                        "broken_edges",
                        Json::Number(session.problem().broken_edge_count() as f64),
                    ),
                ],
            ),
            // Unreachable given pre-validation, but keep the session
            // consistent and the reply structured if it ever fires.
            Err((_, e)) => recovery_error(req, &e),
        }
    }
}

fn check_node(problem: &RecoveryProblem, n: usize) -> Result<(), RecoveryError> {
    if n >= problem.graph().node_count() {
        return Err(RecoveryError::UnknownDemandEndpoint);
    }
    Ok(())
}

fn check_edge(problem: &RecoveryProblem, e: usize) -> Result<(), RecoveryError> {
    if e >= problem.graph().edge_count() {
        return Err(RecoveryError::UnknownDemandEndpoint);
    }
    Ok(())
}

/// The `"kind"` discriminator of a persisted session snapshot file.
const SNAPSHOT_KIND: &str = "netrec-session-snapshot";

/// Renders the crash-safe persisted form of a session: everything
/// needed to rebuild its *observable* state on the same base topology
/// (damage with costs, the demand set, lineage depth) plus the
/// generation for restore-time verification. Warm oracle state is
/// deliberately not persisted — it is a cache, and caches are rebuilt,
/// not trusted across crashes.
fn persist_json(session_name: &str, session: &Session) -> Json {
    let problem = session.problem();
    let graph = problem.graph();
    let mut broken_nodes = Vec::new();
    for (i, &broken) in problem.broken_node_mask().iter().enumerate() {
        if broken {
            broken_nodes.push(Json::Array(vec![
                Json::Number(i as f64),
                Json::Number(problem.node_cost(graph.node(i))),
            ]));
        }
    }
    let mut broken_edges = Vec::new();
    for (i, &broken) in problem.broken_edge_mask().iter().enumerate() {
        if broken {
            broken_edges.push(Json::Array(vec![
                Json::Number(i as f64),
                Json::Number(problem.edge_cost(EdgeId::new(i))),
            ]));
        }
    }
    let demands = problem
        .demand_pairs()
        .iter()
        .map(|&(s, t, amount)| {
            Json::Array(vec![
                Json::Number(s.index() as f64),
                Json::Number(t.index() as f64),
                Json::Number(amount),
            ])
        })
        .collect();
    object(vec![
        ("v", Json::Number(crate::protocol::PROTOCOL_VERSION as f64)),
        ("kind", Json::String(SNAPSHOT_KIND.to_string())),
        ("session", Json::String(session_name.to_string())),
        (
            "generation",
            Json::String(format!("{:016x}", session.fingerprint())),
        ),
        (
            "events_applied",
            Json::Number(session.events_applied() as f64),
        ),
        ("broken_nodes", Json::Array(broken_nodes)),
        ("broken_edges", Json::Array(broken_edges)),
        ("demands", Json::Array(demands)),
    ])
}

/// Reads a `[[id, cost], ...]` member of a snapshot file.
fn cost_pairs(doc: &Json, key: &str) -> Result<Vec<(usize, f64)>, String> {
    let items = doc
        .get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("missing array {key:?}"))?;
    items
        .iter()
        .map(|item| {
            item.as_array()
                .filter(|pair| pair.len() == 2)
                .and_then(|pair| Some((pair[0].as_usize()?, pair[1].as_f64()?)))
                .ok_or_else(|| format!("{key:?} entries must be [id, cost]"))
        })
        .collect()
}

/// Reads the `[[source, target, amount], ...]` demand member.
fn demand_triples(doc: &Json) -> Result<Vec<(usize, usize, f64)>, String> {
    let items = doc
        .get("demands")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing array \"demands\"".to_string())?;
    items
        .iter()
        .map(|item| {
            item.as_array()
                .filter(|t| t.len() == 3)
                .and_then(|t| Some((t[0].as_usize()?, t[1].as_usize()?, t[2].as_f64()?)))
                .ok_or_else(|| "\"demands\" entries must be [source, target, amount]".to_string())
        })
        .collect()
}

/// The generation fingerprint as a fixed-width hex string (JSON numbers
/// are f64 and cannot carry 64 bits losslessly).
fn generation(session: &Session) -> Json {
    Json::String(format!("{:016x}", session.fingerprint()))
}

/// A solver-layer failure as a typed error reply. Interruptions
/// (deadline, cancellation) use the same path: the kind string tells
/// the client, and the session stays open.
fn recovery_error(req: &Request, e: &RecoveryError) -> Response {
    Response::error(Some(&req.id), e.kind(), &e.to_string())
}

/// The subset of oracle counters a client can act on.
fn stats_json(stats: &OracleStats) -> Json {
    object(vec![
        (
            "routability_queries",
            Json::Number(stats.routability_queries as f64),
        ),
        (
            "satisfaction_queries",
            Json::Number(stats.satisfaction_queries as f64),
        ),
        ("lp_solves", Json::Number(stats.lp_solves as f64)),
        (
            "warm_start_hits",
            Json::Number(stats.warm_start_hits as f64),
        ),
        ("cache_hits", Json::Number(stats.cache_hits as f64)),
        ("full_solves", Json::Number(stats.full_solves as f64)),
        ("artifact_hits", Json::Number(stats.artifact_hits as f64)),
        (
            "artifact_misses",
            Json::Number(stats.artifact_misses as f64),
        ),
    ])
}

/// A plan in wire form: sorted component ids (the plan is normalized),
/// totals, and the solver's run counters.
fn plan_json(plan: &RecoveryPlan, problem: &RecoveryProblem) -> Json {
    object(vec![
        ("algorithm", Json::String(plan.algorithm.clone())),
        (
            "repaired_nodes",
            Json::Array(
                plan.repaired_nodes
                    .iter()
                    .map(|n| Json::Number(n.index() as f64))
                    .collect(),
            ),
        ),
        (
            "repaired_edges",
            Json::Array(
                plan.repaired_edges
                    .iter()
                    .map(|e| Json::Number(e.index() as f64))
                    .collect(),
            ),
        ),
        ("total_repairs", Json::Number(plan.total_repairs() as f64)),
        ("repair_cost", Json::Number(plan.repair_cost(problem))),
        ("iterations", Json::Number(plan.iterations as f64)),
        ("used_fallback", Json::Bool(plan.used_fallback)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrec_graph::Graph;

    fn engine() -> Engine {
        let mut g = Graph::with_nodes(4);
        g.add_edge(g.node(0), g.node(1), 10.0).unwrap();
        g.add_edge(g.node(1), g.node(2), 10.0).unwrap();
        g.add_edge(g.node(2), g.node(3), 10.0).unwrap();
        g.add_edge(g.node(0), g.node(3), 10.0).unwrap();
        let mut p = RecoveryProblem::new(g);
        p.add_demand(p.graph().node(0), p.graph().node(3), 5.0)
            .unwrap();
        Engine::new(p, SolverSpec::parse("isp").unwrap())
    }

    fn ok(engine: &Engine, line: &str) -> Response {
        let reply = Response::parse(&engine.process_line(line)).unwrap();
        assert!(reply.is_ok(), "{line} -> {}", reply.to_line());
        reply
    }

    fn err(engine: &Engine, line: &str) -> Response {
        let reply = Response::parse(&engine.process_line(line)).unwrap();
        assert!(!reply.is_ok(), "{line} -> {}", reply.to_line());
        reply
    }

    #[test]
    fn disrupt_query_repair_round() {
        let e = engine();
        let r = ok(&e, r#"{"v":1,"id":"q0","op":"query_routability"}"#);
        assert_eq!(r.json().get("routable"), Some(&Json::Bool(true)));
        ok(
            &e,
            r#"{"v":1,"id":"d1","op":"disrupt","edges":[1,3],"cost":2.0}"#,
        );
        let r = ok(&e, r#"{"v":1,"id":"q1","op":"query_routability"}"#);
        assert_eq!(r.json().get("routable"), Some(&Json::Bool(false)));
        ok(&e, r#"{"v":1,"id":"r1","op":"repair","edges":[3]}"#);
        let r = ok(&e, r#"{"v":1,"id":"q2","op":"query_routability"}"#);
        assert_eq!(r.json().get("routable"), Some(&Json::Bool(true)));
    }

    #[test]
    fn mutating_events_are_atomic() {
        let e = engine();
        let before = ok(&e, r#"{"v":1,"id":"s0","op":"snapshot"}"#);
        let gen_before = before.json().get("generation").cloned();
        // Edge 99 is out of range: the whole event must be rejected,
        // including the valid edge 1 before it.
        let r = err(&e, r#"{"v":1,"id":"d1","op":"disrupt","edges":[1,99]}"#);
        assert_eq!(r.error_kind(), Some("unknown_endpoint"));
        let after = ok(&e, r#"{"v":1,"id":"s1","op":"snapshot"}"#);
        assert_eq!(after.json().get("generation").cloned(), gen_before);
        assert_eq!(after.json().get("broken_edges"), Some(&Json::Number(0.0)));
    }

    #[test]
    fn sessions_are_isolated_and_forkable() {
        let e = engine();
        ok(
            &e,
            r#"{"v":1,"id":"d1","session":"a","op":"disrupt","edges":[0],"cost":1.0}"#,
        );
        let r = ok(
            &e,
            r#"{"v":1,"id":"q1","session":"b","op":"query_routability"}"#,
        );
        assert_eq!(r.json().get("routable"), Some(&Json::Bool(true)));
        let r = ok(
            &e,
            r#"{"v":1,"id":"s1","session":"a","op":"snapshot","fork":"a2"}"#,
        );
        assert_eq!(r.json().get("forked").and_then(Json::as_str), Some("a2"));
        // Fork carries the damage; diverging it leaves "a" untouched.
        ok(
            &e,
            r#"{"v":1,"id":"d2","session":"a2","op":"disrupt","edges":[3],"cost":1.0}"#,
        );
        let a = ok(&e, r#"{"v":1,"id":"s2","session":"a","op":"snapshot"}"#);
        assert_eq!(a.json().get("broken_edges"), Some(&Json::Number(1.0)));
        let a2 = ok(&e, r#"{"v":1,"id":"s3","session":"a2","op":"snapshot"}"#);
        assert_eq!(a2.json().get("broken_edges"), Some(&Json::Number(2.0)));
        // Forking onto an existing name is rejected.
        let r = err(
            &e,
            r#"{"v":1,"id":"s4","session":"a","op":"snapshot","fork":"a2"}"#,
        );
        assert_eq!(r.error_kind(), Some("bad_request"));
    }

    #[test]
    fn query_plan_solves_and_reports() {
        let e = engine();
        ok(
            &e,
            r#"{"v":1,"id":"d1","op":"disrupt","edges":[1,3],"cost":1.0}"#,
        );
        let r = ok(&e, r#"{"v":1,"id":"p1","op":"query_plan","solver":"isp"}"#);
        let plan = r.json().get("plan").unwrap();
        assert_eq!(plan.get("algorithm").and_then(Json::as_str), Some("ISP"));
        assert!(plan.get("total_repairs").and_then(Json::as_usize).unwrap() >= 1);
        let r = err(
            &e,
            r#"{"v":1,"id":"p2","op":"query_plan","solver":"warp-drive"}"#,
        );
        assert_eq!(r.error_kind(), Some("bad_request"));
    }

    #[test]
    fn deadline_exceeded_is_typed_and_survivable() {
        let e = engine();
        ok(
            &e,
            r#"{"v":1,"id":"d1","op":"disrupt","edges":[1,3],"cost":1.0}"#,
        );
        let r = err(&e, r#"{"v":1,"id":"p1","op":"query_plan","deadline_ms":0}"#);
        assert_eq!(r.error_kind(), Some("deadline_exceeded"));
        // The session survives the interruption.
        let r = ok(&e, r#"{"v":1,"id":"p2","op":"query_plan"}"#);
        assert!(r.is_ok(), "{}", r.to_line());
    }

    #[test]
    fn demand_replace_swaps_the_demand_set() {
        let e = engine();
        ok(
            &e,
            r#"{"v":1,"id":"m1","op":"demand","pairs":[[1,2,3.0]],"replace":true}"#,
        );
        let s = ok(&e, r#"{"v":1,"id":"s1","op":"snapshot"}"#);
        assert_eq!(s.json().get("demands"), Some(&Json::Number(1.0)));
        assert_eq!(s.json().get("total_demand"), Some(&Json::Number(3.0)));
        // Self-demand is rejected atomically.
        let r = err(
            &e,
            r#"{"v":1,"id":"m2","op":"demand","pairs":[[0,3,1.0],[2,2,1.0]]}"#,
        );
        assert_eq!(r.error_kind(), Some("unknown_endpoint"));
        let s = ok(&e, r#"{"v":1,"id":"s2","op":"snapshot"}"#);
        assert_eq!(s.json().get("demands"), Some(&Json::Number(1.0)));
    }

    #[test]
    fn shutdown_latches() {
        let e = engine();
        assert!(!e.is_shutting_down());
        ok(&e, r#"{"v":1,"id":"z","op":"shutdown"}"#);
        assert!(e.is_shutting_down());
    }

    #[test]
    fn malformed_lines_never_panic_and_always_answer() {
        let e = engine();
        for line in [
            "",
            "{",
            "[]",
            r#"{"v":9,"id":"x","op":"shutdown"}"#,
            "\u{0}",
        ] {
            let reply = Response::parse(&e.process_line(line)).unwrap();
            assert!(!reply.is_ok());
        }
        assert!(!e.is_shutting_down(), "bad version must not shut down");
    }

    fn faulty(spec: &str) -> Engine {
        let e = engine();
        Engine::with_faults(e, FaultPlan::parse(spec).unwrap())
    }

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!(
            "netrec-engine-test-{}-{tag}-{n}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn injected_solve_error_is_typed_and_preserves_warm_state() {
        // solve_error@1 hits q1. The faulted run and a fault-free run
        // must agree byte-for-byte on every *other* response — the
        // fault replaces q1's reply but never perturbs session state.
        let script = [
            r#"{"v":1,"id":"d0","op":"disrupt","edges":[1],"cost":1.0}"#,
            r#"{"v":1,"id":"q1","op":"query_routability"}"#,
            r#"{"v":1,"id":"q2","op":"query_routability"}"#,
            r#"{"v":1,"id":"p3","op":"query_plan","solver":"isp"}"#,
        ];
        let clean: Vec<String> = {
            let e = engine();
            script.iter().map(|l| e.process_line(l)).collect()
        };
        let e = faulty("solve_error@1");
        let faulted: Vec<String> = script.iter().map(|l| e.process_line(l)).collect();
        let r = Response::parse(&faulted[1]).unwrap();
        assert_eq!(r.error_kind(), Some("injected_fault"), "{}", faulted[1]);
        for i in [0usize, 2, 3] {
            assert_eq!(clean[i], faulted[i], "non-faulted response {i} diverged");
        }
    }

    #[test]
    fn injected_panic_poisons_only_its_session() {
        let e = faulty("panic@1");
        ok(&e, r#"{"v":1,"id":"q0","op":"query_routability"}"#);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.process_line(r#"{"v":1,"id":"d1","op":"disrupt","edges":[1],"cost":1.0}"#)
        }));
        assert!(panicked.is_err(), "the panic fault must actually unwind");
        // The default session is now poisoned; the mutation landed
        // before the panic fired but its state is suspect by policy.
        let r = err(&e, r#"{"v":1,"id":"q1","op":"query_routability"}"#);
        assert_eq!(r.error_kind(), Some("session_poisoned"));
        // Other sessions and the drain path are untouched.
        ok(
            &e,
            r#"{"v":1,"id":"q2","session":"side","op":"query_routability"}"#,
        );
        ok(&e, r#"{"v":1,"id":"z","op":"shutdown"}"#);
        assert!(e.is_shutting_down());
    }

    #[test]
    fn degraded_routability_reports_a_certificate_without_oracle_mutation() {
        let e = engine();
        ok(
            &e,
            r#"{"v":1,"id":"d0","op":"disrupt","edges":[1,3],"cost":1.0}"#,
        );
        // Two exact queries: the second is a verdict-cache hit whose
        // oracle delta is the steady state repeat queries report.
        ok(&e, r#"{"v":1,"id":"q0","op":"query_routability"}"#);
        let exact_before = ok(&e, r#"{"v":1,"id":"q0","op":"query_routability"}"#);
        let r = ok(
            &e,
            r#"{"v":1,"id":"q1","op":"query_routability","degraded_ok":true}"#,
        );
        assert_eq!(r.json().get("degraded"), Some(&Json::Bool(true)));
        let cert = r
            .json()
            .get("error")
            .map(|_| "")
            .or_else(|| r.json().get("certificate").and_then(Json::as_str))
            .unwrap();
        assert!(
            ["exact", "certified", "conservative"].contains(&cert),
            "{}",
            r.to_line()
        );
        assert!(
            r.json().get("oracle").is_none(),
            "degraded answers carry no oracle counters: {}",
            r.to_line()
        );
        // The degraded path never touches the exact cache or the warm
        // oracle: the exact answer is unchanged, byte for byte.
        let exact_after = ok(&e, r#"{"v":1,"id":"q0","op":"query_routability"}"#);
        assert_eq!(exact_before.to_line(), exact_after.to_line());
    }

    #[test]
    fn degraded_query_plan_serves_the_last_known_good_plan() {
        let e = engine();
        ok(
            &e,
            r#"{"v":1,"id":"d0","op":"disrupt","edges":[1],"cost":1.0}"#,
        );
        // No prior plan: a degraded-tolerant request still gets the
        // typed error — there is nothing to degrade to.
        let r = err(
            &e,
            r#"{"v":1,"id":"p0","op":"query_plan","deadline_ms":0,"degraded_ok":true}"#,
        );
        assert_eq!(r.error_kind(), Some("deadline_exceeded"));
        // Solve once for real, mutate, then ask again with a dead
        // deadline: the stale plan comes back with staleness metadata.
        ok(&e, r#"{"v":1,"id":"p1","op":"query_plan","solver":"isp"}"#);
        ok(
            &e,
            r#"{"v":1,"id":"d1","op":"disrupt","edges":[3],"cost":1.0}"#,
        );
        let r = ok(
            &e,
            r#"{"v":1,"id":"p2","op":"query_plan","deadline_ms":0,"degraded_ok":true}"#,
        );
        assert_eq!(r.json().get("degraded"), Some(&Json::Bool(true)));
        assert_eq!(
            r.json().get("reason").and_then(Json::as_str),
            Some("deadline_exceeded")
        );
        assert_eq!(r.json().get("stale_events"), Some(&Json::Number(1.0)));
        assert!(r.json().get("plan").is_some(), "{}", r.to_line());
        // Without degraded_ok the same request stays a typed error.
        let r = err(&e, r#"{"v":1,"id":"p3","op":"query_plan","deadline_ms":0}"#);
        assert_eq!(r.error_kind(), Some("deadline_exceeded"));
    }

    #[test]
    fn snapshot_persists_and_restores_across_engines() {
        let path = tmp_path("roundtrip");
        let e = engine();
        ok(
            &e,
            r#"{"v":1,"id":"d0","session":"ops","op":"disrupt","edges":[1,3],"cost":2.5}"#,
        );
        ok(
            &e,
            r#"{"v":1,"id":"m1","session":"ops","op":"demand","pairs":[[1,2,4.0]]}"#,
        );
        let line = format!(
            r#"{{"v":1,"id":"s1","session":"ops","op":"snapshot","path":{:?}}}"#,
            path.to_str().unwrap()
        );
        let snap = ok(&e, &line);
        let generation = snap.json().get("generation").cloned().unwrap();
        assert_eq!(
            snap.json().get("persisted").and_then(Json::as_str),
            path.to_str()
        );

        let e2 = engine();
        let report = e2.restore_from_file(&path).unwrap();
        assert_eq!(report.session, "ops");
        assert!(report.warning.is_none(), "{:?}", report.warning);
        let snap2 = ok(&e2, r#"{"v":1,"id":"s2","session":"ops","op":"snapshot"}"#);
        assert_eq!(
            snap2.json().get("generation").cloned(),
            Some(generation),
            "restored session reproduces the persisted generation"
        );
        assert_eq!(snap2.json().get("broken_edges"), Some(&Json::Number(2.0)));
        assert_eq!(snap2.json().get("events_applied"), Some(&Json::Number(2.0)));
        // A second restore collides with the live session.
        let collision = e2.restore_from_file(&path).unwrap_err();
        assert!(collision.contains("already exists"), "{collision}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn restore_rejects_a_mismatched_base_topology() {
        let path = tmp_path("mismatch");
        let e = engine();
        ok(
            &e,
            r#"{"v":1,"id":"d0","session":"ops","op":"disrupt","edges":[1],"cost":1.0}"#,
        );
        let line = format!(
            r#"{{"v":1,"id":"s1","session":"ops","op":"snapshot","path":{:?}}}"#,
            path.to_str().unwrap()
        );
        ok(&e, &line);

        // A different base: same shape but a different edge capacity,
        // which the generation fingerprint covers — so the rebuilt
        // fingerprint cannot match the recorded one.
        let mut g = Graph::with_nodes(4);
        g.add_edge(g.node(0), g.node(1), 10.0).unwrap();
        g.add_edge(g.node(1), g.node(2), 7.0).unwrap();
        g.add_edge(g.node(2), g.node(3), 10.0).unwrap();
        g.add_edge(g.node(0), g.node(3), 10.0).unwrap();
        let mut p = RecoveryProblem::new(g);
        p.add_demand(p.graph().node(0), p.graph().node(3), 5.0)
            .unwrap();
        let other = Engine::new(p, SolverSpec::parse("isp").unwrap());
        let e = other.restore_from_file(&path).unwrap_err();
        assert!(e.contains("generation mismatch"), "{e}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_snapshot_write_is_a_typed_io_error_and_the_target_survives() {
        let path = tmp_path("torn");
        let e = faulty("torn@1");
        ok(
            &e,
            r#"{"v":1,"id":"d0","op":"disrupt","edges":[1],"cost":1.0}"#,
        );
        let line = format!(
            r#"{{"v":1,"id":"s1","op":"snapshot","path":{:?}}}"#,
            path.to_str().unwrap()
        );
        let r = err(&e, &line);
        assert_eq!(r.error_kind(), Some("io_error"), "{}", r.to_line());
        assert!(
            !path.exists(),
            "a torn write must never leave a partial snapshot at the target"
        );
        // The session itself is fine; a retry (no fault at this index)
        // persists a complete, restorable snapshot.
        let retry = format!(
            r#"{{"v":1,"id":"s2","op":"snapshot","path":{:?}}}"#,
            path.to_str().unwrap()
        );
        ok(&e, &retry);
        let e2 = engine();
        assert_eq!(e2.restore_from_file(&path).unwrap().session, "default");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn restore_salvages_a_torn_trailing_record() {
        let path = tmp_path("salvage");
        let e = engine();
        ok(
            &e,
            r#"{"v":1,"id":"d0","op":"disrupt","edges":[1],"cost":1.0}"#,
        );
        let line = format!(
            r#"{{"v":1,"id":"s1","op":"snapshot","path":{:?}}}"#,
            path.to_str().unwrap()
        );
        ok(&e, &line);
        // A crash mid-append leaves a partial frame after the good
        // record; restore must verify record-by-record, truncate the
        // tear away, and succeed with a typed warning.
        let good_len = std::fs::metadata(&path).unwrap().len();
        let extra = fsio::frame_record(br#"{"junk":1}"#);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&extra[..extra.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();
        let e2 = engine();
        let report = e2.restore_from_file(&path).unwrap();
        assert_eq!(report.session, "default");
        let warning = report.warning.expect("salvage must be reported");
        assert!(warning.contains("salvaged"), "{warning}");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            good_len,
            "salvage truncates the file back to its valid prefix"
        );
        // After salvage the file is clean: a fresh restore warns nothing.
        let e3 = engine();
        assert!(e3.restore_from_file(&path).unwrap().warning.is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn restore_rejects_torn_debris_with_no_intact_record() {
        // atomic_write_torn's failure mode: the *target* is never
        // damaged, but the .tmp debris holds a half-written frame. A
        // restore pointed at such debris has nothing to salvage and
        // must say so rather than fabricate a session.
        let path = tmp_path("debris");
        let doc_bytes = fsio::frame_record(br#"{"v":1,"kind":"netrec-session-snapshot"}"#);
        let err = fsio::atomic_write_torn(&path, &doc_bytes, false, true).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
        let debris = {
            let mut name = path.file_name().unwrap().to_os_string();
            name.push(".tmp");
            path.with_file_name(name)
        };
        assert!(debris.exists(), "torn write leaves .tmp debris");
        let e = engine();
        let reason = e.restore_from_file(&debris).unwrap_err();
        assert!(reason.contains("no intact snapshot record"), "{reason}");
        let _ = std::fs::remove_file(&debris);
    }

    #[test]
    fn health_answers_without_touching_sessions_or_indices() {
        let e = faulty("crash@0; panic@0");
        // Index 0 would crash/panic if health consumed an index — it
        // must not (and must not create the default session either).
        let r = ok(&e, r#"{"v":1,"id":"h1","op":"health"}"#);
        assert_eq!(r.json().get("sessions"), Some(&Json::Number(0.0)));
        assert!(r.json().get("uptime_ms").and_then(Json::as_f64).is_some());
        assert_eq!(r.json().get("shutting_down"), Some(&Json::Bool(false)));
        assert!(
            r.json().get("wal_seq").is_none(),
            "no WAL attached, no WAL counters: {}",
            r.to_line()
        );
    }

    #[test]
    fn replay_rebuilds_the_live_state_byte_for_byte() {
        let script = [
            r#"{"v":1,"id":"d0","op":"disrupt","edges":[1,3],"cost":2.0}"#,
            r#"{"v":1,"id":"q0","op":"query_routability"}"#,
            r#"{"v":1,"id":"m0","op":"demand","pairs":[[1,2,4.0]]}"#,
            r#"{"v":1,"id":"f0","op":"snapshot","fork":"side"}"#,
            r#"{"v":1,"id":"r0","session":"side","op":"repair","edges":[3]}"#,
            r#"{"v":1,"id":"p0","op":"query_plan","solver":"isp"}"#,
        ];
        let live = engine();
        for line in &script {
            live.process_line(line);
        }
        let recovered = engine();
        for line in &script {
            recovered.apply_replay(line).unwrap();
        }
        // Same sessions, same generations, and — because queries were
        // replayed too — the same warm-path replies going forward.
        assert_eq!(recovered.session_count(), live.session_count());
        for probe in [
            r#"{"v":1,"id":"s1","op":"snapshot"}"#,
            r#"{"v":1,"id":"s2","session":"side","op":"snapshot"}"#,
            r#"{"v":1,"id":"q9","op":"query_routability"}"#,
        ] {
            assert_eq!(live.process_line(probe), recovered.process_line(probe));
        }
    }

    #[test]
    fn checkpoint_doc_round_trips_through_restore_checkpoint() {
        let e = engine();
        ok(
            &e,
            r#"{"v":1,"id":"d0","op":"disrupt","edges":[1],"cost":1.5}"#,
        );
        ok(
            &e,
            r#"{"v":1,"id":"d1","session":"ops","op":"disrupt","nodes":[2],"cost":3.0}"#,
        );
        let doc = e.checkpoint_doc(7).unwrap();
        assert_eq!(doc.get("wal_seq").and_then(Json::as_u64), Some(7));
        let e2 = engine();
        assert_eq!(e2.restore_checkpoint(&doc).unwrap(), 2);
        for probe in [
            r#"{"v":1,"id":"s1","op":"snapshot"}"#,
            r#"{"v":1,"id":"s2","session":"ops","op":"snapshot"}"#,
        ] {
            assert_eq!(e.process_line(probe), e2.process_line(probe));
        }
    }

    #[test]
    fn checkpoint_doc_refuses_poisoned_sessions() {
        let e = faulty("panic@0");
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.process_line(r#"{"v":1,"id":"d0","op":"disrupt","edges":[1],"cost":1.0}"#)
        }));
        let reason = e.checkpoint_doc(1).unwrap_err();
        assert!(reason.contains("poisoned"), "{reason}");
    }

    /// Sweeps the test engine's base (intact plus every single-edge
    /// cut) into an artifact.
    fn sweep_base(base: &RecoveryProblem) -> Arc<RoutabilityArtifact> {
        use netrec_core::oracle::artifact::ArtifactBuilder;
        use netrec_core::oracle::{ExactLp, RoutabilityOracle};
        let demands = base.demands();
        let exact = ExactLp::new();
        let mut builder = ArtifactBuilder::new(base.graph(), &demands);
        let edge_count = base.graph().edge_count();
        let mut masks: Vec<Vec<bool>> = vec![vec![true; edge_count]];
        for e in 0..edge_count {
            let mut m = vec![true; edge_count];
            m[e] = false;
            masks.push(m);
        }
        for mask in &masks {
            let view = base.graph().view().with_edge_mask(mask);
            let routable = exact.is_routable(&view, &demands).unwrap();
            builder.record(&view, &demands, routable);
        }
        Arc::new(builder.finish("square", &["single-cut".to_string()]))
    }

    #[test]
    fn artifact_changes_provenance_but_never_answers() {
        let plain = engine();
        let artifact = sweep_base(plain.base());
        let front = engine().with_artifact(Arc::clone(&artifact));
        assert!(front.artifact().is_some());
        let script = [
            r#"{"v":1,"id":"q0","op":"query_routability"}"#.to_string(),
            r#"{"v":1,"id":"d1","op":"disrupt","edges":[3],"cost":2.0}"#.to_string(),
            r#"{"v":1,"id":"q1","op":"query_routability"}"#.to_string(),
            r#"{"v":1,"id":"q2","op":"query_routability"}"#.to_string(),
        ];
        for line in &script {
            let a = ok(&plain, line);
            let b = ok(&front, line);
            // Same verdicts and generations; only provenance (the
            // answer_source tier and the oracle cost counters) may
            // differ between the cold and artifact-fronted engines.
            assert_eq!(a.json().get("routable"), b.json().get("routable"));
            assert_eq!(a.json().get("generation"), b.json().get("generation"));
        }
        // The swept single-cut state was answered by the artifact on
        // one engine and by a live solve on the other.
        let a = ok(&plain, r#"{"v":1,"id":"q3","op":"query_routability"}"#);
        let b = ok(&front, r#"{"v":1,"id":"q3","op":"query_routability"}"#);
        assert_eq!(
            a.json().get("answer_source"),
            Some(&Json::String("full_solve".to_string())),
            "{}",
            a.to_line()
        );
        assert_eq!(
            b.json().get("answer_source"),
            Some(&Json::String("artifact".to_string())),
            "{}",
            b.to_line()
        );
        // Cumulative snapshot stats expose the hit rate.
        let snap = ok(&front, r#"{"v":1,"id":"s0","op":"snapshot"}"#);
        let oracle = snap.json().get("oracle").cloned().unwrap();
        assert!(
            oracle.get("artifact_hits").and_then(Json::as_f64).unwrap() >= 1.0,
            "{}",
            snap.to_line()
        );
        // Forked sessions inherit the artifact.
        ok(
            &front,
            r#"{"v":1,"id":"f0","op":"snapshot","fork":"child"}"#,
        );
        ok(
            &front,
            r#"{"v":1,"id":"r0","session":"child","op":"repair","edges":[3]}"#,
        );
        let r = ok(
            &front,
            r#"{"v":1,"id":"q4","session":"child","op":"query_routability"}"#,
        );
        assert_eq!(
            r.json().get("answer_source"),
            Some(&Json::String("artifact".to_string())),
            "{}",
            r.to_line()
        );
    }
}
