//! Resident recovery-as-a-service: the `netrec-cli serve` daemon.
//!
//! One-shot CLI invocations pay topology parsing, graph construction,
//! and cold LP solves on every question. For operators steering a live
//! recovery — "is the network routable *now*? what if we also lose
//! substation 17? which repairs next?" — that boot cost dominates. This
//! crate keeps everything warm instead: load the topology **once**,
//! then answer a stream of events and queries at millisecond latency
//! from per-session incremental-oracle state.
//!
//! The daemon speaks a versioned JSONL protocol (one JSON object per
//! line, `"v":1`) over stdin/stdout and, optionally, a TCP listener —
//! see [`protocol`] for the grammar and `DESIGN.md` §13 for the full
//! specification. Events mutate named sessions (`disrupt`, `repair`,
//! `demand`, `snapshot`/fork); queries read them (`query_routability`,
//! `query_plan`); `shutdown` drains and exits.
//!
//! Three properties anchor the design:
//!
//! * **Replay determinism** — a `query_plan` answer is byte-identical
//!   to solving the same prefix state from scratch with the same
//!   [`SolverSpec`](netrec_core::solver::SolverSpec): plan requests use
//!   a fresh solver and context every time, and only the *oracle* is
//!   warm (its verdicts are exact regardless of history). Replaying a
//!   recorded stream therefore reproduces responses byte-for-byte.
//! * **Isolation** — sessions share one immutable base topology behind
//!   an `Arc` and own private overlays; a fork copies the overlay plus
//!   the oracle's transferable witnesses, so what-if exploration never
//!   perturbs the main line.
//! * **Fairness** — a bounded worker pool with per-session FIFO and
//!   round-robin across sessions, plus per-connection output
//!   sequencing: stdout order always equals request order (CI diffs it
//!   against goldens), yet a slow `query_plan` cannot starve another
//!   session's routability queries. Per-request deadlines surface as
//!   typed `deadline_exceeded` responses; the session survives.
//! * **Failure containment** — a panic while a request executes becomes
//!   a typed `internal_error` reply and poisons only that session
//!   (later requests against it answer `session_poisoned`); queue
//!   bounds shed excess load with `overloaded` + `retry_after_ms`;
//!   degraded answers (`"degraded":true`) fall back to the certified
//!   oracle threshold path or the last known-good plan; `snapshot` can
//!   persist sessions atomically and `--restore` rebuilds them after a
//!   crash. A seeded fault-injection plane
//!   ([`netrec_core::FaultPlan`], `NETREC_FAULTS`) makes all of it
//!   deterministically testable — see `DESIGN.md` §14.
//! * **Durability** — with `--wal DIR`, every admitted request is
//!   appended to a segmented, checksummed write-ahead log ([`wal`]) and
//!   made durable per `--wal-sync` *before* its reply is released, so
//!   no acknowledged event outlives the process only in memory. Boot
//!   replays checkpoint + log suffix deterministically (salvaging a
//!   torn tail), replies carry `wal_seq`, and the `health` op reports
//!   the durability counters — see `DESIGN.md` §16.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod protocol;
pub mod server;
pub mod session;
pub mod wal;

pub use engine::{Engine, RestoreReport};
pub use protocol::{Op, ProtocolError, Request, Response, DEFAULT_SESSION, PROTOCOL_VERSION};
pub use server::{run_stream, run_stream_with, OpLatency, ServeReport, Server, ServerConfig};
pub use session::{Session, StalePlan};
pub use wal::{SyncPolicy, Wal, WalBoot, WalHealth, WalRecord};
