//! Property tests for the write-ahead log: framing round-trips across
//! reopen (at any segment size), a tail torn at *every* byte offset
//! salvages to exactly the durable prefix, and replaying a log into a
//! fresh engine reproduces the live engine's observable state
//! byte-for-byte (generation fingerprints included).

use netrec_core::solver::SolverSpec;
use netrec_core::RecoveryProblem;
use netrec_serve::{Engine, SyncPolicy, Wal};
use netrec_topology::bell::bell_canada;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Decodes generator output (printable-ASCII code points) into the
/// newline-free lines the log stores.
fn decode_lines(raw: &[Vec<u32>]) -> Vec<String> {
    raw.iter()
        .map(|codes| {
            codes
                .iter()
                .map(|&c| char::from_u32(c).expect("printable ASCII"))
                .collect()
        })
        .collect()
}

/// A fresh scratch directory per call (proptest cases reuse the test
/// name, so a static counter keeps them disjoint).
fn scratch(name: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "netrec_wal_props_{name}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine() -> Engine {
    let topo = bell_canada();
    let mut p = RecoveryProblem::new(topo.graph().clone());
    let n = p.graph().node_count();
    p.add_demand(p.graph().node(0), p.graph().node(n - 1), 3.0)
        .unwrap();
    Engine::new(p, SolverSpec::isp())
}

/// Builds a small request stream from flat generator choices, mixing
/// mutations, queries, forks, and three sessions.
fn synthetic_stream(ops: &[(usize, usize, usize)]) -> Vec<String> {
    let sessions = ["default", "aux", "probe"];
    ops.iter()
        .enumerate()
        .map(|(i, &(kind, sess, component))| {
            let session = sessions[sess % sessions.len()];
            let edge = component % 40;
            match kind % 6 {
                0 => format!(
                    r#"{{"v":1,"id":"g{i}","session":"{session}","op":"disrupt","edges":[{edge}],"cost":1.5}}"#
                ),
                1 => format!(
                    r#"{{"v":1,"id":"g{i}","session":"{session}","op":"repair","edges":[{edge}]}}"#
                ),
                2 => format!(
                    r#"{{"v":1,"id":"g{i}","session":"{session}","op":"query_routability"}}"#
                ),
                3 => format!(
                    r#"{{"v":1,"id":"g{i}","session":"{session}","op":"query_plan","solver":"isp"}}"#
                ),
                4 => format!(
                    r#"{{"v":1,"id":"g{i}","session":"{session}","op":"snapshot","fork":"fork{}"}}"#,
                    component % 3
                ),
                _ => format!(r#"{{"v":1,"id":"g{i}","session":"{session}","op":"snapshot"}}"#),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any sequence of newline-free lines survives append + reopen at
    /// any segment size: same order, same bytes, 1-based contiguous
    /// sequence numbers, no warnings.
    #[test]
    fn records_round_trip_across_reopen(
        raw in proptest::collection::vec(
            proptest::collection::vec(32u32..127, 0..120), 1..40),
        segment_records in 1u64..9,
    ) {
        let lines = decode_lines(&raw);
        let dir = scratch("roundtrip");
        {
            let (wal, boot) = Wal::open(&dir, SyncPolicy::Off, segment_records).unwrap();
            prop_assert!(boot.records.is_empty() && boot.warnings.is_empty());
            for (i, line) in lines.iter().enumerate() {
                prop_assert_eq!(wal.append_line(line).unwrap(), i as u64 + 1);
            }
            wal.sync().unwrap();
        }
        let (_, boot) = Wal::open(&dir, SyncPolicy::Off, segment_records).unwrap();
        prop_assert!(boot.warnings.is_empty(), "{:?}", boot.warnings);
        prop_assert_eq!(boot.records.len(), lines.len());
        for (i, (rec, line)) in boot.records.iter().zip(&lines).enumerate() {
            prop_assert_eq!(rec.seq, i as u64 + 1);
            prop_assert_eq!(&rec.line, line);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Cut the log's final segment at EVERY byte offset: boot never
    /// fails, recovers exactly the records whose frames fit entirely
    /// below the cut, and warns precisely when the cut lands inside a
    /// frame.
    #[test]
    fn torn_tail_salvages_to_the_durable_prefix_at_every_offset(
        raw in proptest::collection::vec(
            proptest::collection::vec(32u32..127, 0..40), 1..8),
    ) {
        let lines = decode_lines(&raw);
        let dir = scratch("torn");
        // Frame boundaries: file length after each append. A fresh log
        // picks its own segment name, so discover it after the fact.
        let mut boundaries = vec![0u64];
        let seg = {
            let (wal, _) = Wal::open(&dir, SyncPolicy::Off, Wal::SEGMENT_RECORDS).unwrap();
            wal.append_line(&lines[0]).unwrap();
            wal.sync().unwrap();
            let seg = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().path())
                .find(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("wal-"))
                })
                .expect("the first append created a segment");
            boundaries.push(std::fs::metadata(&seg).unwrap().len());
            for line in &lines[1..] {
                wal.append_line(line).unwrap();
                wal.sync().unwrap();
                boundaries.push(std::fs::metadata(&seg).unwrap().len());
            }
            seg
        };
        let seg_name = seg.file_name().expect("segment file name").to_owned();
        let whole = std::fs::read(&seg).unwrap();
        let cut_dir = scratch("torn_cut");
        for offset in 0..=whole.len() {
            let _ = std::fs::remove_dir_all(&cut_dir);
            std::fs::create_dir_all(&cut_dir).unwrap();
            std::fs::write(cut_dir.join(&seg_name), &whole[..offset]).unwrap();
            let (_, boot) = Wal::open(&cut_dir, SyncPolicy::Off, Wal::SEGMENT_RECORDS).unwrap();
            let expect = boundaries.iter().filter(|&&b| b <= offset as u64).count() - 1;
            prop_assert_eq!(
                boot.records.len(), expect,
                "offset {} of {}", offset, whole.len()
            );
            for (i, rec) in boot.records.iter().enumerate() {
                prop_assert_eq!(rec.seq, i as u64 + 1);
                prop_assert_eq!(&rec.line, &lines[i]);
            }
            let on_boundary = boundaries.contains(&(offset as u64));
            prop_assert_eq!(
                !boot.warnings.is_empty(),
                !on_boundary,
                "offset {}: a cut inside a frame must warn, a clean cut must not \
                 (warnings: {:?})",
                offset, boot.warnings
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&cut_dir);
    }

    /// Replaying a recorded stream into a fresh engine reproduces the
    /// live engine byte-for-byte: snapshots (generation fingerprint,
    /// damage, event counts) and warm queries answer identically on
    /// every session the stream touched.
    #[test]
    fn replayed_state_is_byte_identical_to_live_state(
        ops in proptest::collection::vec((0usize..6, 0usize..3, 0usize..1000), 1..20),
    ) {
        let lines = synthetic_stream(&ops);
        let live = engine();
        for line in &lines {
            let _ = live.process_line(line);
        }
        let replayed = engine();
        for line in &lines {
            replayed.apply_replay(line).unwrap();
        }
        for session in ["default", "aux", "probe", "fork0", "fork1", "fork2"] {
            for probe in [
                format!(r#"{{"v":1,"id":"ps","session":"{session}","op":"snapshot"}}"#),
                format!(r#"{{"v":1,"id":"pq","session":"{session}","op":"query_routability"}}"#),
            ] {
                prop_assert_eq!(
                    live.process_line(&probe),
                    replayed.process_line(&probe),
                    "session {} diverged", session
                );
            }
        }
    }
}
