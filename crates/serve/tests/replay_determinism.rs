//! The daemon's core correctness criterion: replaying a recorded event
//! stream through a warm session produces plans **byte-identical** to
//! solving each prefix state from scratch with the same [`SolverSpec`].
//!
//! The test keeps a shadow copy of the event stream. Every `query_plan`
//! response from the daemon is compared against a cold solve: a fresh
//! problem rebuilt from the base topology, the event prefix re-applied,
//! a fresh solver and context, and the plan rendered through the same
//! JSON shape the daemon uses.

use netrec_core::solver::{SolveContext, SolverSpec};
use netrec_core::{RecoveryPlan, RecoveryProblem};
use netrec_graph::{EdgeId, NodeId};
use netrec_json::{object, Json};
use netrec_serve::{run_stream, Engine, Op, Request, Response};
use netrec_topology::bell::bell_canada;
use std::sync::Arc;

/// One recorded mutation (the test's shadow of the daemon's state).
#[derive(Clone)]
enum Ev {
    DisruptEdges(Vec<usize>, f64),
    DisruptNodes(Vec<usize>, f64),
    RepairEdges(Vec<usize>),
    Demand(Vec<(usize, usize, f64)>, bool),
}

impl Ev {
    /// The wire request carrying this mutation.
    fn request(&self, id: &str) -> Request {
        let op = match self {
            Ev::DisruptEdges(edges, cost) => Op::Disrupt {
                nodes: vec![],
                edges: edges.clone(),
                cost: *cost,
            },
            Ev::DisruptNodes(nodes, cost) => Op::Disrupt {
                nodes: nodes.clone(),
                edges: vec![],
                cost: *cost,
            },
            Ev::RepairEdges(edges) => Op::Repair {
                nodes: vec![],
                edges: edges.clone(),
            },
            Ev::Demand(pairs, replace) => Op::Demand {
                pairs: pairs.clone(),
                replace: *replace,
            },
        };
        Request {
            id: id.to_string(),
            session: None,
            op,
        }
    }

    /// Applies the mutation directly to a shadow problem.
    fn apply(&self, p: &mut RecoveryProblem) {
        match self {
            Ev::DisruptEdges(edges, cost) => {
                for &e in edges {
                    p.break_edge(EdgeId::new(e), *cost).unwrap();
                }
            }
            Ev::DisruptNodes(nodes, cost) => {
                for &n in nodes {
                    p.break_node(NodeId::new(n), *cost).unwrap();
                }
            }
            Ev::RepairEdges(edges) => {
                for &e in edges {
                    p.repair_edge(EdgeId::new(e)).unwrap();
                }
            }
            Ev::Demand(pairs, replace) => {
                if *replace {
                    p.clear_demands();
                }
                for &(s, t, amount) in pairs {
                    p.add_demand(NodeId::new(s), NodeId::new(t), amount)
                        .unwrap();
                }
            }
        }
    }
}

/// The base problem both the daemon and every cold solve start from.
fn base_problem() -> RecoveryProblem {
    let topo = bell_canada();
    let mut p = RecoveryProblem::new(topo.graph().clone());
    let n = p.graph().node_count();
    p.add_demand(p.graph().node(0), p.graph().node(n - 1), 3.0)
        .unwrap();
    p.add_demand(p.graph().node(2), p.graph().node(n / 2), 2.0)
        .unwrap();
    p
}

/// The recorded mutation stream. Indices are taken modulo the topology
/// size so the script survives topology edits.
fn shadow_events() -> Vec<Ev> {
    let p = base_problem();
    let edges = p.graph().edge_count();
    let nodes = p.graph().node_count();
    let e = |i: usize| i % edges;
    let n = |i: usize| i % nodes;
    vec![
        Ev::DisruptEdges(vec![e(3), e(11), e(27), e(40)], 2.0),
        Ev::DisruptNodes(vec![n(7), n(19)], 3.5),
        Ev::RepairEdges(vec![e(11)]),
        Ev::Demand(vec![(n(1), n(nodes - 2), 4.0)], true),
    ]
}

/// Plan checkpoints: after how many mutations, with which solver.
fn checkpoints() -> Vec<(usize, &'static str, String)> {
    vec![
        (0, "isp", "p0".into()),    // undamaged baseline: the empty plan
        (1, "isp", "p1".into()),    // after the edge cut
        (2, "srt", "p2".into()),    // after node damage, different solver
        (4, "isp", "p3".into()),    // after repair + demand replacement
        (4, "grd-nc", "p4".into()), // same state, another solver family
    ]
}

/// The full wire script: mutations interleaved with plan queries (and a
/// routability probe to keep the oracle warm — the point of the test is
/// that warmth never leaks into plans).
fn script_lines() -> Vec<String> {
    let events = shadow_events();
    let checkpoints = checkpoints();
    let mut lines = Vec::new();
    let plan = |solver: &str, id: &str| {
        Request {
            id: id.to_string(),
            session: None,
            op: Op::QueryPlan {
                solver: Some(solver.to_string()),
                deadline_ms: None,
                degraded_ok: false,
            },
        }
        .to_line()
    };
    for (prefix, solver, id) in checkpoints.iter().filter(|(p, _, _)| *p == 0) {
        let _ = prefix;
        lines.push(plan(solver, id));
    }
    for (i, ev) in events.iter().enumerate() {
        lines.push(ev.request(&format!("e{i}")).to_line());
        if i == 0 {
            lines.push(
                Request {
                    id: "q-warm".into(),
                    session: None,
                    op: Op::QueryRoutability { degraded_ok: false },
                }
                .to_line(),
            );
        }
        for (prefix, solver, id) in checkpoints.iter().filter(|(p, _, _)| *p == i + 1) {
            let _ = prefix;
            lines.push(plan(solver, id));
        }
    }
    lines
}

/// Cold solve: fresh solver, fresh context, normalized plan — exactly
/// what the daemon promises each `query_plan` is equivalent to.
fn solve_from_scratch(problem: &RecoveryProblem, spec: &SolverSpec) -> RecoveryPlan {
    let solver = spec.build();
    let mut ctx = SolveContext::new();
    let mut plan = solver.solve(problem, &mut ctx).unwrap();
    plan.normalize();
    plan
}

/// Renders a plan through the same shape the daemon's `plan` body uses,
/// so the comparison is a byte comparison, not a field sampling.
fn render_plan(plan: &RecoveryPlan, problem: &RecoveryProblem) -> String {
    object(vec![
        ("algorithm", Json::String(plan.algorithm.clone())),
        (
            "repaired_nodes",
            Json::Array(
                plan.repaired_nodes
                    .iter()
                    .map(|n| Json::Number(n.index() as f64))
                    .collect(),
            ),
        ),
        (
            "repaired_edges",
            Json::Array(
                plan.repaired_edges
                    .iter()
                    .map(|e| Json::Number(e.index() as f64))
                    .collect(),
            ),
        ),
        ("total_repairs", Json::Number(plan.total_repairs() as f64)),
        ("repair_cost", Json::Number(plan.repair_cost(problem))),
        ("iterations", Json::Number(plan.iterations as f64)),
        ("used_fallback", Json::Bool(plan.used_fallback)),
    ])
    .to_line()
}

#[test]
fn warm_daemon_plans_are_byte_identical_to_cold_prefix_solves() {
    let engine = Engine::new(base_problem(), SolverSpec::isp());
    let mut replies: Vec<(String, Response)> = Vec::new();
    for line in script_lines() {
        let reply = Response::parse(&engine.process_line(&line)).unwrap();
        assert!(reply.is_ok(), "{line} -> {}", reply.to_line());
        replies.push((reply.id().unwrap_or_default().to_string(), reply));
    }

    let events = shadow_events();
    for (prefix_len, solver, id) in checkpoints() {
        let (_, reply) = replies
            .iter()
            .find(|(rid, _)| *rid == id)
            .unwrap_or_else(|| panic!("no reply for {id}"));
        let warm = reply
            .json()
            .get("plan")
            .unwrap_or_else(|| panic!("{id} has no plan body"))
            .to_line();

        let mut problem = base_problem();
        for ev in &events[..prefix_len] {
            ev.apply(&mut problem);
        }
        let cold = solve_from_scratch(&problem, &SolverSpec::parse(solver).unwrap());
        assert_eq!(
            warm,
            render_plan(&cold, &problem),
            "plan {id}: warm daemon answer != cold prefix solve"
        );
    }
}

#[test]
fn replay_is_deterministic_across_worker_counts() {
    let mut input = script_lines().join("\n");
    input.push('\n');
    input.push_str("{\"v\":1,\"id\":\"z\",\"op\":\"shutdown\"}\n");

    let run = |workers: usize| {
        let engine = Arc::new(Engine::new(base_problem(), SolverSpec::isp()));
        run_stream(engine, workers, &input).0
    };
    let serial = run(1);
    assert_eq!(serial, run(4), "worker count changed the reply stream");
    assert_eq!(serial, run(2), "worker count changed the reply stream");
}

#[test]
fn warm_sessions_accumulate_oracle_reuse() {
    // The daemon's reason to exist: repeated routability queries against
    // a slowly-mutating session keep warm witnesses instead of starting
    // over, and the snapshot op exposes the counters that prove it.
    let engine = Engine::new(base_problem(), SolverSpec::isp());
    let edges = base_problem().graph().edge_count();
    for i in 0..6 {
        let e = (i * 5) % edges;
        let d = format!("{{\"v\":1,\"id\":\"d{i}\",\"op\":\"disrupt\",\"edges\":[{e}]}}");
        assert!(Response::parse(&engine.process_line(&d)).unwrap().is_ok());
        let q = format!("{{\"v\":1,\"id\":\"q{i}\",\"op\":\"query_routability\"}}");
        assert!(Response::parse(&engine.process_line(&q)).unwrap().is_ok());
    }
    let snap = Response::parse(&engine.process_line("{\"v\":1,\"id\":\"s\",\"op\":\"snapshot\"}"))
        .unwrap();
    let oracle = snap
        .json()
        .get("oracle")
        .expect("snapshot carries oracle stats");
    let queries = oracle
        .get("routability_queries")
        .and_then(Json::as_f64)
        .unwrap();
    assert!(queries >= 6.0, "oracle counters accumulate: {queries}");
}
