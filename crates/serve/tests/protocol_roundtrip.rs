//! Property tests of the wire protocol: for every representable
//! request, `parse(to_line(r)) == r` — the canonical rendering and the
//! parser are exact inverses — and parsing never panics on arbitrary
//! byte soup.

use netrec_core::AnswerSource;
use netrec_json::Json;
use netrec_serve::{Op, Request, Response};
use proptest::prelude::*;

/// Builds a request from flat generator choices (the compat proptest
/// has no string or enum strategies, so structure comes from indices).
#[allow(clippy::too_many_arguments)]
fn build_request(
    kind: usize,
    id_num: u64,
    sess: usize,
    nodes: Vec<usize>,
    edges: Vec<usize>,
    cost: f64,
    pairs: Vec<(usize, usize, f64)>,
    knobs: (usize, usize, u64, usize),
) -> Request {
    let (replace, solver_pick, deadline, fork_pick) = knobs;
    let op = match kind % 7 {
        0 => Op::Disrupt { nodes, edges, cost },
        1 => Op::Repair { nodes, edges },
        2 => Op::Demand {
            pairs,
            replace: replace % 2 == 1,
        },
        3 => Op::QueryRoutability {
            degraded_ok: replace % 2 == 1,
        },
        4 => Op::QueryPlan {
            solver: match solver_pick % 3 {
                0 => None,
                1 => Some("isp".to_string()),
                _ => Some(format!("grd-nc:{}", solver_pick)),
            },
            deadline_ms: if deadline == 0 { None } else { Some(deadline) },
            degraded_ok: replace % 2 == 0,
        },
        5 => Op::Snapshot {
            fork: if fork_pick % 2 == 0 {
                None
            } else {
                Some(format!("fork-{fork_pick}"))
            },
            path: if (fork_pick / 2) % 2 == 0 {
                None
            } else {
                Some(format!("snapshots/s{fork_pick}.jsonl"))
            },
        },
        _ => Op::Shutdown,
    };
    Request {
        id: format!("id-{id_num}"),
        session: match sess % 3 {
            0 => None,
            1 => Some("default".to_string()),
            _ => Some(format!("s{sess}")),
        },
        op,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The canonical line of any request parses back to an equal value.
    #[test]
    fn parse_inverts_to_line(
        kind in 0usize..7,
        id_num in any::<u64>(),
        sess in 0usize..3,
        nodes in proptest::collection::vec(0usize..5000, 0..5),
        edges in proptest::collection::vec(0usize..5000, 0..5),
        cost in 0.001f64..1e6,
        pairs in proptest::collection::vec((0usize..500, 0usize..500, 0.001f64..1e4), 0..4),
        knobs in (0usize..4, 0usize..3, 0u64..5000, 0usize..4),
    ) {
        let req = build_request(kind, id_num, sess, nodes, edges, cost, pairs, knobs);
        let line = req.to_line();
        let parsed = Request::parse(&line)
            .unwrap_or_else(|e| panic!("canonical line rejected: {line} ({})", e.message));
        prop_assert_eq!(parsed, req, "round trip diverged for {}", line);
    }

    /// Double round trip is a fixed point: render → parse → render is
    /// byte-identical (the rendering is canonical).
    #[test]
    fn rendering_is_canonical(
        kind in 0usize..7,
        id_num in any::<u64>(),
        sess in 0usize..3,
        nodes in proptest::collection::vec(0usize..5000, 0..5),
        edges in proptest::collection::vec(0usize..5000, 0..5),
        cost in 0.001f64..1e6,
        pairs in proptest::collection::vec((0usize..500, 0usize..500, 0.001f64..1e4), 0..4),
        knobs in (0usize..4, 0usize..3, 0u64..5000, 0usize..4),
    ) {
        let req = build_request(kind, id_num, sess, nodes, edges, cost, pairs, knobs);
        let line = req.to_line();
        let again = Request::parse(&line).unwrap().to_line();
        prop_assert_eq!(line, again);
    }

    /// Replies carrying the tiered-answer contract round-trip exactly:
    /// the `answer_source` wire name survives render → parse → render,
    /// and every wire name maps back to the [`AnswerSource`] it names.
    #[test]
    fn answer_source_survives_response_round_trip(
        pick in 0usize..4,
        routable in any::<bool>(),
        id_num in any::<u64>(),
    ) {
        let source = [
            AnswerSource::Artifact,
            AnswerSource::Witness,
            AnswerSource::Threshold,
            AnswerSource::FullSolve,
        ][pick];
        prop_assert_eq!(AnswerSource::parse(source.as_str()), Some(source));
        let reply = Response::ok(
            &format!("id-{id_num}"),
            "query_routability",
            vec![
                ("generation", Json::String("deadbeefdeadbeef".to_string())),
                ("routable", Json::Bool(routable)),
                ("answer_source", Json::String(source.as_str().to_string())),
            ],
        );
        let line = reply.to_line();
        let again = Response::parse(&line)
            .unwrap_or_else(|e| panic!("canonical reply rejected: {line} ({e})"));
        prop_assert_eq!(
            again.json().get("answer_source"),
            Some(&Json::String(source.as_str().to_string()))
        );
        prop_assert_eq!(again.to_line(), line, "rendering is canonical");
    }

    /// Arbitrary byte soup never panics the parser; failures are typed.
    #[test]
    fn parser_is_total_on_garbage(
        bytes in proptest::collection::vec(0u32..=255, 0..120),
    ) {
        let bytes: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let line = String::from_utf8_lossy(&bytes).into_owned();
        match Request::parse(&line) {
            Ok(req) => {
                // Anything accepted must re-render and re-parse cleanly.
                let again = Request::parse(&req.to_line()).unwrap();
                prop_assert_eq!(again, req);
            }
            Err(e) => {
                prop_assert!(!e.kind.is_empty());
                let rendered = Response::from(&e).to_line();
                prop_assert!(rendered.contains("\"ok\":false"), "{}", rendered);
            }
        }
    }
}
