//! Hostile-input suite for the full daemon path: every line a client
//! can send — truncated JSON, wrong types, unknown ops, out-of-range
//! ids, protocol version drift — gets exactly one typed error response
//! in order, and the daemon keeps serving afterwards.

use netrec_core::solver::SolverSpec;
use netrec_core::RecoveryProblem;
use netrec_graph::Graph;
use netrec_json::Json;
use netrec_serve::{run_stream, Engine, Response};
use std::sync::Arc;

fn engine() -> Arc<Engine> {
    let mut g = Graph::with_nodes(4);
    g.add_edge(g.node(0), g.node(1), 10.0).unwrap();
    g.add_edge(g.node(1), g.node(2), 10.0).unwrap();
    g.add_edge(g.node(2), g.node(3), 10.0).unwrap();
    g.add_edge(g.node(0), g.node(3), 10.0).unwrap();
    let mut p = RecoveryProblem::new(g);
    p.add_demand(p.graph().node(0), p.graph().node(3), 5.0)
        .unwrap();
    Arc::new(Engine::new(p, SolverSpec::isp()))
}

/// `(hostile line, expected error kind)` — the wire-contract table.
/// Kind precedence: a line must be JSON, then an object, then carry a
/// string `id` (extracted first so errors can echo it), then an
/// integer `v`, then a known `op` with well-typed arguments.
const HOSTILE: &[(&str, &str)] = &[
    ("{", "parse"),
    ("}", "parse"),
    ("nonsense", "parse"),
    ("[1,2,3]", "parse"),
    ("\"just a string\"", "parse"),
    ("null", "parse"),
    ("{\"op\":\"query_routability\"}", "parse"),
    (
        "{\"v\":2,\"id\":\"x\",\"op\":\"query_routability\"}",
        "version",
    ),
    (
        "{\"v\":\"1\",\"id\":\"x\",\"op\":\"query_routability\"}",
        "version",
    ),
    ("{\"v\":1,\"op\":\"query_routability\"}", "parse"),
    ("{\"v\":1,\"id\":7,\"op\":\"query_routability\"}", "parse"),
    ("{\"v\":1,\"id\":\"x\"}", "parse"),
    ("{\"v\":1,\"id\":\"x\",\"op\":\"frobnicate\"}", "unknown_op"),
    (
        "{\"v\":1,\"id\":\"x\",\"op\":\"disrupt\",\"edges\":[\"one\"]}",
        "bad_request",
    ),
    (
        "{\"v\":1,\"id\":\"x\",\"op\":\"disrupt\",\"edges\":[1],\"cost\":\"two\"}",
        "bad_request",
    ),
    (
        "{\"v\":1,\"id\":\"x\",\"op\":\"disrupt\",\"edges\":[99]}",
        "unknown_endpoint",
    ),
    (
        "{\"v\":1,\"id\":\"x\",\"op\":\"disrupt\",\"nodes\":[99]}",
        "unknown_endpoint",
    ),
    (
        "{\"v\":1,\"id\":\"x\",\"op\":\"disrupt\",\"edges\":[1],\"cost\":-3.0}",
        "invalid_cost",
    ),
    (
        "{\"v\":1,\"id\":\"x\",\"op\":\"demand\",\"pairs\":[[0,99,1.0]]}",
        "unknown_endpoint",
    ),
    (
        "{\"v\":1,\"id\":\"x\",\"op\":\"demand\",\"pairs\":[[0,3]]}",
        "bad_request",
    ),
    (
        "{\"v\":1,\"id\":\"x\",\"op\":\"query_plan\",\"solver\":\"no-such-algo\"}",
        "bad_request",
    ),
    (
        "{\"v\":1,\"id\":\"x\",\"op\":\"snapshot\",\"fork\":\"default\"}",
        "bad_request",
    ),
    (
        "{\"v\":1,\"id\":\"x\",\"session\":9,\"op\":\"query_routability\"}",
        "bad_request",
    ),
];

#[test]
fn every_hostile_line_gets_one_typed_error_in_order() {
    let mut input = String::new();
    // Blank and whitespace-only lines are skipped by the stream reader
    // (no reply) — interleave some to prove they don't shift ordering.
    input.push('\n');
    for (line, _) in HOSTILE {
        input.push_str(line);
        input.push('\n');
    }
    input.push_str("   \n");
    // Prove the daemon survived the whole gauntlet.
    input.push_str("{\"v\":1,\"id\":\"alive\",\"op\":\"query_routability\"}\n");
    input.push_str("{\"v\":1,\"id\":\"z\",\"op\":\"shutdown\"}\n");

    let (out, report) = run_stream(engine(), 3, &input);
    let replies: Vec<&str> = out.lines().collect();
    assert_eq!(
        replies.len(),
        HOSTILE.len() + 2,
        "exactly one reply per line:\n{out}"
    );
    for (i, (line, kind)) in HOSTILE.iter().enumerate() {
        let reply = Response::parse(replies[i])
            .unwrap_or_else(|e| panic!("unparseable reply to {line:?}: {e}"));
        assert!(!reply.is_ok(), "{line:?} should fail, got {}", replies[i]);
        assert_eq!(
            reply.error_kind(),
            Some(*kind),
            "{line:?} -> {}",
            replies[i]
        );
    }
    let alive = Response::parse(replies[HOSTILE.len()]).unwrap();
    assert!(alive.is_ok(), "daemon died during the gauntlet: {out}");
    assert_eq!(
        alive.json().get("routable"),
        Some(&Json::Bool(true)),
        "state corrupted by hostile input"
    );
    assert_eq!(report.requests, HOSTILE.len() + 2);
}

#[test]
fn hostile_lines_leave_session_state_untouched() {
    let engine = engine();
    let generation = |e: &Engine| {
        let r =
            Response::parse(&e.process_line("{\"v\":1,\"id\":\"s\",\"op\":\"snapshot\"}")).unwrap();
        r.json().get("generation").cloned().unwrap()
    };
    let before = generation(&engine);
    for (line, _) in HOSTILE {
        let reply = Response::parse(&engine.process_line(line)).unwrap();
        assert!(!reply.is_ok(), "{line:?}");
    }
    assert_eq!(
        generation(&engine),
        before,
        "a rejected request mutated the session"
    );
}

#[test]
fn oversized_and_deeply_nested_lines_are_rejected_not_fatal() {
    let engine = engine();
    let deep = format!("{}1{}", "[".repeat(4000), "]".repeat(4000));
    let reply = Response::parse(&engine.process_line(&deep)).unwrap();
    assert!(!reply.is_ok());

    let huge_id = format!(
        "{{\"v\":1,\"id\":\"{}\",\"op\":\"query_routability\"}}",
        "x".repeat(100_000)
    );
    let reply = Response::parse(&engine.process_line(&huge_id)).unwrap();
    // Oversized but well-formed: either served or rejected, never fatal.
    let _ = reply.is_ok();

    let alive = Response::parse(
        &engine.process_line("{\"v\":1,\"id\":\"ok\",\"op\":\"query_routability\"}"),
    )
    .unwrap();
    assert!(alive.is_ok());
}
