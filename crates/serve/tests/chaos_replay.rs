//! The containment theorem, executed: replaying the committed
//! 222-request example stream under a seeded fault schedule, the daemon
//! (a) survives to answer every request, (b) answers every *non-faulted*
//! request byte-identically to the fault-free golden run, and (c) turns
//! every faulted request into a well-typed error — at any worker count,
//! with identical bytes.
//!
//! The expected outcome of each request is computed by an independent
//! model of the containment rules (below), not by the daemon itself, so
//! the test would catch the daemon both under- and over-containing.

use netrec_core::solver::SolverSpec;
use netrec_core::{FaultPlan, RecoveryProblem};
use netrec_serve::{run_stream, Engine, Op, Request, Response};
use netrec_topology::bell::bell_canada;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// The committed smoke stream (222 lines, three sessions, deliberate
/// protocol errors, final shutdown).
const EVENTS: &str = include_str!("../../../examples/serve/events.jsonl");

fn base_problem() -> RecoveryProblem {
    let topo = bell_canada();
    let mut p = RecoveryProblem::new(topo.graph().clone());
    let n = p.graph().node_count();
    p.add_demand(p.graph().node(0), p.graph().node(n - 1), 3.0)
        .unwrap();
    p.add_demand(p.graph().node(2), p.graph().node(n / 2), 2.0)
        .unwrap();
    p
}

fn engine(faults: Option<&str>) -> Arc<Engine> {
    let e = Engine::new(base_problem(), SolverSpec::isp());
    Arc::new(match faults {
        Some(spec) => e.with_faults(FaultPlan::parse(spec).unwrap()),
        None => e,
    })
}

/// What the containment rules say one reply must look like.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Verdict {
    /// Untouched by the schedule: byte-identical to the golden reply.
    Clean,
    /// A typed error of this kind.
    TypedError(&'static str),
}

/// The independent model of the containment rules: walks the input,
/// assigns read-order indices to parseable lines exactly as the server
/// does, tracks which sessions each injected panic poisons, and emits
/// one verdict per line.
fn model_verdicts(input: &str, plan: &FaultPlan) -> Vec<Verdict> {
    let mut verdicts = Vec::new();
    let mut index = 0u64;
    let mut poisoned: HashSet<String> = HashSet::new();
    for line in input.lines().filter(|l| !l.trim().is_empty()) {
        let req = match Request::parse(line) {
            Ok(req) => req,
            Err(_) => {
                // Rejected before dispatch: no index, no faults.
                verdicts.push(Verdict::Clean);
                continue;
            }
        };
        let faults = plan.faults_at(index);
        index += 1;
        let session = req.session_name().to_string();
        let verdict = if matches!(req.op, Op::Shutdown) {
            // Shutdown runs before the session lock and is exempt from
            // the panic fault: the drain path must always answer.
            Verdict::Clean
        } else if poisoned.contains(&session) {
            Verdict::TypedError("session_poisoned")
        } else if faults.panic {
            poisoned.insert(session);
            Verdict::TypedError("internal_error")
        } else if faults.solve_error
            && matches!(req.op, Op::QueryRoutability { .. } | Op::QueryPlan { .. })
        {
            Verdict::TypedError("injected_fault")
        } else {
            // Latency-only faults, and torn faults on requests that
            // write nothing, do not change the reply.
            Verdict::Clean
        };
        verdicts.push(verdict);
    }
    verdicts
}

#[test]
fn committed_stream_survives_a_dense_fault_schedule_at_any_worker_count() {
    // Fault-free golden: the reference every clean reply is held to.
    let (golden, _) = run_stream(engine(None), 1, EVENTS);
    let golden: Vec<&str> = golden.lines().collect();
    assert_eq!(golden.len(), EVENTS.lines().count(), "golden answers all");

    // The schedule: 1ms latency on every request (the fault-count
    // workhorse), a panic mid-stream, solve errors on three queries,
    // and a torn-write fault (a no-op here — the committed stream never
    // persists — proving unexercised faults change nothing).
    let spec = "seed=7;latency=1:1;panic@100;solve_error@5,40,90;torn@60";
    let plan = FaultPlan::parse(spec).unwrap();
    let dispatched = EVENTS.lines().filter(|l| Request::parse(l).is_ok()).count() as u64;
    assert!(
        plan.count_fired(dispatched) >= 200,
        "the schedule must inject at least 200 faults across the \
         committed stream (fired {} of {dispatched})",
        plan.count_fired(dispatched)
    );

    let verdicts = model_verdicts(EVENTS, &plan);
    let mut outputs = Vec::new();
    for workers in [1usize, 4] {
        let (out, report) = run_stream(engine(Some(spec)), workers, EVENTS);
        let replies: Vec<&str> = out.lines().collect();
        assert_eq!(
            replies.len(),
            golden.len(),
            "workers={workers}: the daemon survived and answered every request"
        );
        assert!(report.requests >= replies.len());
        let mut clean = 0usize;
        let mut faulted = 0usize;
        for (i, (reply, verdict)) in replies.iter().zip(&verdicts).enumerate() {
            match verdict {
                Verdict::Clean => {
                    assert_eq!(
                        reply, &golden[i],
                        "workers={workers}: non-faulted reply {i} must be \
                         byte-identical to the fault-free golden"
                    );
                    clean += 1;
                }
                Verdict::TypedError(kind) => {
                    let r = Response::parse(reply).unwrap();
                    assert_eq!(
                        r.error_kind(),
                        Some(*kind),
                        "workers={workers}: reply {i}: {reply}"
                    );
                    faulted += 1;
                }
            }
        }
        assert!(clean > 0 && faulted > 0, "both regimes must be exercised");
        outputs.push(out);
    }
    assert_eq!(
        outputs[0], outputs[1],
        "the faulted replay is byte-deterministic across worker counts"
    );
}

#[test]
fn panic_heavy_schedule_poisons_sessions_but_never_the_daemon() {
    // Panics on several mid-stream requests across sessions: each
    // poisons exactly its own session from that point on, per the
    // model; everything else still matches the golden run.
    let spec = "seed=11;panic@20,45,130";
    let plan = FaultPlan::parse(spec).unwrap();
    let (golden, _) = run_stream(engine(None), 1, EVENTS);
    let golden: Vec<&str> = golden.lines().collect();
    let verdicts = model_verdicts(EVENTS, &plan);
    assert!(
        verdicts
            .iter()
            .filter(|v| **v == Verdict::TypedError("session_poisoned"))
            .count()
            > 0,
        "the schedule must leave poisoned sessions with later traffic"
    );
    let (out, _) = run_stream(engine(Some(spec)), 2, EVENTS);
    for (i, (reply, verdict)) in out.lines().zip(&verdicts).enumerate() {
        match verdict {
            Verdict::Clean => assert_eq!(reply, golden[i], "reply {i}"),
            Verdict::TypedError(kind) => {
                assert_eq!(
                    Response::parse(reply).unwrap().error_kind(),
                    Some(*kind),
                    "reply {i}: {reply}"
                );
            }
        }
    }
    // The final shutdown drained: the last golden line answered.
    assert_eq!(out.lines().last(), golden.last().copied());
}

/// Builds a small synthetic request stream from flat generator choices.
fn synthetic_stream(ops: &[(usize, usize, usize)]) -> String {
    let sessions = ["default", "aux", "probe"];
    let mut lines = String::new();
    for (i, &(kind, sess, component)) in ops.iter().enumerate() {
        let session = sessions[sess % sessions.len()];
        let edge = component % 40;
        let line = match kind % 5 {
            0 => format!(
                r#"{{"v":1,"id":"g{i}","session":"{session}","op":"disrupt","edges":[{edge}],"cost":1.5}}"#
            ),
            1 => format!(
                r#"{{"v":1,"id":"g{i}","session":"{session}","op":"repair","edges":[{edge}]}}"#
            ),
            2 => format!(r#"{{"v":1,"id":"g{i}","session":"{session}","op":"query_routability"}}"#),
            3 => format!(
                r#"{{"v":1,"id":"g{i}","session":"{session}","op":"query_plan","solver":"isp"}}"#
            ),
            _ => format!(r#"{{"v":1,"id":"g{i}","session":"{session}","op":"snapshot"}}"#),
        };
        lines.push_str(&line);
        lines.push('\n');
    }
    lines.push_str(r#"{"v":1,"id":"z","op":"shutdown"}"#);
    lines.push('\n');
    lines
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The containment theorem over arbitrary small streams and seeded
    /// fault schedules: every request is answered, non-faulted replies
    /// match the fault-free run byte-for-byte, faulted replies are
    /// typed errors, and the whole transcript is identical at one and
    /// two workers.
    #[test]
    fn containment_holds_on_synthetic_streams(
        ops in proptest::collection::vec((0usize..5, 0usize..3, 0usize..1000), 1..14),
        seed in 0u64..1000,
        panic_idx in 0u64..16,
        rate_pick in 0usize..3,
    ) {
        let input = synthetic_stream(&ops);
        let spec = format!(
            "seed={seed};panic@{panic_idx};solve_error={}",
            [0.0, 0.4, 1.0][rate_pick]
        );
        let plan = FaultPlan::parse(&spec).unwrap();
        let (golden, _) = run_stream(engine(None), 1, &input);
        let golden: Vec<&str> = golden.lines().collect();
        let verdicts = model_verdicts(&input, &plan);

        let mut transcripts = Vec::new();
        for workers in [1usize, 2] {
            let (out, _) = run_stream(engine(Some(&spec)), workers, &input);
            let replies: Vec<&str> = out.lines().collect();
            prop_assert_eq!(replies.len(), golden.len(), "workers={}", workers);
            for (i, (reply, verdict)) in replies.iter().zip(&verdicts).enumerate() {
                match verdict {
                    Verdict::Clean => prop_assert_eq!(
                        reply, &golden[i],
                        "workers={} reply {}", workers, i
                    ),
                    Verdict::TypedError(kind) => {
                        let r = Response::parse(reply).unwrap();
                        prop_assert_eq!(
                            r.error_kind(), Some(*kind),
                            "workers={} reply {}: {}", workers, i, reply
                        );
                    }
                }
            }
            transcripts.push(out);
        }
        prop_assert_eq!(&transcripts[0], &transcripts[1]);
    }
}
