use netrec_graph::{Graph, GraphError, NodeId};
use serde::{Deserialize, Serialize};

/// A network topology: a capacitated supply graph plus geographic node
/// coordinates (used by the geographically correlated disruption models)
/// and a human-readable name.
///
/// # Example
///
/// ```
/// use netrec_topology::Topology;
/// use netrec_graph::Graph;
///
/// let mut g = Graph::with_nodes(2);
/// g.add_edge(g.node(0), g.node(1), 10.0)?;
/// let topo = Topology::new("tiny", g, vec![(0.0, 0.0), (1.0, 0.0)])?;
/// assert_eq!(topo.name(), "tiny");
/// assert_eq!(topo.barycenter(), (0.5, 0.0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    name: String,
    graph: Graph,
    coords: Vec<(f64, f64)>,
}

impl Topology {
    /// Creates a topology from a graph and per-node coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if the coordinate count does
    /// not match the node count.
    pub fn new(
        name: impl Into<String>,
        graph: Graph,
        coords: Vec<(f64, f64)>,
    ) -> Result<Self, GraphError> {
        if coords.len() != graph.node_count() {
            return Err(GraphError::NodeOutOfRange {
                node: NodeId::new(coords.len()),
                nodes: graph.node_count(),
            });
        }
        Ok(Topology {
            name: name.into(),
            graph,
            coords,
        })
    }

    /// The topology's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The supply graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access to the supply graph (e.g. to retune capacities).
    ///
    /// Adding nodes through this handle without extending coordinates
    /// breaks the coordinate/node correspondence; prefer
    /// [`Topology::add_node_at`].
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// Adds a node with a coordinate, keeping the correspondence intact.
    pub fn add_node_at(&mut self, x: f64, y: f64) -> NodeId {
        let id = self.graph.add_node();
        self.coords.push((x, y));
        id
    }

    /// Coordinate of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn coord(&self, n: NodeId) -> (f64, f64) {
        self.coords[n.index()]
    }

    /// All coordinates, indexed by node id.
    pub fn coords(&self) -> &[(f64, f64)] {
        &self.coords
    }

    /// Euclidean distance between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        let (ax, ay) = self.coord(a);
        let (bx, by) = self.coord(b);
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Midpoint of an edge (used for edge-level geographic failures).
    pub fn edge_midpoint(&self, e: netrec_graph::EdgeId) -> (f64, f64) {
        let (u, v) = self.graph.endpoints(e);
        let (ux, uy) = self.coord(u);
        let (vx, vy) = self.coord(v);
        ((ux + vx) / 2.0, (uy + vy) / 2.0)
    }

    /// The barycenter of all node coordinates — the paper's default
    /// epicenter for geographic disruptions. `(0, 0)` for empty graphs.
    pub fn barycenter(&self) -> (f64, f64) {
        if self.coords.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.coords.len() as f64;
        let (sx, sy) = self
            .coords
            .iter()
            .fold((0.0, 0.0), |(ax, ay), &(x, y)| (ax + x, ay + y));
        (sx / n, sy / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Topology {
        let mut g = Graph::with_nodes(3);
        g.add_edge(g.node(0), g.node(1), 1.0).unwrap();
        g.add_edge(g.node(1), g.node(2), 2.0).unwrap();
        Topology::new("t", g, vec![(0.0, 0.0), (4.0, 0.0), (4.0, 3.0)]).unwrap()
    }

    #[test]
    fn coordinate_count_checked() {
        let g = Graph::with_nodes(2);
        assert!(Topology::new("bad", g, vec![(0.0, 0.0)]).is_err());
    }

    #[test]
    fn distance_is_euclidean() {
        let t = tiny();
        assert_eq!(t.distance(t.graph().node(0), t.graph().node(1)), 4.0);
        assert_eq!(t.distance(t.graph().node(1), t.graph().node(2)), 3.0);
        assert_eq!(t.distance(t.graph().node(0), t.graph().node(2)), 5.0);
    }

    #[test]
    fn barycenter_averages() {
        let t = tiny();
        let (x, y) = t.barycenter();
        assert!((x - 8.0 / 3.0).abs() < 1e-12);
        assert!((y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edge_midpoint() {
        let t = tiny();
        let e = netrec_graph::EdgeId::new(0);
        assert_eq!(t.edge_midpoint(e), (2.0, 0.0));
    }

    #[test]
    fn add_node_at_keeps_correspondence() {
        let mut t = tiny();
        let n = t.add_node_at(9.0, 9.0);
        assert_eq!(t.coord(n), (9.0, 9.0));
        assert_eq!(t.coords().len(), t.graph().node_count());
    }
}
