//! Network topologies for the `netrec` workspace.
//!
//! The paper's evaluation runs on three families of topologies, all
//! available here:
//!
//! * [`bell`] — a deterministic *Bell-Canada-like* topology (48 nodes,
//!   64 edges, two backbones of capacity 30 and 50, access links of
//!   capacity 20), substituting for the Internet Topology Zoo dataset the
//!   paper used (first scenario).
//! * [`random`] — Erdős–Rényi, Barabási–Albert, Waxman, grid and ring
//!   generators (second scenario uses Erdős–Rényi).
//! * [`caida`] — a synthetic router-level AS graph with exactly 825 nodes
//!   and 1018 edges, matching the giant component of CAIDA AS28717 used in
//!   the third scenario.
//! * [`gml`] — a parser/writer for the GML subset used by the Internet
//!   Topology Zoo, so real datasets can be dropped in when available.
//! * [`demand`] — demand-graph generation following the paper's rule:
//!   endpoints at hop distance of at least half the network diameter.
//!
//! All generators are deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;

pub mod bell;
pub mod caida;
pub mod demand;
pub mod gml;
pub mod random;

pub use model::Topology;
