//! Parser and writer for the GML subset used by the Internet Topology Zoo.
//!
//! The Topology Zoo ships topologies as GML files with `node` blocks
//! (carrying `id`, `Longitude`, `Latitude`) and `edge` blocks (carrying
//! `source`, `target`, and sometimes `LinkSpeed`). This module reads that
//! subset, so real Zoo datasets (e.g. the actual Bell-Canada file) can be
//! dropped into the experiments in place of the synthetic substitute, and
//! writes it back for interchange.

use crate::Topology;
use netrec_graph::Graph;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors produced while parsing GML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GmlError {
    /// The top-level `graph [ ... ]` block is missing.
    MissingGraph,
    /// A `node` block has no `id`.
    NodeWithoutId,
    /// An `edge` block is missing `source` or `target`.
    EdgeWithoutEndpoints,
    /// An edge references an undeclared node id.
    UnknownNode(i64),
    /// An edge connects a node to itself (unsupported by the supply-graph
    /// model).
    SelfLoop(i64),
    /// Unbalanced brackets.
    UnbalancedBrackets,
}

impl fmt::Display for GmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GmlError::MissingGraph => write!(f, "no `graph [` block found"),
            GmlError::NodeWithoutId => write!(f, "node block without id"),
            GmlError::EdgeWithoutEndpoints => write!(f, "edge block missing source/target"),
            GmlError::UnknownNode(id) => write!(f, "edge references unknown node id {id}"),
            GmlError::SelfLoop(id) => write!(f, "self-loop on node id {id}"),
            GmlError::UnbalancedBrackets => write!(f, "unbalanced brackets"),
        }
    }
}

impl Error for GmlError {}

/// A token of the GML syntax: keys, numbers, strings, and brackets.
#[derive(Debug, Clone, PartialEq)]
enum Token {
    Key(String),
    Num(f64),
    Str(String),
    Open,
    Close,
}

fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '[' => {
                tokens.push(Token::Open);
                chars.next();
            }
            ']' => {
                tokens.push(Token::Close);
                chars.next();
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                for ch in chars.by_ref() {
                    if ch == '"' {
                        break;
                    }
                    s.push(ch);
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Comment to end of line.
                for ch in chars.by_ref() {
                    if ch == '\n' {
                        break;
                    }
                }
            }
            _ => {
                let mut word = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_whitespace() || ch == '[' || ch == ']' {
                        break;
                    }
                    word.push(ch);
                    chars.next();
                }
                if let Ok(n) = word.parse::<f64>() {
                    tokens.push(Token::Num(n));
                } else {
                    tokens.push(Token::Key(word));
                }
            }
        }
    }
    tokens
}

/// Attributes collected from a `node`/`edge` block.
#[derive(Debug, Default, Clone)]
struct Block {
    nums: BTreeMap<String, f64>,
    strs: BTreeMap<String, String>,
}

/// Parses GML text into a [`Topology`].
///
/// Node coordinates come from `Longitude`/`Latitude` (or `graphics x/y`)
/// when present, defaulting to `(0, 0)`. Edge capacities come from
/// `LinkSpeed`/`capacity`/`value`, defaulting to `default_capacity`.
///
/// # Errors
///
/// Returns a [`GmlError`] for malformed input.
///
/// # Example
///
/// ```
/// let gml = r#"
/// graph [
///   node [ id 0 Longitude 1.0 Latitude 2.0 ]
///   node [ id 1 Longitude 3.0 Latitude 2.0 ]
///   edge [ source 0 target 1 capacity 15 ]
/// ]"#;
/// let topo = netrec_topology::gml::parse(gml, 10.0)?;
/// assert_eq!(topo.graph().node_count(), 2);
/// assert_eq!(topo.graph().capacity(netrec_graph::EdgeId::new(0)), 15.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse(text: &str, default_capacity: f64) -> Result<Topology, GmlError> {
    let tokens = tokenize(text);
    // Find `graph [`.
    let mut i = 0;
    let mut graph_start = None;
    while i + 1 < tokens.len() {
        if let Token::Key(k) = &tokens[i] {
            if k.eq_ignore_ascii_case("graph") && tokens[i + 1] == Token::Open {
                graph_start = Some(i + 2);
                break;
            }
        }
        i += 1;
    }
    let Some(start) = graph_start else {
        return Err(GmlError::MissingGraph);
    };

    let mut name = String::from("gml");
    let mut nodes: Vec<Block> = Vec::new();
    let mut edges: Vec<Block> = Vec::new();

    let mut i = start;
    let mut depth = 1usize;
    while i < tokens.len() && depth > 0 {
        match &tokens[i] {
            Token::Close => {
                depth -= 1;
                i += 1;
            }
            Token::Key(k)
                if depth == 1
                    && (k.eq_ignore_ascii_case("node") || k.eq_ignore_ascii_case("edge"))
                    && i + 1 < tokens.len()
                    && tokens[i + 1] == Token::Open =>
            {
                let (block, next) = parse_block(&tokens, i + 2)?;
                if k.eq_ignore_ascii_case("node") {
                    nodes.push(block);
                } else {
                    edges.push(block);
                }
                i = next;
            }
            Token::Key(k)
                if depth == 1 && k.eq_ignore_ascii_case("label") && i + 1 < tokens.len() =>
            {
                if let Token::Str(s) = &tokens[i + 1] {
                    name = s.clone();
                }
                i += 2;
            }
            Token::Open => {
                depth += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    if depth != 0 {
        return Err(GmlError::UnbalancedBrackets);
    }

    // Build the graph with dense ids.
    let mut g = Graph::with_nodes(nodes.len());
    let mut coords = Vec::with_capacity(nodes.len());
    let mut id_map: BTreeMap<i64, usize> = BTreeMap::new();
    for (idx, b) in nodes.iter().enumerate() {
        let Some(&id) = b.nums.get("id") else {
            return Err(GmlError::NodeWithoutId);
        };
        id_map.insert(id as i64, idx);
        let x = b
            .nums
            .get("Longitude")
            .or_else(|| b.nums.get("x"))
            .copied()
            .unwrap_or(0.0);
        let y = b
            .nums
            .get("Latitude")
            .or_else(|| b.nums.get("y"))
            .copied()
            .unwrap_or(0.0);
        coords.push((x, y));
    }
    for b in &edges {
        let (Some(&s), Some(&t)) = (b.nums.get("source"), b.nums.get("target")) else {
            return Err(GmlError::EdgeWithoutEndpoints);
        };
        let (s, t) = (s as i64, t as i64);
        let &si = id_map.get(&s).ok_or(GmlError::UnknownNode(s))?;
        let &ti = id_map.get(&t).ok_or(GmlError::UnknownNode(t))?;
        if si == ti {
            return Err(GmlError::SelfLoop(s));
        }
        let cap = b
            .nums
            .get("LinkSpeed")
            .or_else(|| b.nums.get("capacity"))
            .or_else(|| b.nums.get("value"))
            .copied()
            .unwrap_or(default_capacity);
        g.add_edge(g.node(si), g.node(ti), cap)
            .expect("validated endpoints and capacity");
    }

    Topology::new(name, g, coords).map_err(|_| GmlError::UnbalancedBrackets)
}

fn parse_block(tokens: &[Token], mut i: usize) -> Result<(Block, usize), GmlError> {
    let mut block = Block::default();
    while i < tokens.len() {
        match &tokens[i] {
            Token::Close => return Ok((block, i + 1)),
            Token::Key(k) if i + 1 < tokens.len() => match &tokens[i + 1] {
                Token::Num(n) => {
                    block.nums.insert(k.clone(), *n);
                    i += 2;
                }
                Token::Str(s) => {
                    block.strs.insert(k.clone(), s.clone());
                    i += 2;
                }
                Token::Open => {
                    // Nested block (e.g. graphics): inline its numerics.
                    let (inner, next) = parse_block(tokens, i + 2)?;
                    for (ik, iv) in inner.nums {
                        block.nums.entry(ik).or_insert(iv);
                    }
                    i = next;
                }
                _ => i += 1,
            },
            _ => i += 1,
        }
    }
    Err(GmlError::UnbalancedBrackets)
}

/// Serializes a [`Topology`] to GML (the same subset [`parse`] reads).
pub fn write(topology: &Topology) -> String {
    let mut out = String::new();
    out.push_str("graph [\n");
    out.push_str(&format!("  label \"{}\"\n", topology.name()));
    for n in topology.graph().nodes() {
        let (x, y) = topology.coord(n);
        out.push_str(&format!(
            "  node [ id {} Longitude {} Latitude {} ]\n",
            n.index(),
            x,
            y
        ));
    }
    for e in topology.graph().edges() {
        let (u, v) = topology.graph().endpoints(e);
        out.push_str(&format!(
            "  edge [ source {} target {} capacity {} ]\n",
            u.index(),
            v.index(),
            topology.graph().capacity(e)
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bell::bell_canada;

    #[test]
    fn parse_minimal() {
        let gml = r#"graph [
            node [ id 10 ]
            node [ id 20 ]
            edge [ source 10 target 20 ]
        ]"#;
        let t = parse(gml, 7.0).unwrap();
        assert_eq!(t.graph().node_count(), 2);
        assert_eq!(t.graph().edge_count(), 1);
        assert_eq!(t.graph().capacity(netrec_graph::EdgeId::new(0)), 7.0);
    }

    #[test]
    fn parse_with_label_and_coords() {
        let gml = r#"graph [
            label "testnet"
            node [ id 0 Longitude -75.5 Latitude 45.4 ]
            node [ id 1 Longitude -79.3 Latitude 43.6 ]
            edge [ source 0 target 1 LinkSpeed 100 ]
        ]"#;
        let t = parse(gml, 1.0).unwrap();
        assert_eq!(t.name(), "testnet");
        assert_eq!(t.coord(t.graph().node(0)), (-75.5, 45.4));
        assert_eq!(t.graph().capacity(netrec_graph::EdgeId::new(0)), 100.0);
    }

    #[test]
    fn parse_nested_graphics_block() {
        let gml = r#"graph [
            node [ id 0 graphics [ x 1.5 y 2.5 ] ]
            node [ id 1 graphics [ x 0 y 0 ] ]
            edge [ source 0 target 1 ]
        ]"#;
        let t = parse(gml, 1.0).unwrap();
        assert_eq!(t.coord(t.graph().node(0)), (1.5, 2.5));
    }

    #[test]
    fn error_on_unknown_node() {
        let gml = r#"graph [ node [ id 0 ] edge [ source 0 target 9 ] ]"#;
        assert_eq!(parse(gml, 1.0).unwrap_err(), GmlError::UnknownNode(9));
    }

    #[test]
    fn error_on_missing_graph() {
        assert_eq!(
            parse("nothing here", 1.0).unwrap_err(),
            GmlError::MissingGraph
        );
    }

    #[test]
    fn error_on_self_loop() {
        let gml = r#"graph [ node [ id 0 ] edge [ source 0 target 0 ] ]"#;
        assert_eq!(parse(gml, 1.0).unwrap_err(), GmlError::SelfLoop(0));
    }

    #[test]
    fn error_on_unbalanced() {
        let gml = r#"graph [ node [ id 0 ]"#;
        assert_eq!(parse(gml, 1.0).unwrap_err(), GmlError::UnbalancedBrackets);
    }

    #[test]
    fn comments_are_skipped() {
        let gml =
            "graph [ # a comment\n node [ id 0 ] node [ id 1 ]\n edge [ source 0 target 1 ] ]";
        let t = parse(gml, 2.0).unwrap();
        assert_eq!(t.graph().edge_count(), 1);
    }

    #[test]
    fn round_trip_bell_canada() {
        let original = bell_canada();
        let text = write(&original);
        let parsed = parse(&text, 1.0).unwrap();
        assert_eq!(parsed.graph().node_count(), original.graph().node_count());
        assert_eq!(parsed.graph().edge_count(), original.graph().edge_count());
        assert_eq!(parsed.name(), original.name());
        for e in original.graph().edges() {
            assert_eq!(
                parsed.graph().capacity(e),
                original.graph().capacity(e),
                "capacity mismatch on {e:?}"
            );
        }
        for n in original.graph().nodes() {
            assert_eq!(parsed.coord(n), original.coord(n));
        }
    }
}
