//! Demand-graph generation.
//!
//! The paper builds demand graphs by selecting endpoint pairs that are
//! *far apart* in the supply graph: "we randomly select the demand pairs
//! among those which have a hop distance greater than or equal to half the
//! diameter of the network" (§VII-A). This module implements exactly that
//! rule, with the distance factor configurable.

use crate::Topology;
use netrec_graph::{traversal, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A demand pair `(s_h, t_h, d_h)` produced by the generator.
pub type DemandPair = (NodeId, NodeId, f64);

/// Configuration for [`generate_demands`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DemandSpec {
    /// Number of demand pairs `|EH|`.
    pub pairs: usize,
    /// Flow requirement per pair (`d_h`, identical for all pairs as in the
    /// paper).
    pub flow_per_pair: f64,
    /// Minimum hop distance between endpoints, as a fraction of the
    /// network diameter (the paper uses 0.5).
    pub min_distance_factor: f64,
}

impl DemandSpec {
    /// Spec with the paper's defaults: `pairs` pairs of `flow` units at
    /// hop distance ≥ diameter/2.
    pub fn new(pairs: usize, flow: f64) -> Self {
        DemandSpec {
            pairs,
            flow_per_pair: flow,
            min_distance_factor: 0.5,
        }
    }

    /// Parses the canonical string encoding
    /// `pairs=N,flow=F[,min-dist=FACTOR]` (the campaign-spec axis
    /// format; `Display` renders the same form, so
    /// `parse(spec.to_string())` round-trips).
    ///
    /// # Errors
    ///
    /// A message naming the offending token; `pairs` and `flow` are
    /// mandatory, `min-dist` defaults to the paper's 0.5.
    pub fn parse(s: &str) -> Result<DemandSpec, String> {
        let mut pairs: Option<usize> = None;
        let mut flow: Option<f64> = None;
        let mut factor = 0.5f64;
        for token in s.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("demand option `{token}` is not key=value"))?;
            match key.trim() {
                "pairs" => {
                    pairs = Some(
                        value
                            .trim()
                            .parse()
                            .map_err(|_| format!("demand pairs `{value}` is not an integer"))?,
                    )
                }
                "flow" => {
                    let f: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("demand flow `{value}` is not a number"))?;
                    if !f.is_finite() || f < 0.0 {
                        return Err(format!("demand flow {f} must be finite and non-negative"));
                    }
                    flow = Some(f);
                }
                "min-dist" => {
                    let f: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("demand min-dist `{value}` is not a number"))?;
                    if !f.is_finite() || !(0.0..=1.0).contains(&f) {
                        return Err(format!("demand min-dist {f} must lie in [0, 1]"));
                    }
                    factor = f;
                }
                other => return Err(format!("unknown demand option `{other}`")),
            }
        }
        Ok(DemandSpec {
            pairs: pairs.ok_or("demand spec needs pairs=N")?,
            flow_per_pair: flow.ok_or("demand spec needs flow=F")?,
            min_distance_factor: factor,
        })
    }
}

impl std::fmt::Display for DemandSpec {
    /// The canonical encoding accepted by [`DemandSpec::parse`];
    /// `min-dist` is omitted at the paper's default 0.5.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pairs={},flow={}", self.pairs, self.flow_per_pair)?;
        if self.min_distance_factor != 0.5 {
            write!(f, ",min-dist={}", self.min_distance_factor)?;
        }
        Ok(())
    }
}

/// Generates demand pairs on `topology` according to `spec`.
///
/// Endpoints are distinct nodes at hop distance at least
/// `min_distance_factor × diameter`; an endpoint may appear in several
/// pairs (as in the paper's demand graphs, where `VH ⊆ V`). If fewer
/// eligible pairs exist than requested, the threshold is relaxed by 10%
/// steps until enough are available (this can only happen on tiny or
/// near-clique graphs, where every pair is equally "far").
///
/// Above [`DEMAND_EXACT_MAX`] nodes the exact all-pairs selection is
/// replaced by per-pair BFS sampling against a double-sweep
/// pseudo-diameter — same distance rule, `O(pairs · m)` instead of
/// `O(n · m)` time and `O(n²)` memory.
///
/// # Example
///
/// ```
/// let topo = netrec_topology::bell::bell_canada();
/// let spec = netrec_topology::demand::DemandSpec::new(4, 10.0);
/// let demands = netrec_topology::demand::generate_demands(&topo, &spec, 42);
/// assert_eq!(demands.len(), 4);
/// ```
pub fn generate_demands(topology: &Topology, spec: &DemandSpec, seed: u64) -> Vec<DemandPair> {
    let mut rng = StdRng::seed_from_u64(seed);
    let view = topology.graph().view();
    let n = topology.graph().node_count();
    if n < 2 || spec.pairs == 0 {
        return Vec::new();
    }
    if n > DEMAND_EXACT_MAX {
        return generate_demands_sampled(topology, spec, &mut rng);
    }
    let diameter = traversal::diameter(&view);
    let mut threshold = (spec.min_distance_factor * diameter as f64).ceil() as usize;

    loop {
        // Collect all eligible pairs at the current threshold.
        let mut eligible: Vec<(NodeId, NodeId)> = Vec::new();
        for u in topology.graph().nodes() {
            let tree = traversal::bfs(&view, u);
            for v in topology.graph().nodes() {
                if v.index() > u.index() && tree.reached(v) && tree.dist[v.index()] >= threshold {
                    eligible.push((u, v));
                }
            }
        }
        if eligible.len() >= spec.pairs || threshold == 0 {
            let mut out = Vec::with_capacity(spec.pairs);
            // Sample without replacement.
            let mut pool = eligible;
            while out.len() < spec.pairs && !pool.is_empty() {
                let i = rng.gen_range(0..pool.len());
                let (s, t) = pool.swap_remove(i);
                out.push((s, t, spec.flow_per_pair));
            }
            return out;
        }
        threshold = threshold.saturating_sub((threshold / 10).max(1));
    }
}

/// Largest node count that still uses the exact all-pairs generator.
/// Above it [`generate_demands`] switches to per-pair BFS sampling: the
/// exact path runs a BFS from *every* node (plus an all-pairs diameter
/// sweep) and materializes the full eligible-pair pool — `O(n·m)` time
/// and `O(n²)` memory, measured at ~9 GB and minutes of CPU on a 50k
/// node sweep point. Mirrors `random::WAXMAN_EXACT_MAX`: every
/// figure/golden topology (n ≤ 60) keeps byte-identical demand sets.
pub const DEMAND_EXACT_MAX: usize = 4096;

/// Linear-time generator for large graphs: the diameter comes from a
/// double BFS sweep (the classical pseudo-diameter lower bound — exact
/// on trees, within 2× in general, and in practice tight on the
/// small-world topologies the sweep uses), and each pair is drawn by one
/// BFS from a random source, picking a random node at distance ≥
/// threshold. Cost is `O(pairs · m)` with nothing quadratic
/// materialized. The threshold relaxes by the exact path's 10% rule
/// whenever a source has no sufficiently far partner.
fn generate_demands_sampled(
    topology: &Topology,
    spec: &DemandSpec,
    rng: &mut StdRng,
) -> Vec<DemandPair> {
    let view = topology.graph().view();
    let n = topology.graph().node_count();

    // Double sweep: farthest node from an arbitrary root, then the
    // farthest distance from there.
    let far = |root: NodeId| -> (NodeId, usize) {
        let tree = traversal::bfs(&view, root);
        let mut best = (root, 0);
        for v in topology.graph().nodes() {
            if tree.reached(v) && tree.dist[v.index()] > best.1 {
                best = (v, tree.dist[v.index()]);
            }
        }
        best
    };
    let (u, _) = far(topology.graph().node(0));
    let (_, pseudo_diameter) = far(u);
    let mut threshold = (spec.min_distance_factor * pseudo_diameter as f64).ceil() as usize;

    let mut out = Vec::with_capacity(spec.pairs);
    let mut seen: Vec<(NodeId, NodeId)> = Vec::new();
    let mut candidates: Vec<NodeId> = Vec::new();
    // Each attempt costs one BFS; a miss lowers the threshold, so
    // progress is guaranteed long before the attempt budget runs out.
    let mut attempts = 16 * spec.pairs + 64;
    while out.len() < spec.pairs && attempts > 0 {
        attempts -= 1;
        let s = topology.graph().node(rng.gen_range(0..n));
        let tree = traversal::bfs(&view, s);
        candidates.clear();
        for v in topology.graph().nodes() {
            if v != s && tree.reached(v) && tree.dist[v.index()] >= threshold {
                candidates.push(v);
            }
        }
        if candidates.is_empty() {
            threshold = threshold.saturating_sub((threshold / 10).max(1));
            continue;
        }
        let t = candidates[rng.gen_range(0..candidates.len())];
        let pair = if s.index() < t.index() {
            (s, t)
        } else {
            (t, s)
        };
        if seen.contains(&pair) {
            continue;
        }
        seen.push(pair);
        out.push((pair.0, pair.1, spec.flow_per_pair));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bell::bell_canada;
    use crate::random::ring;

    #[test]
    fn pairs_respect_distance_rule() {
        let topo = bell_canada();
        let view = topo.graph().view();
        let diameter = traversal::diameter(&view);
        let demands = generate_demands(&topo, &DemandSpec::new(7, 10.0), 1);
        assert_eq!(demands.len(), 7);
        for (s, t, d) in &demands {
            assert_eq!(*d, 10.0);
            let hops = traversal::hop_distance(&view, *s, *t).unwrap();
            assert!(
                hops * 2 >= diameter,
                "pair at distance {hops} violates diameter/2 = {}",
                diameter / 2
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let topo = bell_canada();
        let spec = DemandSpec::new(4, 10.0);
        assert_eq!(
            generate_demands(&topo, &spec, 5),
            generate_demands(&topo, &spec, 5)
        );
        assert_ne!(
            generate_demands(&topo, &spec, 5),
            generate_demands(&topo, &spec, 6)
        );
    }

    #[test]
    fn distinct_pairs() {
        let topo = bell_canada();
        let demands = generate_demands(&topo, &DemandSpec::new(7, 1.0), 3);
        let mut keys: Vec<_> = demands.iter().map(|(s, t, _)| (*s, *t)).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 7);
    }

    #[test]
    fn relaxes_on_small_graphs() {
        // Ring of 4: diameter 2, threshold 1; plenty of pairs.
        let topo = ring(4, 1.0);
        let demands = generate_demands(&topo, &DemandSpec::new(3, 2.0), 9);
        assert_eq!(demands.len(), 3);
    }

    #[test]
    fn zero_pairs_and_tiny_graphs() {
        let topo = ring(3, 1.0);
        assert!(generate_demands(&topo, &DemandSpec::new(0, 1.0), 0).is_empty());
    }

    /// Satellite: the string encoding round-trips (the offline serde
    /// stand-in derives nothing, so this *is* the serialization format —
    /// campaign specs carry demand axes as these strings).
    #[test]
    fn string_encoding_round_trips() {
        for s in [
            "pairs=4,flow=10",
            "pairs=0,flow=0.5",
            "pairs=7,flow=2.25,min-dist=0.4",
        ] {
            let spec = DemandSpec::parse(s).unwrap();
            assert_eq!(spec.to_string(), s, "{s}");
            let again = DemandSpec::parse(&spec.to_string()).unwrap();
            assert_eq!(again.pairs, spec.pairs);
            assert_eq!(again.flow_per_pair, spec.flow_per_pair);
            assert_eq!(again.min_distance_factor, spec.min_distance_factor);
        }
        // Default factor is omitted from the rendering.
        assert_eq!(DemandSpec::new(3, 1.0).to_string(), "pairs=3,flow=1");
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "pairs=4",
            "flow=10",
            "pairs=x,flow=1",
            "pairs=1,flow=abc",
            "pairs=1,flow=-2",
            "pairs=1,flow=1,min-dist=1.5",
            "pairs=1,flow=1,banana=2",
            "pairs",
        ] {
            assert!(DemandSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn endpoints_are_distinct_nodes() {
        let topo = bell_canada();
        for (s, t, _) in generate_demands(&topo, &DemandSpec::new(7, 1.0), 8) {
            assert_ne!(s, t);
        }
    }

    /// The sampled large-n path honors the same contract as the exact
    /// one: full pair count, distinct far-apart endpoints, no duplicate
    /// pairs, deterministic per seed — without quadratic work.
    #[test]
    fn sampled_path_respects_the_distance_contract() {
        let n = DEMAND_EXACT_MAX + 1000;
        let topo = crate::random::barabasi_albert(n, 2, 1.0, 7);
        let view = topo.graph().view();
        let spec = DemandSpec::new(8, 2.0);
        let demands = generate_demands(&topo, &spec, 11);
        assert_eq!(demands.len(), 8);
        let mut keys: Vec<_> = demands.iter().map(|(s, t, _)| (*s, *t)).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 8, "duplicate sampled pairs");
        for (s, t, d) in &demands {
            assert_eq!(*d, 2.0);
            assert_ne!(s, t);
            // BA(n, 2) pseudo-diameter is ~log n; the paper's rule asks
            // for ≥ half of it. Anything ≥ 2 hops proves the threshold
            // was applied rather than ignored.
            let hops = traversal::hop_distance(&view, *s, *t).unwrap();
            assert!(hops >= 2, "sampled pair only {hops} hop(s) apart");
        }
        assert_eq!(demands, generate_demands(&topo, &spec, 11));
    }
}
