//! A deterministic Bell-Canada-like topology.
//!
//! The paper's first scenario uses the Bell-Canada topology from the
//! Internet Topology Zoo (48 nodes, 64 edges), with capacities manually
//! altered: two backbones of capacity 30 and 50, all other edges capacity
//! 20, and uniform unitary repair costs. We cannot redistribute the Zoo
//! dataset, so this module builds a topology with the same node/edge
//! counts, the same capacity plan, and a comparable west→east geographic
//! structure (a long, mostly planar carrier network). The experiments
//! depend on those structural properties, not on the Canadian city names —
//! see `DESIGN.md` for the substitution rationale. Real Zoo data can be
//! loaded through [`crate::gml`] instead when available.

use crate::Topology;
use netrec_graph::Graph;

/// Capacity of the primary backbone chain.
pub const PRIMARY_BACKBONE_CAPACITY: f64 = 50.0;
/// Capacity of the secondary backbone chain.
pub const SECONDARY_BACKBONE_CAPACITY: f64 = 30.0;
/// Capacity of every other (access/cross) link.
pub const ACCESS_CAPACITY: f64 = 20.0;

/// Builds the Bell-Canada-like topology: 48 nodes, 64 edges.
///
/// Layout:
/// * nodes 0–15: primary backbone chain (15 edges, capacity 50) at y = 1;
/// * nodes 16–31: secondary backbone chain (15 edges, capacity 30) at
///   y = 0;
/// * 6 cross links between the backbones (capacity 20);
/// * nodes 32–47: access nodes, one or two links each into the backbones
///   (28 edges, capacity 20).
///
/// # Example
///
/// ```
/// let topo = netrec_topology::bell::bell_canada();
/// assert_eq!(topo.graph().node_count(), 48);
/// assert_eq!(topo.graph().edge_count(), 64);
/// ```
pub fn bell_canada() -> Topology {
    let mut g = Graph::with_nodes(48);
    let mut coords = vec![(0.0, 0.0); 48];

    // Primary backbone: nodes 0..=15 at y=1.0, x = i.
    for (i, c) in coords.iter_mut().enumerate().take(16) {
        *c = (i as f64, 1.0);
    }
    for i in 0..15 {
        g.add_edge(g.node(i), g.node(i + 1), PRIMARY_BACKBONE_CAPACITY)
            .expect("valid backbone edge");
    }

    // Secondary backbone: nodes 16..=31 at y=0.0, x = i.
    for i in 0..16 {
        coords[16 + i] = (i as f64, 0.0);
    }
    for i in 0..15 {
        g.add_edge(
            g.node(16 + i),
            g.node(16 + i + 1),
            SECONDARY_BACKBONE_CAPACITY,
        )
        .expect("valid backbone edge");
    }

    // Cross links between the two backbones.
    for &i in &[0usize, 3, 6, 9, 12, 15] {
        g.add_edge(g.node(i), g.node(16 + i), ACCESS_CAPACITY)
            .expect("valid cross edge");
    }

    // Access nodes 32..=47: node 32+k attaches to backbone position k.
    // The first link alternates between the two backbones; the first 12
    // access nodes get a second link to the next backbone position,
    // giving 16 + 12 = 28 access edges (total 15+15+6+28 = 64).
    for k in 0..16 {
        let access = 32 + k;
        let primary = k % 2 == 0;
        let anchor = if primary { k } else { 16 + k };
        let (ax, _) = coords[anchor];
        coords[access] = (ax + 0.25, if primary { 1.6 } else { -0.6 });
        g.add_edge(g.node(access), g.node(anchor), ACCESS_CAPACITY)
            .expect("valid access edge");
        if k < 12 {
            // Second link to the following position on the same backbone.
            let anchor2 = if primary { k + 1 } else { 16 + k + 1 };
            g.add_edge(g.node(access), g.node(anchor2), ACCESS_CAPACITY)
                .expect("valid access edge");
        }
    }

    Topology::new("bell-canada-like", g, coords).expect("coordinate count matches")
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrec_graph::traversal;

    #[test]
    fn node_and_edge_counts_match_paper() {
        let t = bell_canada();
        assert_eq!(t.graph().node_count(), 48);
        assert_eq!(t.graph().edge_count(), 64);
    }

    #[test]
    fn is_connected() {
        let t = bell_canada();
        let (_, count) = traversal::connected_components(&t.graph().view());
        assert_eq!(count, 1);
    }

    #[test]
    fn capacity_plan_matches_paper() {
        let t = bell_canada();
        let mut counts = std::collections::BTreeMap::new();
        for e in t.graph().edges() {
            *counts.entry(t.graph().capacity(e) as u64).or_insert(0usize) += 1;
        }
        assert_eq!(counts.get(&50).copied(), Some(15));
        assert_eq!(counts.get(&30).copied(), Some(15));
        assert_eq!(counts.get(&20).copied(), Some(34));
    }

    #[test]
    fn deterministic() {
        let a = bell_canada();
        let b = bell_canada();
        assert_eq!(a.graph(), b.graph());
        assert_eq!(a.coords(), b.coords());
    }

    #[test]
    fn diameter_is_carrier_like() {
        let t = bell_canada();
        let d = traversal::diameter(&t.graph().view());
        // Long haul network: diameter well above a clique's.
        assert!(d >= 8, "diameter {d} too small for a carrier chain");
        assert!(d <= 24, "diameter {d} suspiciously large");
    }

    #[test]
    fn no_parallel_edges() {
        let t = bell_canada();
        let mut seen = std::collections::BTreeSet::new();
        for e in t.graph().edges() {
            let (u, v) = t.graph().endpoints(e);
            let key = (u.index().min(v.index()), u.index().max(v.index()));
            assert!(seen.insert(key), "parallel edge {key:?}");
        }
    }
}
