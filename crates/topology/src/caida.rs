//! A synthetic CAIDA-AS28717-like topology.
//!
//! The paper's third scenario uses the giant connected component of the
//! CAIDA ITDK topology AS28717: **825 nodes and 1018 edges** of IP-level
//! backbone/gateway router connections. We cannot ship the ITDK dataset,
//! so this module generates a connected graph with exactly those counts
//! and the structural features that matter for the experiments: a
//! tree-like body (edge/node ratio 1.23) with preferential attachment
//! (heavy-tailed degrees, a few hubs), geographic coordinates for the
//! disruption model, and uniform capacities. Real ITDK data can be loaded
//! through [`crate::gml`] instead when available. See `DESIGN.md`.

use crate::Topology;
use netrec_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Node count of the CAIDA AS28717 giant component.
pub const CAIDA_NODES: usize = 825;
/// Edge count of the CAIDA AS28717 giant component.
pub const CAIDA_EDGES: usize = 1018;
/// Default uniform edge capacity.
///
/// The paper routes 22 flow units per demand pair on this topology; a
/// capacity of 44 lets exactly two pairs share a link, reproducing the
/// partial-sharing regime of the first scenario (pairs of 10 units on
/// capacity-20 access links).
pub const DEFAULT_CAPACITY: f64 = 44.0;

/// Generates the CAIDA-like topology with exactly [`CAIDA_NODES`] nodes
/// and [`CAIDA_EDGES`] edges.
///
/// Construction: a preferential-attachment spanning tree (824 edges)
/// followed by 194 extra degree-biased shortcut edges, rejecting
/// duplicates. The result is connected by construction.
///
/// # Example
///
/// ```
/// let t = netrec_topology::caida::caida_like(1);
/// assert_eq!(t.graph().node_count(), 825);
/// assert_eq!(t.graph().edge_count(), 1018);
/// ```
pub fn caida_like(seed: u64) -> Topology {
    caida_sized(CAIDA_NODES, CAIDA_EDGES, DEFAULT_CAPACITY, seed)
}

/// Generates a CAIDA-style graph with custom size (used by scaled-down
/// benchmark variants).
///
/// # Panics
///
/// Panics if `nodes < 2` or `edges < nodes - 1` (a connected graph is
/// impossible) or `edges` exceeds the simple-graph maximum.
pub fn caida_sized(nodes: usize, edges: usize, capacity: f64, seed: u64) -> Topology {
    assert!(nodes >= 2, "need at least two nodes");
    assert!(edges >= nodes - 1, "too few edges for a connected graph");
    assert!(
        edges <= nodes * (nodes - 1) / 2,
        "too many edges for a simple graph"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::with_nodes(nodes);
    let coords: Vec<(f64, f64)> = (0..nodes).map(|_| (rng.gen(), rng.gen())).collect();

    // Preferential-attachment spanning tree.
    let mut pool: Vec<usize> = vec![0];
    let mut present = std::collections::BTreeSet::new();
    for v in 1..nodes {
        let anchor = pool[rng.gen_range(0..pool.len())];
        g.add_edge(g.node(v), g.node(anchor), capacity)
            .expect("valid tree edge");
        present.insert((v.min(anchor), v.max(anchor)));
        pool.push(anchor);
        pool.push(v);
    }

    // Degree-biased shortcuts.
    let extra = edges - (nodes - 1);
    let mut added = 0;
    let mut guard = 0usize;
    while added < extra && guard < extra * 1000 {
        guard += 1;
        let a = pool[rng.gen_range(0..pool.len())];
        let b = pool[rng.gen_range(0..pool.len())];
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if present.contains(&key) {
            continue;
        }
        g.add_edge(g.node(a), g.node(b), capacity)
            .expect("valid edge");
        present.insert(key);
        pool.push(a);
        pool.push(b);
        added += 1;
    }
    // Fall back to uniform pairs if the biased sampler stalls (tiny graphs).
    while added < extra {
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if present.contains(&key) {
            continue;
        }
        g.add_edge(g.node(a), g.node(b), capacity)
            .expect("valid edge");
        present.insert(key);
        added += 1;
    }

    Topology::new(format!("caida-like-{nodes}-{edges}"), g, coords).expect("coords match")
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrec_graph::traversal;

    #[test]
    fn exact_counts() {
        let t = caida_like(7);
        assert_eq!(t.graph().node_count(), CAIDA_NODES);
        assert_eq!(t.graph().edge_count(), CAIDA_EDGES);
    }

    #[test]
    fn connected() {
        let t = caida_like(7);
        let (_, comps) = traversal::connected_components(&t.graph().view());
        assert_eq!(comps, 1);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(caida_like(3).graph(), caida_like(3).graph());
        assert_ne!(caida_like(3).graph(), caida_like(4).graph());
    }

    #[test]
    fn heavy_tailed_degrees() {
        let t = caida_like(5);
        let max_deg = t.graph().max_degree();
        assert!(max_deg >= 15, "expected hubs, max degree {max_deg}");
        // Most nodes are low-degree (router-level AS graphs are tree-like).
        let low = t
            .graph()
            .nodes()
            .filter(|&n| t.graph().degree(n) <= 2)
            .count();
        assert!(low > CAIDA_NODES / 2);
    }

    #[test]
    fn no_parallel_edges() {
        let t = caida_like(9);
        let mut seen = std::collections::BTreeSet::new();
        for e in t.graph().edges() {
            let (u, v) = t.graph().endpoints(e);
            let key = (u.index().min(v.index()), u.index().max(v.index()));
            assert!(seen.insert(key));
        }
    }

    #[test]
    fn custom_sizes() {
        let t = caida_sized(50, 60, 10.0, 2);
        assert_eq!(t.graph().node_count(), 50);
        assert_eq!(t.graph().edge_count(), 60);
        let (_, comps) = traversal::connected_components(&t.graph().view());
        assert_eq!(comps, 1);
    }

    #[test]
    #[should_panic(expected = "too few edges")]
    fn rejects_disconnectable() {
        let _ = caida_sized(10, 5, 1.0, 1);
    }
}
