//! Random topology generators.
//!
//! The paper's second scenario uses Erdős–Rényi graphs; the other
//! generators (Barabási–Albert, Waxman, grid, ring) are provided for wider
//! experimentation and for the property-based test suites.

use crate::Topology;
use netrec_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Largest `n` for which [`waxman`] uses the classical exact `O(n²)`
/// pairwise sampler. Above this the generator switches to the
/// cell-grid sparse variant, which is linear in `n`.
pub const WAXMAN_EXACT_MAX: usize = 4096;

/// Erdős–Rényi `G(n, p)`: every pair connected independently with
/// probability `p`. Coordinates are uniform in the unit square.
///
/// All edges get capacity `capacity` — the paper's second scenario uses
/// 1000 so that only connectivity matters.
///
/// Inherently `Θ(n²)`: every pair is sampled. This matches the paper's
/// small scenarios; for 10k–100k-node workloads use [`barabasi_albert`]
/// or [`waxman`], which stay (near-)linear.
///
/// # Example
///
/// ```
/// let t = netrec_topology::random::erdos_renyi(30, 0.2, 100.0, 42);
/// assert_eq!(t.graph().node_count(), 30);
/// ```
pub fn erdos_renyi(n: usize, p: f64, capacity: f64, seed: u64) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::with_nodes(n);
    let coords: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen::<f64>() < p {
                g.add_edge(g.node(i), g.node(j), capacity)
                    .expect("valid random edge");
            }
        }
    }
    Topology::new(format!("erdos-renyi-{n}-{p}"), g, coords).expect("coords match")
}

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new node to `m` existing nodes with probability
/// proportional to degree.
///
/// Runs in `O(n · m)` expected time: attachment samples uniformly from a
/// degree-weighted endpoint pool (each accepted edge appends both
/// endpoints), so no per-node scan over existing nodes ever happens.
/// This is the generator the 10k–100k-node scaling benchmarks build on.
///
/// # Panics
///
/// Panics if `m == 0` or `n < m + 1`.
pub fn barabasi_albert(n: usize, m: usize, capacity: f64, seed: u64) -> Topology {
    assert!(m >= 1, "attachment count must be positive");
    assert!(n > m, "need at least m+1 nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::with_nodes(n);
    let coords: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
    // Degree-weighted endpoint pool (each edge contributes both endpoints).
    let mut pool: Vec<usize> = Vec::new();
    // Seed clique over the first m+1 nodes.
    for i in 0..=m {
        for j in (i + 1)..=m {
            g.add_edge(g.node(i), g.node(j), capacity)
                .expect("valid edge");
            pool.push(i);
            pool.push(j);
        }
    }
    for v in (m + 1)..n {
        let mut targets = std::collections::BTreeSet::new();
        let mut guard = 0;
        while targets.len() < m && guard < 50 * m {
            let t = pool[rng.gen_range(0..pool.len())];
            if t != v {
                targets.insert(t);
            }
            guard += 1;
        }
        for &t in &targets {
            g.add_edge(g.node(v), g.node(t), capacity)
                .expect("valid edge");
            pool.push(v);
            pool.push(t);
        }
    }
    Topology::new(format!("barabasi-albert-{n}-{m}"), g, coords).expect("coords match")
}

/// Waxman random geometric graph: nodes uniform in the unit square,
/// edge probability `alpha · exp(−dist / (beta · L))` with `L` the maximum
/// pairwise distance.
///
/// Up to [`WAXMAN_EXACT_MAX`] nodes this is the classical exact sampler
/// (every pair drawn — `Θ(n²)`, and bit-identical to previous releases
/// for a given seed). Above it, the classical model itself stops making
/// sense: at fixed `alpha`/`beta` its expected edge count grows as
/// `Θ(n²)`, which neither real ISP topologies nor a linear-time
/// generator can follow. The large-`n` variant therefore switches to
/// the standard sparse reading of the model (constant expected degree,
/// as in BRITE-style generators): the interaction length `ℓ` is chosen
/// so the expected degree is `≈ 40 · alpha · beta` (preserving both
/// knobs' monotone roles; ≈4.8 at the classical defaults 0.8/0.15),
/// pairs beyond the cutoff radius `18ℓ` — where the edge probability is
/// below `alpha · e⁻¹⁸ ≈ 1.2e-8` — are never sampled, and a uniform
/// cell grid of cutoff-sized cells yields the `O(n)` expected runtime.
/// Generation stays deterministic per seed in both regimes.
pub fn waxman(n: usize, alpha: f64, beta: f64, capacity: f64, seed: u64) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    let coords: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
    let mut g = Graph::with_nodes(n);
    if n <= WAXMAN_EXACT_MAX {
        let mut max_d: f64 = 1e-12;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = dist(coords[i], coords[j]);
                max_d = max_d.max(d);
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let d = dist(coords[i], coords[j]);
                if rng.gen::<f64>() < alpha * (-d / (beta * max_d)).exp() {
                    g.add_edge(g.node(i), g.node(j), capacity)
                        .expect("valid edge");
                }
            }
        }
        return Topology::new(format!("waxman-{n}"), g, coords).expect("coords match");
    }
    // Sparse regime: constant expected degree `deg ≈ n·alpha·2πℓ²`.
    let deg_target = (40.0 * alpha * beta).max(2.0);
    let ell = (deg_target / (2.0 * std::f64::consts::PI * alpha.max(1e-9) * n as f64)).sqrt();
    let cutoff = 18.0 * ell;
    // Cell side ≥ cutoff, so the 3×3 neighborhood covers every
    // candidate pair exactly once (via the j > i ordering below).
    let cells = ((1.0 / cutoff).floor() as usize).max(1);
    let cell_of = |x: f64| ((x * cells as f64) as usize).min(cells - 1);
    let mut grid: Vec<Vec<usize>> = vec![Vec::new(); cells * cells];
    for (i, &(x, y)) in coords.iter().enumerate() {
        grid[cell_of(y) * cells + cell_of(x)].push(i);
    }
    for i in 0..n {
        let (cx, cy) = (cell_of(coords[i].0), cell_of(coords[i].1));
        for dy in -1i64..=1 {
            let ny = cy as i64 + dy;
            if ny < 0 || ny >= cells as i64 {
                continue;
            }
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                if nx < 0 || nx >= cells as i64 {
                    continue;
                }
                for &j in &grid[ny as usize * cells + nx as usize] {
                    if j <= i {
                        continue;
                    }
                    let d = dist(coords[i], coords[j]);
                    if d > cutoff {
                        continue;
                    }
                    if rng.gen::<f64>() < alpha * (-d / ell).exp() {
                        g.add_edge(g.node(i), g.node(j), capacity)
                            .expect("valid edge");
                    }
                }
            }
        }
    }
    Topology::new(format!("waxman-{n}"), g, coords).expect("coords match")
}

/// `rows × cols` grid with unit spacing.
pub fn grid(rows: usize, cols: usize, capacity: f64) -> Topology {
    let n = rows * cols;
    let mut g = Graph::with_nodes(n);
    let mut coords = Vec::with_capacity(n);
    for r in 0..rows {
        for c in 0..cols {
            coords.push((c as f64, r as f64));
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if c + 1 < cols {
                g.add_edge(g.node(i), g.node(i + 1), capacity)
                    .expect("valid edge");
            }
            if r + 1 < rows {
                g.add_edge(g.node(i), g.node(i + cols), capacity)
                    .expect("valid edge");
            }
        }
    }
    Topology::new(format!("grid-{rows}x{cols}"), g, coords).expect("coords match")
}

/// Ring of `n ≥ 3` nodes on the unit circle.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize, capacity: f64) -> Topology {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let mut g = Graph::with_nodes(n);
    let coords: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let a = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            (a.cos(), a.sin())
        })
        .collect();
    for i in 0..n {
        g.add_edge(g.node(i), g.node((i + 1) % n), capacity)
            .expect("valid edge");
    }
    Topology::new(format!("ring-{n}"), g, coords).expect("coords match")
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrec_graph::traversal;

    #[test]
    fn erdos_renyi_is_deterministic_per_seed() {
        let a = erdos_renyi(20, 0.3, 10.0, 7);
        let b = erdos_renyi(20, 0.3, 10.0, 7);
        assert_eq!(a.graph(), b.graph());
        let c = erdos_renyi(20, 0.3, 10.0, 8);
        assert_ne!(a.graph(), c.graph());
    }

    #[test]
    fn erdos_renyi_extreme_p() {
        let empty = erdos_renyi(10, 0.0, 1.0, 1);
        assert_eq!(empty.graph().edge_count(), 0);
        let full = erdos_renyi(10, 1.0, 1.0, 1);
        assert_eq!(full.graph().edge_count(), 45);
    }

    #[test]
    fn erdos_renyi_edge_count_near_expectation() {
        let t = erdos_renyi(50, 0.2, 1.0, 3);
        let expected = 0.2 * (50.0 * 49.0 / 2.0);
        let actual = t.graph().edge_count() as f64;
        assert!((actual - expected).abs() < expected * 0.35);
    }

    #[test]
    fn barabasi_albert_counts() {
        let t = barabasi_albert(50, 2, 5.0, 11);
        assert_eq!(t.graph().node_count(), 50);
        // Clique of 3 (3 edges) + 47 nodes × 2 links.
        assert_eq!(t.graph().edge_count(), 3 + 47 * 2);
        let (_, comps) = traversal::connected_components(&t.graph().view());
        assert_eq!(comps, 1);
    }

    #[test]
    fn barabasi_albert_has_hubs() {
        let t = barabasi_albert(200, 2, 5.0, 13);
        let max_deg = t.graph().max_degree();
        assert!(max_deg >= 10, "expected a hub, max degree {max_deg}");
    }

    #[test]
    fn waxman_prefers_short_edges() {
        let t = waxman(60, 0.8, 0.15, 1.0, 5);
        let mut short = 0;
        let mut long = 0;
        for e in t.graph().edges() {
            let (u, v) = t.graph().endpoints(e);
            if t.distance(u, v) < 0.5 {
                short += 1;
            } else {
                long += 1;
            }
        }
        assert!(short > long);
    }

    #[test]
    fn waxman_large_is_sparse_and_deterministic() {
        // Above WAXMAN_EXACT_MAX the cell-grid sparse path kicks in:
        // linear edge counts (constant expected degree), per-seed
        // determinism, and no edge past the cutoff radius.
        let n = 20_000;
        let a = waxman(n, 0.8, 0.15, 1.0, 21);
        let b = waxman(n, 0.8, 0.15, 1.0, 21);
        assert_eq!(a.graph(), b.graph());
        let c = waxman(n, 0.8, 0.15, 1.0, 22);
        assert_ne!(a.graph(), c.graph());
        let avg_deg = 2.0 * a.graph().edge_count() as f64 / n as f64;
        assert!(
            (1.5..=9.0).contains(&avg_deg),
            "expected constant average degree near 4.8, got {avg_deg}"
        );
        // cutoff = 18·ℓ with ℓ = sqrt(deg/(2π·alpha·n)) ≈ 0.0069 here.
        for e in a.graph().edges() {
            let (u, v) = a.graph().endpoints(e);
            assert!(a.distance(u, v) <= 0.13, "edge past the cutoff radius");
        }
    }

    #[test]
    fn grid_structure() {
        let t = grid(3, 4, 2.0);
        assert_eq!(t.graph().node_count(), 12);
        assert_eq!(t.graph().edge_count(), 3 * 3 + 2 * 4);
        assert_eq!(traversal::diameter(&t.graph().view()), 2 + 3);
    }

    #[test]
    fn ring_structure() {
        let t = ring(6, 1.0);
        assert_eq!(t.graph().edge_count(), 6);
        assert_eq!(traversal::diameter(&t.graph().view()), 3);
        for n in t.graph().nodes() {
            assert_eq!(t.graph().degree(n), 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn ring_too_small_panics() {
        let _ = ring(2, 1.0);
    }
}
