//! Executes scenarios and aggregates results.
//!
//! Every solver runs through the unified [`RecoverySolver`] trait: the
//! runner iterates the scenario's `Vec<SolverSpec>`, builds each spec
//! once, and gives every run a fresh
//! [`SolveContext`](netrec_core::solver::SolveContext) carrying the
//! scenario's oracle override — there is no per-algorithm dispatch left
//! here, so an eighth algorithm is a new `SolverSpec` variant, not a new
//! `match` arm.
//!
//! Runs within a scenario are independent (each builds its own problem
//! from `seed + run` and owns its oracle instance), so [`run_scenario`]
//! fans them out across scoped worker threads and merges the
//! measurements back in run order — results are bit-identical to a
//! serial execution except for the `time_ms` wall-clock samples, which
//! concurrent solves bias **upward** (core and memory-bandwidth
//! contention). When reproducing the paper's timing figures, force the
//! serial path with `Scenario::threads = Some(1)` so `time_ms` stays
//! comparable to serially collected baselines.

use crate::scenario::Scenario;
use crate::stats::{summarize, FigureTable, SeriesPoint};
use netrec_core::solver::{ProgressEvent, RecoverySolver, SolveContext};
use netrec_core::{OracleStats, RecoveryProblem};
use netrec_topology::demand::generate_demands;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Raw per-run measurements of one scenario.
#[derive(Debug, Clone, Default)]
pub struct ScenarioResult {
    /// metric → solver → samples over runs.
    pub samples: BTreeMap<String, BTreeMap<String, Vec<f64>>>,
    /// Runs that failed, per solver: the display string of each run's
    /// [`RecoveryError`](netrec_core::RecoveryError), in run order, so
    /// infeasible instances stay distinguishable from solver bugs in
    /// reports.
    pub failures: BTreeMap<String, Vec<String>>,
}

impl ScenarioResult {
    fn record(&mut self, metric: &str, solver: &str, value: f64) {
        self.samples
            .entry(metric.to_string())
            .or_default()
            .entry(solver.to_string())
            .or_default()
            .push(value);
    }

    fn record_failure(&mut self, solver: &str, cause: String) {
        self.failures
            .entry(solver.to_string())
            .or_default()
            .push(cause);
    }

    /// Total failed runs across all solvers.
    pub fn failure_count(&self) -> usize {
        self.failures.values().map(Vec::len).sum()
    }
}

/// Builds the [`RecoveryProblem`] of one run of a scenario.
pub(crate) fn build_problem(scenario: &Scenario, run: u64) -> RecoveryProblem {
    let seed = scenario.seed.wrapping_add(run);
    let topo = scenario.topology.build(seed);
    let demands = generate_demands(&topo, &scenario.demand, seed ^ 0x9e3779b97f4a7c15);
    let disruption = scenario.disruption.apply(&topo, seed ^ 0x3243f6a8885a308d);
    let mut p = RecoveryProblem::new(topo.graph().clone());
    for (s, t, d) in demands {
        p.add_demand(s, t, d).expect("generated demands are valid");
    }
    for (i, &b) in disruption.broken_nodes.iter().enumerate() {
        if b {
            p.break_node(p.graph().node(i), 1.0)
                .expect("valid node index");
        }
    }
    for (i, &b) in disruption.broken_edges.iter().enumerate() {
        if b {
            p.break_edge(netrec_graph::EdgeId::new(i), 1.0)
                .expect("valid edge index");
        }
    }
    p
}

/// Everything one run contributes, merged into the scenario result in
/// run order so parallel execution stays deterministic.
struct RunOutput {
    samples: Vec<(&'static str, String, f64)>,
    failures: Vec<(String, String)>,
}

/// Executes every solver on one run's problem instance.
fn execute_run(scenario: &Scenario, solvers: &[Box<dyn RecoverySolver>], run: u64) -> RunOutput {
    let problem = build_problem(scenario, run);
    let mut out = RunOutput {
        samples: Vec::new(),
        failures: Vec::new(),
    };
    // The ALL value also serves as the destruction size reference.
    for solver in solvers {
        let name = solver.name().to_string();
        // Oracle-aware solvers snapshot their counters as a progress
        // event; the per-run report surfaces them as metrics.
        let mut oracle_stats: Option<OracleStats> = None;
        let outcome = {
            let mut ctx = SolveContext::new();
            if let Some(oracle) = scenario.oracle {
                ctx = ctx.with_oracle(oracle);
            }
            let mut ctx = ctx.with_progress(|event| {
                if let ProgressEvent::OracleSnapshot(stats) = event {
                    oracle_stats = Some(*stats);
                }
            });
            let started = Instant::now();
            (solver.solve(&problem, &mut ctx), started.elapsed())
        };
        match outcome {
            (Ok(plan), elapsed) => {
                out.samples.push((
                    "edge_repairs",
                    name.clone(),
                    plan.repaired_edges.len() as f64,
                ));
                out.samples.push((
                    "node_repairs",
                    name.clone(),
                    plan.repaired_nodes.len() as f64,
                ));
                out.samples
                    .push(("total_repairs", name.clone(), plan.total_repairs() as f64));
                out.samples
                    .push(("time_ms", name.clone(), elapsed.as_secs_f64() * 1e3));
                if let Some(stats) = oracle_stats {
                    out.samples
                        .push(("oracle_queries", name.clone(), stats.queries() as f64));
                    out.samples
                        .push(("oracle_lp_solves", name.clone(), stats.lp_solves as f64));
                    out.samples
                        .push(("oracle_cache_hits", name.clone(), stats.cache_hits as f64));
                    out.samples.push((
                        "oracle_warm_starts",
                        name.clone(),
                        stats.warm_start_hits as f64,
                    ));
                }
                // Measurement stays exact regardless of the solvers'
                // oracle, so ablations compare like with like.
                match plan.satisfied_fraction(&problem) {
                    Ok(frac) => out.samples.push(("satisfied_pct", name, frac * 100.0)),
                    Err(e) => out.failures.push((name, e.to_string())),
                }
            }
            (Err(e), _) => out.failures.push((name, e.to_string())),
        }
    }
    out
}

/// Runs every solver of `scenario` over its configured runs and collects
/// the paper's metrics: `edge_repairs`, `node_repairs`, `total_repairs`,
/// `satisfied_pct`, and `time_ms` — plus, for oracle-aware solvers, the
/// per-run oracle counters `oracle_queries`, `oracle_lp_solves`,
/// `oracle_cache_hits`, and `oracle_warm_starts`.
///
/// Independent runs execute concurrently on up to
/// [`Scenario::threads`] workers (default: one per available core).
/// Runs whose instance is infeasible even fully repaired (possible under
/// aggressive disruptions) are recorded in
/// [`ScenarioResult::failures`] with their error cause and skipped.
pub fn run_scenario(scenario: &Scenario) -> ScenarioResult {
    let runs = scenario.runs;
    // Build each spec once; the trait objects are Sync and shared by all
    // workers.
    let solvers: Vec<Box<dyn RecoverySolver>> =
        scenario.solvers.iter().map(|spec| spec.build()).collect();
    let workers = scenario
        .threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, runs.max(1));

    let mut outputs: Vec<Option<RunOutput>> = Vec::with_capacity(runs);
    outputs.resize_with(runs, || None);

    if workers <= 1 {
        for (run, slot) in outputs.iter_mut().enumerate() {
            *slot = Some(execute_run(scenario, &solvers, run as u64));
        }
    } else {
        // Work-stealing over the run indices with scoped threads; each
        // worker returns (run, output) pairs that are merged afterwards.
        let next = AtomicUsize::new(0);
        let solvers = &solvers;
        let collected = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let run = next.fetch_add(1, Ordering::Relaxed);
                            if run >= runs {
                                break;
                            }
                            local.push((run, execute_run(scenario, solvers, run as u64)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("scenario worker panicked"))
                .collect::<Vec<_>>()
        });
        for (run, output) in collected {
            outputs[run] = Some(output);
        }
    }

    let mut result = ScenarioResult::default();
    for output in outputs.into_iter().flatten() {
        for (metric, solver, value) in output.samples {
            result.record(metric, &solver, value);
        }
        for (solver, cause) in output.failures {
            result.record_failure(&solver, cause);
        }
    }
    result
}

/// A figure definition: a labelled sweep of scenarios.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure id (`fig3` … `fig9`).
    pub id: String,
    /// Human-readable description.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// The sweep.
    pub scenarios: Vec<Scenario>,
}

/// Runs a whole figure sweep into a [`FigureTable`].
pub fn run_figure(figure: &Figure) -> FigureTable {
    let mut points = Vec::new();
    for scenario in &figure.scenarios {
        let result = run_scenario(scenario);
        for (metric, by_alg) in &result.samples {
            for (alg, samples) in by_alg {
                points.push(SeriesPoint {
                    x: scenario.x,
                    algorithm: alg.clone(),
                    metric: metric.clone(),
                    value: summarize(samples),
                });
            }
        }
    }
    FigureTable {
        figure: figure.id.clone(),
        title: figure.title.clone(),
        x_label: figure.x_label.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TopologySpec;
    use netrec_core::solver::SolverSpec;
    use netrec_core::RecoveryError;
    use netrec_disrupt::DisruptionModel;
    use netrec_topology::demand::DemandSpec;

    fn tiny_scenario(solvers: Vec<SolverSpec>) -> Scenario {
        Scenario::new(
            "tiny",
            1.0,
            TopologySpec::BellCanada,
            DemandSpec::new(2, 10.0),
            DisruptionModel::Explicit {
                nodes: vec![0, 1, 2],
                edges: vec![0, 1, 2, 3],
            },
            solvers,
            2,
            11,
        )
    }

    #[test]
    fn build_problem_is_deterministic() {
        let s = tiny_scenario(vec![SolverSpec::all()]);
        let a = build_problem(&s, 0);
        let b = build_problem(&s, 0);
        assert_eq!(a.demand_pairs(), b.demand_pairs());
        assert_eq!(a.broken_edge_mask(), b.broken_edge_mask());
        let c = build_problem(&s, 1);
        // Different run ⇒ different demands (same topology).
        assert!(
            a.demand_pairs() != c.demand_pairs() || a.broken_node_mask() != c.broken_node_mask()
        );
    }

    #[test]
    fn run_scenario_collects_all_metrics() {
        let s = tiny_scenario(vec![SolverSpec::all(), SolverSpec::srt()]);
        let r = run_scenario(&s);
        for metric in [
            "edge_repairs",
            "node_repairs",
            "total_repairs",
            "satisfied_pct",
            "time_ms",
        ] {
            let by_alg = r
                .samples
                .get(metric)
                .unwrap_or_else(|| panic!("missing {metric}"));
            assert_eq!(by_alg["ALL"].len(), 2);
            assert_eq!(by_alg["SRT"].len(), 2);
        }
        assert!(r.failures.is_empty());
        assert_eq!(r.failure_count(), 0);
    }

    #[test]
    fn all_counts_match_disruption() {
        let s = tiny_scenario(vec![SolverSpec::all()]);
        let r = run_scenario(&s);
        let totals = &r.samples["total_repairs"]["ALL"];
        assert!(totals.iter().all(|&t| t == 7.0));
    }

    #[test]
    fn parallel_and_serial_runs_agree() {
        let mut s = tiny_scenario(vec![
            SolverSpec::all(),
            SolverSpec::srt(),
            SolverSpec::isp(),
        ]);
        s.runs = 4;
        let serial = run_scenario(&s.clone().with_threads(1));
        let parallel = run_scenario(&s.with_threads(4));
        assert_eq!(serial.failures, parallel.failures);
        for (metric, by_alg) in &serial.samples {
            if metric == "time_ms" {
                continue; // wall clock is the one nondeterministic metric
            }
            assert_eq!(Some(by_alg), parallel.samples.get(metric), "{metric}");
        }
    }

    #[test]
    fn scenario_oracle_is_threaded_into_solvers() {
        let mut s = tiny_scenario(vec![SolverSpec::isp(), SolverSpec::grd_nc()]);
        s.oracle = Some(netrec_core::OracleSpec::CachedExact);
        let r = run_scenario(&s);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        // ISP and GRD-NC guarantee feasibility, so a correctly threaded
        // oracle must keep satisfaction at 100%.
        for alg in ["ISP", "GRD-NC"] {
            for &pct in &r.samples["satisfied_pct"][alg] {
                assert!((pct - 100.0).abs() < 1e-6, "{alg}: {pct}");
            }
        }
    }

    /// Satellite: the per-run report carries the oracle counters of every
    /// oracle-aware solver.
    #[test]
    fn oracle_counters_land_in_the_per_run_report() {
        let mut s = tiny_scenario(vec![SolverSpec::isp(), SolverSpec::srt()]);
        s.oracle = Some(netrec_core::OracleSpec::Incremental);
        let r = run_scenario(&s);
        for metric in [
            "oracle_queries",
            "oracle_lp_solves",
            "oracle_cache_hits",
            "oracle_warm_starts",
        ] {
            let by_alg = r
                .samples
                .get(metric)
                .unwrap_or_else(|| panic!("missing {metric}"));
            assert_eq!(by_alg["ISP"].len(), 2, "{metric}");
            // SRT never enters the oracle layer and must not fake counts.
            assert!(!by_alg.contains_key("SRT"), "{metric}");
        }
        let queries = &r.samples["oracle_queries"]["ISP"];
        assert!(queries.iter().all(|&q| q > 0.0), "{queries:?}");
    }

    #[test]
    fn failures_record_the_error_cause() {
        // Demand far beyond the fully repaired capacity: every run is
        // infeasible, and the cause must say so.
        let mut s = tiny_scenario(vec![SolverSpec::isp()]);
        s.demand = DemandSpec::new(2, 1e9);
        let r = run_scenario(&s);
        let causes = r.failures.get("ISP").expect("ISP runs must fail");
        assert_eq!(causes.len(), 2);
        for cause in causes {
            assert_eq!(
                cause,
                &RecoveryError::InfeasibleEvenIfAllRepaired.to_string()
            );
        }
        assert_eq!(r.failure_count(), 2);
    }

    /// Acceptance criterion: `--oracle approx` produces only feasible
    /// plans on the fig7 scenarios (conservativeness end to end).
    #[test]
    fn approx_oracle_keeps_fig7_plans_feasible() {
        for scenario in crate::figures::fig7(crate::figures::Scale::Smoke).scenarios {
            let mut scenario =
                scenario.with_oracle(netrec_core::OracleSpec::Approx { epsilon: 0.05 });
            scenario.solvers = vec![SolverSpec::isp()];
            scenario.runs = 2;
            let solver = SolverSpec::isp().build();
            for run in 0..scenario.runs {
                let problem = build_problem(&scenario, run as u64);
                let mut ctx = SolveContext::new().with_oracle(scenario.oracle.unwrap());
                match solver.solve(&problem, &mut ctx) {
                    Ok(plan) => {
                        assert!(
                            plan.verify_routable(&problem).unwrap(),
                            "approx-oracle ISP plan infeasible on {} run {run}",
                            scenario.label
                        );
                    }
                    Err(RecoveryError::InfeasibleEvenIfAllRepaired) => {
                        // Must genuinely be infeasible on the full graph.
                        let demands = problem.demands();
                        assert!(
                            netrec_lp::mcf::routability(&problem.full_view(), &demands)
                                .unwrap()
                                .is_none(),
                            "{} run {run}: spurious infeasibility",
                            scenario.label
                        );
                    }
                    Err(e) => panic!("{} run {run}: {e}", scenario.label),
                }
            }
        }
    }

    #[test]
    fn run_figure_aggregates_points() {
        let fig = Figure {
            id: "t".into(),
            title: "t".into(),
            x_label: "x".into(),
            scenarios: vec![tiny_scenario(vec![SolverSpec::all()])],
        };
        let table = run_figure(&fig);
        assert!(!table.points.is_empty());
        assert_eq!(table.series("ALL", "total_repairs"), vec![(1.0, 7.0)]);
    }
}
