//! Executes scenarios and aggregates results.
//!
//! Every solver runs through the unified [`RecoverySolver`] trait: the
//! runner iterates the scenario's `Vec<SolverSpec>`, builds each spec
//! once, and gives every run a fresh
//! [`SolveContext`](netrec_core::solver::SolveContext) carrying the
//! scenario's oracle override — there is no per-algorithm dispatch left
//! here, so an eighth algorithm is a new `SolverSpec` variant, not a new
//! `match` arm.
//!
//! Runs within a scenario are independent (each builds its own problem
//! from `seed + run` and owns its oracle instance), so [`run_scenario`]
//! fans them out across scoped worker threads and merges the
//! measurements back in run order — results are bit-identical to a
//! serial execution except for the `time_ms` wall-clock samples, which
//! concurrent solves bias **upward** (core and memory-bandwidth
//! contention). When reproducing the paper's timing figures, force the
//! serial path with `Scenario::threads = Some(1)` so `time_ms` stays
//! comparable to serially collected baselines.

use crate::scenario::Scenario;
use crate::stats::{summarize, FailurePoint, FigureTable, SeriesPoint};
use netrec_core::solver::{ProgressEvent, RecoverySolver, SolveContext};
use netrec_core::{OracleStats, RecoveryProblem};
use netrec_topology::demand::generate_demands;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Raw per-run measurements of one scenario.
#[derive(Debug, Clone, Default)]
pub struct ScenarioResult {
    /// metric → solver → samples over runs.
    pub samples: BTreeMap<String, BTreeMap<String, Vec<f64>>>,
    /// Runs that failed, per solver: the display string of each run's
    /// [`RecoveryError`](netrec_core::RecoveryError), in run order, so
    /// infeasible instances stay distinguishable from solver bugs in
    /// reports.
    pub failures: BTreeMap<String, Vec<String>>,
}

impl ScenarioResult {
    fn record(&mut self, metric: &str, solver: &str, value: f64) {
        self.samples
            .entry(metric.to_string())
            .or_default()
            .entry(solver.to_string())
            .or_default()
            .push(value);
    }

    fn record_failure(&mut self, solver: &str, cause: String) {
        self.failures
            .entry(solver.to_string())
            .or_default()
            .push(cause);
    }

    /// Total failed runs across all solvers.
    pub fn failure_count(&self) -> usize {
        self.failures.values().map(Vec::len).sum()
    }

    /// Whether any run was stopped by the [`RunLimits`] cancellation
    /// flag. Such a result reflects the stop request, not the scenario —
    /// the campaign executor must treat the scenario as *not completed*
    /// (in particular: never journal it, so a resume re-runs it).
    pub fn was_cancelled(&self) -> bool {
        let cancelled = netrec_core::RecoveryError::Cancelled.to_string();
        self.failures
            .values()
            .flatten()
            .any(|cause| cause == &cancelled)
    }
}

/// Execution limits the campaign executor threads into every run of a
/// scenario: an absolute wall-clock deadline shared by the whole
/// scenario and a cancellation flag shared by the whole campaign. Both
/// reach the solvers through their run's
/// [`SolveContext`](netrec_core::solver::SolveContext), so an exhausted
/// budget surfaces as a per-run `DeadlineExceeded` failure instead of a
/// hung shard.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunLimits<'a> {
    /// Absolute deadline for every run of the scenario (`None` = no
    /// budget).
    pub deadline: Option<Instant>,
    /// Campaign-wide cancellation flag (`None` = not cancellable).
    pub cancel: Option<&'a AtomicBool>,
}

impl<'a> RunLimits<'a> {
    fn apply(&self, mut ctx: SolveContext<'a>) -> SolveContext<'a> {
        if let Some(deadline) = self.deadline {
            ctx = ctx.with_deadline_at(deadline);
        }
        if let Some(flag) = self.cancel {
            ctx = ctx.with_cancel_flag(flag);
        }
        ctx
    }
}

/// Builds the [`RecoveryProblem`] of one run of a scenario.
///
/// # Errors
///
/// Topology build failures (bad generator parameters, unreadable GML
/// files) as display strings.
pub(crate) fn build_problem(scenario: &Scenario, run: u64) -> Result<RecoveryProblem, String> {
    let seed = scenario.seed.wrapping_add(run);
    let topo = scenario.topology.try_build(seed)?;
    let demands = generate_demands(&topo, &scenario.demand, seed ^ 0x9e3779b97f4a7c15);
    let disruption = scenario.disruption.apply(&topo, seed ^ 0x3243f6a8885a308d);
    let mut p = RecoveryProblem::new(topo.graph().clone());
    for (s, t, d) in demands {
        p.add_demand(s, t, d).expect("generated demands are valid");
    }
    for (i, &b) in disruption.broken_nodes.iter().enumerate() {
        if b {
            p.break_node(p.graph().node(i), 1.0)
                .expect("valid node index");
        }
    }
    for (i, &b) in disruption.broken_edges.iter().enumerate() {
        if b {
            p.break_edge(netrec_graph::EdgeId::new(i), 1.0)
                .expect("valid edge index");
        }
    }
    Ok(p)
}

/// Everything one run contributes, merged into the scenario result in
/// run order so parallel execution stays deterministic.
struct RunOutput {
    samples: Vec<(&'static str, String, f64)>,
    failures: Vec<(String, String)>,
}

/// Executes every solver on one run's problem instance.
fn execute_run(
    scenario: &Scenario,
    solvers: &[Box<dyn RecoverySolver>],
    run: u64,
    limits: RunLimits<'_>,
) -> RunOutput {
    let mut out = RunOutput {
        samples: Vec::new(),
        failures: Vec::new(),
    };
    let problem = match build_problem(scenario, run) {
        Ok(problem) => problem,
        Err(cause) => {
            // A topology that cannot be built fails every solver of the
            // run identically — the cause stays visible per solver in
            // the report instead of panicking the worker thread.
            for solver in solvers {
                out.failures
                    .push((solver.name().to_string(), format!("topology: {cause}")));
            }
            return out;
        }
    };
    // The ALL value also serves as the destruction size reference.
    for solver in solvers {
        let name = solver.name().to_string();
        // Oracle-aware solvers snapshot their counters as a progress
        // event; the per-run report surfaces them as metrics.
        let mut oracle_stats: Option<OracleStats> = None;
        let outcome = {
            let mut ctx = SolveContext::new();
            if let Some(oracle) = scenario.oracle.clone() {
                ctx = ctx.with_oracle(oracle);
            }
            let ctx = limits.apply(ctx);
            let mut ctx = ctx.with_progress(|event| {
                if let ProgressEvent::OracleSnapshot(stats) = event {
                    oracle_stats = Some(*stats);
                }
            });
            let started = Instant::now();
            (solver.solve(&problem, &mut ctx), started.elapsed())
        };
        match outcome {
            (Ok(plan), elapsed) => {
                out.samples.push((
                    "edge_repairs",
                    name.clone(),
                    plan.repaired_edges.len() as f64,
                ));
                out.samples.push((
                    "node_repairs",
                    name.clone(),
                    plan.repaired_nodes.len() as f64,
                ));
                out.samples
                    .push(("total_repairs", name.clone(), plan.total_repairs() as f64));
                out.samples
                    .push(("time_ms", name.clone(), elapsed.as_secs_f64() * 1e3));
                if let Some(stats) = oracle_stats {
                    out.samples
                        .push(("oracle_queries", name.clone(), stats.queries() as f64));
                    out.samples
                        .push(("oracle_lp_solves", name.clone(), stats.lp_solves as f64));
                    out.samples
                        .push(("oracle_cache_hits", name.clone(), stats.cache_hits as f64));
                    out.samples.push((
                        "oracle_warm_starts",
                        name.clone(),
                        stats.warm_start_hits as f64,
                    ));
                }
                // Measurement stays exact regardless of the solvers'
                // oracle, so ablations compare like with like.
                match plan.satisfied_fraction(&problem) {
                    Ok(frac) => out.samples.push(("satisfied_pct", name, frac * 100.0)),
                    Err(e) => out.failures.push((name, e.to_string())),
                }
            }
            (Err(e), _) => out.failures.push((name, e.to_string())),
        }
    }
    out
}

/// Runs every solver of `scenario` over its configured runs and collects
/// the paper's metrics: `edge_repairs`, `node_repairs`, `total_repairs`,
/// `satisfied_pct`, and `time_ms` — plus, for oracle-aware solvers, the
/// per-run oracle counters `oracle_queries`, `oracle_lp_solves`,
/// `oracle_cache_hits`, and `oracle_warm_starts`.
///
/// Independent runs execute concurrently on up to
/// [`Scenario::threads`] workers (default: one per available core).
/// Runs whose instance is infeasible even fully repaired (possible under
/// aggressive disruptions) are recorded in
/// [`ScenarioResult::failures`] with their error cause and skipped.
pub fn run_scenario(scenario: &Scenario) -> ScenarioResult {
    run_scenario_bounded(scenario, RunLimits::default())
}

/// [`run_scenario`] under campaign execution limits: every run's
/// [`SolveContext`](netrec_core::solver::SolveContext) carries the
/// scenario-wide deadline and the campaign-wide cancellation flag, so a
/// scenario over budget degrades into per-run `DeadlineExceeded` /
/// `Cancelled` failure records rather than blocking its shard.
pub fn run_scenario_bounded(scenario: &Scenario, limits: RunLimits<'_>) -> ScenarioResult {
    let runs = scenario.runs;
    // Build each spec once; the trait objects are Sync and shared by all
    // workers.
    let solvers: Vec<Box<dyn RecoverySolver>> =
        scenario.solvers.iter().map(|spec| spec.build()).collect();
    let workers = scenario
        .threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, runs.max(1));

    let mut outputs: Vec<Option<RunOutput>> = Vec::with_capacity(runs);
    outputs.resize_with(runs, || None);

    if workers <= 1 {
        for (run, slot) in outputs.iter_mut().enumerate() {
            *slot = Some(execute_run(scenario, &solvers, run as u64, limits));
        }
    } else {
        // Work-stealing over the run indices with scoped threads; each
        // worker returns (run, output) pairs that are merged afterwards.
        let next = AtomicUsize::new(0);
        let solvers = &solvers;
        let collected = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let run = next.fetch_add(1, Ordering::Relaxed);
                            if run >= runs {
                                break;
                            }
                            local.push((run, execute_run(scenario, solvers, run as u64, limits)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("scenario worker panicked"))
                .collect::<Vec<_>>()
        });
        for (run, output) in collected {
            outputs[run] = Some(output);
        }
    }

    let mut result = ScenarioResult::default();
    for output in outputs.into_iter().flatten() {
        for (metric, solver, value) in output.samples {
            result.record(metric, &solver, value);
        }
        for (solver, cause) in output.failures {
            result.record_failure(&solver, cause);
        }
    }
    result
}

/// A figure definition: a labelled sweep of scenarios.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure id (`fig3` … `fig9`).
    pub id: String,
    /// Human-readable description.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// The sweep.
    pub scenarios: Vec<Scenario>,
}

/// Runs a whole figure sweep into a [`FigureTable`]. Failed runs are
/// carried through as [`FailurePoint`]s — historically they were
/// silently dropped here, so infeasible sweeps looked like thin but
/// healthy data in the CSV/JSON exports.
pub fn run_figure(figure: &Figure) -> FigureTable {
    let mut points = Vec::new();
    let mut failures = Vec::new();
    for scenario in &figure.scenarios {
        let result = run_scenario(scenario);
        for (metric, by_alg) in &result.samples {
            for (alg, samples) in by_alg {
                points.push(SeriesPoint {
                    x: scenario.x,
                    algorithm: alg.clone(),
                    metric: metric.clone(),
                    value: summarize(samples),
                });
            }
        }
        for (alg, causes) in &result.failures {
            for cause in causes {
                failures.push(FailurePoint {
                    x: scenario.x,
                    algorithm: alg.clone(),
                    cause: cause.clone(),
                });
            }
        }
    }
    FigureTable {
        figure: figure.id.clone(),
        title: figure.title.clone(),
        x_label: figure.x_label.clone(),
        points,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TopologySpec;
    use netrec_core::solver::SolverSpec;
    use netrec_core::RecoveryError;
    use netrec_disrupt::DisruptionModel;
    use netrec_topology::demand::DemandSpec;

    fn tiny_scenario(solvers: Vec<SolverSpec>) -> Scenario {
        Scenario::new(
            "tiny",
            1.0,
            TopologySpec::BellCanada,
            DemandSpec::new(2, 10.0),
            DisruptionModel::Explicit {
                nodes: vec![0, 1, 2],
                edges: vec![0, 1, 2, 3],
            },
            solvers,
            2,
            11,
        )
    }

    #[test]
    fn build_problem_is_deterministic() {
        let s = tiny_scenario(vec![SolverSpec::all()]);
        let a = build_problem(&s, 0).unwrap();
        let b = build_problem(&s, 0).unwrap();
        assert_eq!(a.demand_pairs(), b.demand_pairs());
        assert_eq!(a.broken_edge_mask(), b.broken_edge_mask());
        let c = build_problem(&s, 1).unwrap();
        // Different run ⇒ different demands (same topology).
        assert!(
            a.demand_pairs() != c.demand_pairs() || a.broken_node_mask() != c.broken_node_mask()
        );
    }

    #[test]
    fn run_scenario_collects_all_metrics() {
        let s = tiny_scenario(vec![SolverSpec::all(), SolverSpec::srt()]);
        let r = run_scenario(&s);
        for metric in [
            "edge_repairs",
            "node_repairs",
            "total_repairs",
            "satisfied_pct",
            "time_ms",
        ] {
            let by_alg = r
                .samples
                .get(metric)
                .unwrap_or_else(|| panic!("missing {metric}"));
            assert_eq!(by_alg["ALL"].len(), 2);
            assert_eq!(by_alg["SRT"].len(), 2);
        }
        assert!(r.failures.is_empty());
        assert_eq!(r.failure_count(), 0);
    }

    #[test]
    fn all_counts_match_disruption() {
        let s = tiny_scenario(vec![SolverSpec::all()]);
        let r = run_scenario(&s);
        let totals = &r.samples["total_repairs"]["ALL"];
        assert!(totals.iter().all(|&t| t == 7.0));
    }

    #[test]
    fn parallel_and_serial_runs_agree() {
        let mut s = tiny_scenario(vec![
            SolverSpec::all(),
            SolverSpec::srt(),
            SolverSpec::isp(),
        ]);
        s.runs = 4;
        let serial = run_scenario(&s.clone().with_threads(1));
        let parallel = run_scenario(&s.with_threads(4));
        assert_eq!(serial.failures, parallel.failures);
        for (metric, by_alg) in &serial.samples {
            if metric == "time_ms" {
                continue; // wall clock is the one nondeterministic metric
            }
            assert_eq!(Some(by_alg), parallel.samples.get(metric), "{metric}");
        }
    }

    #[test]
    fn scenario_oracle_is_threaded_into_solvers() {
        let mut s = tiny_scenario(vec![SolverSpec::isp(), SolverSpec::grd_nc()]);
        s.oracle = Some(netrec_core::OracleSpec::CachedExact);
        let r = run_scenario(&s);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        // ISP and GRD-NC guarantee feasibility, so a correctly threaded
        // oracle must keep satisfaction at 100%.
        for alg in ["ISP", "GRD-NC"] {
            for &pct in &r.samples["satisfied_pct"][alg] {
                assert!((pct - 100.0).abs() < 1e-6, "{alg}: {pct}");
            }
        }
    }

    /// Satellite: the per-run report carries the oracle counters of every
    /// oracle-aware solver.
    #[test]
    fn oracle_counters_land_in_the_per_run_report() {
        let mut s = tiny_scenario(vec![SolverSpec::isp(), SolverSpec::srt()]);
        s.oracle = Some(netrec_core::OracleSpec::Incremental);
        let r = run_scenario(&s);
        for metric in [
            "oracle_queries",
            "oracle_lp_solves",
            "oracle_cache_hits",
            "oracle_warm_starts",
        ] {
            let by_alg = r
                .samples
                .get(metric)
                .unwrap_or_else(|| panic!("missing {metric}"));
            assert_eq!(by_alg["ISP"].len(), 2, "{metric}");
            // SRT never enters the oracle layer and must not fake counts.
            assert!(!by_alg.contains_key("SRT"), "{metric}");
        }
        let queries = &r.samples["oracle_queries"]["ISP"];
        assert!(queries.iter().all(|&q| q > 0.0), "{queries:?}");
    }

    #[test]
    fn failures_record_the_error_cause() {
        // Demand far beyond the fully repaired capacity: every run is
        // infeasible, and the cause must say so.
        let mut s = tiny_scenario(vec![SolverSpec::isp()]);
        s.demand = DemandSpec::new(2, 1e9);
        let r = run_scenario(&s);
        let causes = r.failures.get("ISP").expect("ISP runs must fail");
        assert_eq!(causes.len(), 2);
        for cause in causes {
            assert_eq!(
                cause,
                &RecoveryError::InfeasibleEvenIfAllRepaired.to_string()
            );
        }
        assert_eq!(r.failure_count(), 2);
    }

    /// Acceptance criterion: `--oracle approx` produces only feasible
    /// plans on the fig7 scenarios (conservativeness end to end).
    #[test]
    fn approx_oracle_keeps_fig7_plans_feasible() {
        for scenario in crate::figures::fig7(crate::figures::Scale::Smoke).scenarios {
            let mut scenario =
                scenario.with_oracle(netrec_core::OracleSpec::Approx { epsilon: 0.05 });
            scenario.solvers = vec![SolverSpec::isp()];
            scenario.runs = 2;
            let solver = SolverSpec::isp().build();
            for run in 0..scenario.runs {
                let problem = build_problem(&scenario, run as u64).unwrap();
                let mut ctx = SolveContext::new().with_oracle(scenario.oracle.clone().unwrap());
                match solver.solve(&problem, &mut ctx) {
                    Ok(plan) => {
                        assert!(
                            plan.verify_routable(&problem).unwrap(),
                            "approx-oracle ISP plan infeasible on {} run {run}",
                            scenario.label
                        );
                    }
                    Err(RecoveryError::InfeasibleEvenIfAllRepaired) => {
                        // Must genuinely be infeasible on the full graph.
                        let demands = problem.demands();
                        assert!(
                            netrec_lp::mcf::routability(&problem.full_view(), &demands)
                                .unwrap()
                                .is_none(),
                            "{} run {run}: spurious infeasibility",
                            scenario.label
                        );
                    }
                    Err(e) => panic!("{} run {run}: {e}", scenario.label),
                }
            }
        }
    }

    #[test]
    fn run_figure_aggregates_points() {
        let fig = Figure {
            id: "t".into(),
            title: "t".into(),
            x_label: "x".into(),
            scenarios: vec![tiny_scenario(vec![SolverSpec::all()])],
        };
        let table = run_figure(&fig);
        assert!(!table.points.is_empty());
        assert!(table.failures.is_empty());
        assert_eq!(table.series("ALL", "total_repairs"), vec![(1.0, 7.0)]);
    }

    /// Satellite bugfix: failed runs reach the figure table instead of
    /// being silently dropped between the runner and the exporters.
    #[test]
    fn run_figure_carries_failures() {
        let mut s = tiny_scenario(vec![SolverSpec::isp()]);
        s.demand = DemandSpec::new(2, 1e9); // every run infeasible
        let fig = Figure {
            id: "t".into(),
            title: "t".into(),
            x_label: "x".into(),
            scenarios: vec![s],
        };
        let table = run_figure(&fig);
        assert_eq!(table.failures.len(), 2);
        for f in &table.failures {
            assert_eq!(f.algorithm, "ISP");
            assert_eq!(f.x, 1.0);
            assert_eq!(
                f.cause,
                RecoveryError::InfeasibleEvenIfAllRepaired.to_string()
            );
        }
    }

    /// Tentpole plumbing: a zero deadline fails every run with
    /// `DeadlineExceeded`, and a raised cancel flag with `Cancelled`.
    #[test]
    fn run_limits_reach_every_run() {
        let s = tiny_scenario(vec![SolverSpec::isp()]);
        let r = run_scenario_bounded(
            &s,
            RunLimits {
                deadline: Some(Instant::now()),
                cancel: None,
            },
        );
        assert!(r.samples.is_empty());
        let causes = &r.failures["ISP"];
        assert_eq!(causes.len(), 2);
        assert!(
            causes
                .iter()
                .all(|c| c == &RecoveryError::DeadlineExceeded.to_string()),
            "{causes:?}"
        );

        let flag = AtomicBool::new(true);
        let r = run_scenario_bounded(
            &s,
            RunLimits {
                deadline: None,
                cancel: Some(&flag),
            },
        );
        assert!(r.failures["ISP"]
            .iter()
            .all(|c| c == &RecoveryError::Cancelled.to_string()));
    }

    /// An unbuildable topology becomes per-solver failures, not a panic.
    #[test]
    fn unbuildable_topology_is_recorded_per_solver() {
        let mut s = tiny_scenario(vec![SolverSpec::srt(), SolverSpec::all()]);
        s.topology = TopologySpec::Gml {
            path: "/nonexistent/net.gml".into(),
        };
        s.disruption = DisruptionModel::Complete;
        let r = run_scenario(&s);
        for alg in ["SRT", "ALL"] {
            let causes = &r.failures[alg];
            assert_eq!(causes.len(), 2, "{alg}");
            assert!(causes[0].starts_with("topology: "), "{causes:?}");
        }
    }
}
