//! Declarative experiment scenarios.
//!
//! A [`Scenario`] names everything one figure point needs: topology,
//! demand, disruption, the solver line-up as `Vec<SolverSpec>` (each
//! spec carries its algorithm's configuration inline — the historical
//! `algorithms` list plus per-algorithm config fields collapsed into
//! it; the serde alias keeps old scenario files deserializing), the run
//! count, and the base seed.

use netrec_core::solver::SolverSpec;
use netrec_core::OracleSpec;
use netrec_disrupt::DisruptionModel;
use netrec_topology::demand::DemandSpec;
use netrec_topology::Topology;
use serde::{Deserialize, Serialize};

/// Which topology a scenario runs on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum TopologySpec {
    /// The Bell-Canada-like topology (48 nodes / 64 edges).
    BellCanada,
    /// The CAIDA-AS28717-like topology (825 nodes / 1018 edges), or a
    /// scaled-down variant.
    CaidaLike {
        /// Node count (default 825).
        nodes: usize,
        /// Edge count (default 1018).
        edges: usize,
        /// Uniform capacity.
        capacity: f64,
    },
    /// Erdős–Rényi `G(n, p)` with uniform capacity.
    ErdosRenyi {
        /// Node count.
        n: usize,
        /// Edge probability.
        p: f64,
        /// Uniform capacity.
        capacity: f64,
    },
}

impl TopologySpec {
    /// Materializes the topology (deterministic per seed).
    pub fn build(&self, seed: u64) -> Topology {
        match self {
            TopologySpec::BellCanada => netrec_topology::bell::bell_canada(),
            TopologySpec::CaidaLike {
                nodes,
                edges,
                capacity,
            } => netrec_topology::caida::caida_sized(*nodes, *edges, *capacity, seed),
            TopologySpec::ErdosRenyi { n, p, capacity } => {
                netrec_topology::random::erdos_renyi(*n, *p, *capacity, seed)
            }
        }
    }
}

/// A complete experiment scenario: one point of a figure's sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable label (e.g. `pairs=4`).
    pub label: String,
    /// The x-coordinate this scenario contributes to its figure.
    pub x: f64,
    /// Topology.
    pub topology: TopologySpec,
    /// Demand generation.
    pub demand: DemandSpec,
    /// Disruption model.
    pub disruption: DisruptionModel,
    /// Solvers to run, each carrying its configuration inline. Replaces
    /// the old `algorithms` list plus the per-algorithm `isp` / `opt` /
    /// `greedy` / `mcf` config fields. The serde alias keeps the old
    /// *field key* accepted; note that migrating pre-redesign files
    /// under real serde would additionally need a custom deserializer
    /// mapping bare `Algorithm` names (`"Isp"`, …) onto `SolverSpec`
    /// variants — with the offline serde stand-in (DESIGN.md §7) neither
    /// path is exercised yet.
    #[serde(alias = "algorithms")]
    pub solvers: Vec<SolverSpec>,
    /// Independent runs to average over (the paper uses 20).
    pub runs: usize,
    /// Base RNG seed; run `r` uses `seed + r`.
    pub seed: u64,
    /// Evaluation-oracle backend forced onto every oracle-aware solver
    /// of this scenario (ISP, GRD-NC, MCB) through the run's
    /// `SolveContext`. `None` keeps each solver's own configuration.
    /// This is the sim-level ablation axis behind the CLI's `--oracle`
    /// flag.
    pub oracle: Option<OracleSpec>,
    /// Worker threads for the independent runs (`None` = one per
    /// available core, capped at the run count; `Some(1)` forces the
    /// serial path). Concurrency inflates the `time_ms` metric through
    /// contention — use `Some(1)` when timing fidelity matters.
    pub threads: Option<usize>,
}

impl Scenario {
    /// A scenario running the given solver specs.
    #[allow(clippy::too_many_arguments)] // mirrors the experiment tuple of the paper
    pub fn new(
        label: impl Into<String>,
        x: f64,
        topology: TopologySpec,
        demand: DemandSpec,
        disruption: DisruptionModel,
        solvers: Vec<SolverSpec>,
        runs: usize,
        seed: u64,
    ) -> Self {
        Scenario {
            label: label.into(),
            x,
            topology,
            demand,
            disruption,
            solvers,
            runs,
            seed,
            oracle: None,
            threads: None,
        }
    }

    /// Returns the scenario with every oracle-aware solver forced onto
    /// the given backend.
    pub fn with_oracle(mut self, oracle: OracleSpec) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// Returns the scenario with an explicit worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_specs_build() {
        assert_eq!(TopologySpec::BellCanada.build(0).graph().node_count(), 48);
        let er = TopologySpec::ErdosRenyi {
            n: 10,
            p: 0.5,
            capacity: 1.0,
        }
        .build(1);
        assert_eq!(er.graph().node_count(), 10);
        let caida = TopologySpec::CaidaLike {
            nodes: 30,
            edges: 40,
            capacity: 10.0,
        }
        .build(2);
        assert_eq!(caida.graph().edge_count(), 40);
    }

    #[test]
    fn solver_names_match_paper() {
        assert_eq!(SolverSpec::isp().name(), "ISP");
        assert_eq!(SolverSpec::grd_com().name(), "GRD-COM");
        assert_eq!(SolverSpec::mcw().name(), "MCW");
    }

    #[test]
    fn scenario_builds_with_defaults() {
        let s = Scenario::new(
            "test",
            1.0,
            TopologySpec::BellCanada,
            DemandSpec::new(2, 10.0),
            netrec_disrupt::DisruptionModel::Complete,
            vec![SolverSpec::isp()],
            3,
            7,
        );
        assert_eq!(s.runs, 3);
        assert_eq!(s.solvers.len(), 1);
        assert_eq!(s.oracle, None);
    }
}
