//! Declarative experiment scenarios.

use netrec_core::heuristics::greedy::GreedyConfig;
use netrec_core::heuristics::mcf_relax::{McfExtreme, McfRelaxConfig};
use netrec_core::heuristics::opt::OptConfig;
use netrec_core::{IspConfig, OracleSpec};
use netrec_disrupt::DisruptionModel;
use netrec_topology::demand::DemandSpec;
use netrec_topology::Topology;
use serde::{Deserialize, Serialize};

/// Which topology a scenario runs on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum TopologySpec {
    /// The Bell-Canada-like topology (48 nodes / 64 edges).
    BellCanada,
    /// The CAIDA-AS28717-like topology (825 nodes / 1018 edges), or a
    /// scaled-down variant.
    CaidaLike {
        /// Node count (default 825).
        nodes: usize,
        /// Edge count (default 1018).
        edges: usize,
        /// Uniform capacity.
        capacity: f64,
    },
    /// Erdős–Rényi `G(n, p)` with uniform capacity.
    ErdosRenyi {
        /// Node count.
        n: usize,
        /// Edge probability.
        p: f64,
        /// Uniform capacity.
        capacity: f64,
    },
}

impl TopologySpec {
    /// Materializes the topology (deterministic per seed).
    pub fn build(&self, seed: u64) -> Topology {
        match self {
            TopologySpec::BellCanada => netrec_topology::bell::bell_canada(),
            TopologySpec::CaidaLike {
                nodes,
                edges,
                capacity,
            } => netrec_topology::caida::caida_sized(*nodes, *edges, *capacity, seed),
            TopologySpec::ErdosRenyi { n, p, capacity } => {
                netrec_topology::random::erdos_renyi(*n, *p, *capacity, seed)
            }
        }
    }
}

/// A recovery algorithm to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Iterative Split and Prune (the paper's contribution).
    Isp,
    /// The exact/budgeted MILP optimum.
    Opt,
    /// Shortest-path repair.
    Srt,
    /// Greedy Commitment.
    GrdCom,
    /// Greedy No-Commitment.
    GrdNc,
    /// Multi-commodity relaxation, best extraction.
    Mcb,
    /// Multi-commodity relaxation, worst extraction.
    Mcw,
    /// Repair everything.
    All,
}

impl Algorithm {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Isp => "ISP",
            Algorithm::Opt => "OPT",
            Algorithm::Srt => "SRT",
            Algorithm::GrdCom => "GRD-COM",
            Algorithm::GrdNc => "GRD-NC",
            Algorithm::Mcb => "MCB",
            Algorithm::Mcw => "MCW",
            Algorithm::All => "ALL",
        }
    }
}

/// A complete experiment scenario: one point of a figure's sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable label (e.g. `pairs=4`).
    pub label: String,
    /// The x-coordinate this scenario contributes to its figure.
    pub x: f64,
    /// Topology.
    pub topology: TopologySpec,
    /// Demand generation.
    pub demand: DemandSpec,
    /// Disruption model.
    pub disruption: DisruptionModel,
    /// Algorithms to run.
    pub algorithms: Vec<Algorithm>,
    /// Independent runs to average over (the paper uses 20).
    pub runs: usize,
    /// Base RNG seed; run `r` uses `seed + r`.
    pub seed: u64,
    /// ISP configuration.
    pub isp: IspConfig,
    /// OPT configuration.
    pub opt: OptConfig,
    /// Greedy configuration.
    pub greedy: GreedyConfig,
    /// MCB/MCW configuration.
    pub mcf: McfRelaxConfig,
    /// Evaluation-oracle backend forced onto every oracle-aware
    /// algorithm of this scenario (ISP, GRD-NC, MCB/MCW). `None` keeps
    /// each algorithm's own configuration. This is the sim-level ablation
    /// axis behind the CLI's `--oracle` flag.
    pub oracle: Option<OracleSpec>,
    /// Worker threads for the independent runs (`None` = one per
    /// available core, capped at the run count; `Some(1)` forces the
    /// serial path). Concurrency inflates the `time_ms` metric through
    /// contention — use `Some(1)` when timing fidelity matters.
    pub threads: Option<usize>,
}

impl Scenario {
    /// A scenario with default algorithm configurations.
    #[allow(clippy::too_many_arguments)] // mirrors the experiment tuple of the paper
    pub fn new(
        label: impl Into<String>,
        x: f64,
        topology: TopologySpec,
        demand: DemandSpec,
        disruption: DisruptionModel,
        algorithms: Vec<Algorithm>,
        runs: usize,
        seed: u64,
    ) -> Self {
        Scenario {
            label: label.into(),
            x,
            topology,
            demand,
            disruption,
            algorithms,
            runs,
            seed,
            isp: IspConfig::default(),
            opt: OptConfig::default(),
            greedy: GreedyConfig::default(),
            mcf: McfRelaxConfig::default(),
            oracle: None,
            threads: None,
        }
    }

    /// Returns the scenario with every oracle-aware algorithm forced onto
    /// the given backend.
    pub fn with_oracle(mut self, oracle: OracleSpec) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// Returns the scenario with an explicit worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

/// Helper shared by runner and tests: the extraction extreme per
/// algorithm.
pub(crate) fn mcf_extreme(alg: Algorithm) -> Option<McfExtreme> {
    match alg {
        Algorithm::Mcb => Some(McfExtreme::Best),
        Algorithm::Mcw => Some(McfExtreme::Worst),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_specs_build() {
        assert_eq!(TopologySpec::BellCanada.build(0).graph().node_count(), 48);
        let er = TopologySpec::ErdosRenyi {
            n: 10,
            p: 0.5,
            capacity: 1.0,
        }
        .build(1);
        assert_eq!(er.graph().node_count(), 10);
        let caida = TopologySpec::CaidaLike {
            nodes: 30,
            edges: 40,
            capacity: 10.0,
        }
        .build(2);
        assert_eq!(caida.graph().edge_count(), 40);
    }

    #[test]
    fn algorithm_names_match_paper() {
        assert_eq!(Algorithm::Isp.name(), "ISP");
        assert_eq!(Algorithm::GrdCom.name(), "GRD-COM");
        assert_eq!(Algorithm::Mcw.name(), "MCW");
    }

    #[test]
    fn scenario_builds_with_defaults() {
        let s = Scenario::new(
            "test",
            1.0,
            TopologySpec::BellCanada,
            DemandSpec::new(2, 10.0),
            netrec_disrupt::DisruptionModel::Complete,
            vec![Algorithm::Isp],
            3,
            7,
        );
        assert_eq!(s.runs, 3);
        assert_eq!(s.algorithms.len(), 1);
    }
}
