//! Declarative experiment scenarios.
//!
//! A [`Scenario`] names everything one figure point needs: topology,
//! demand, disruption, the solver line-up as `Vec<SolverSpec>` (each
//! spec carries its algorithm's configuration inline — the historical
//! `algorithms` list plus per-algorithm config fields collapsed into
//! it; the serde alias keeps old scenario files deserializing), the run
//! count, and the base seed.

use netrec_core::solver::SolverSpec;
use netrec_core::OracleSpec;
use netrec_disrupt::DisruptionModel;
use netrec_topology::demand::DemandSpec;
use netrec_topology::Topology;
use serde::{Deserialize, Serialize};

/// Which topology a scenario runs on.
///
/// Every generator of `netrec_topology` is reachable: the paper's three
/// evaluation topologies plus the Barabási–Albert, Waxman, grid, ring,
/// and GML-file generators, so campaign grids can sweep structurally
/// diverse networks. The canonical **string encoding**
/// ([`TopologySpec::parse`] ↔ `Display`) is the campaign-spec axis
/// format; with the offline serde stand-in it doubles as the
/// serialization format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// The Bell-Canada-like topology (48 nodes / 64 edges).
    BellCanada,
    /// The CAIDA-AS28717-like topology (825 nodes / 1018 edges), or a
    /// scaled-down variant.
    CaidaLike {
        /// Node count (default 825).
        nodes: usize,
        /// Edge count (default 1018).
        edges: usize,
        /// Uniform capacity.
        capacity: f64,
    },
    /// Erdős–Rényi `G(n, p)` with uniform capacity.
    ErdosRenyi {
        /// Node count.
        n: usize,
        /// Edge probability.
        p: f64,
        /// Uniform capacity.
        capacity: f64,
    },
    /// Barabási–Albert preferential attachment (`m` links per new node).
    BarabasiAlbert {
        /// Node count (must exceed `m`).
        n: usize,
        /// Links attached per new node (≥ 1).
        m: usize,
        /// Uniform capacity.
        capacity: f64,
    },
    /// Waxman random geometric graph.
    Waxman {
        /// Node count.
        n: usize,
        /// Waxman α (overall edge density).
        alpha: f64,
        /// Waxman β (long-edge penalty).
        beta: f64,
        /// Uniform capacity.
        capacity: f64,
    },
    /// `rows × cols` grid with unit spacing.
    Grid {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
        /// Uniform capacity.
        capacity: f64,
    },
    /// Ring of `n ≥ 3` nodes.
    Ring {
        /// Node count (≥ 3).
        n: usize,
        /// Uniform capacity.
        capacity: f64,
    },
    /// A GML file path (capacities from the file, default 20 where
    /// absent — the same default as the CLI's `--topology gml:`).
    Gml {
        /// Path to the GML file, resolved relative to the working
        /// directory at build time.
        path: String,
    },
}

/// Default capacity assigned to GML edges without one (matches the CLI).
const GML_DEFAULT_CAPACITY: f64 = 20.0;

impl TopologySpec {
    /// Materializes the topology (deterministic per seed).
    ///
    /// # Errors
    ///
    /// Generator preconditions (e.g. a ring below 3 nodes, `n ≤ m` for
    /// Barabási–Albert) and GML file problems, as display strings —
    /// campaign runs record these as scenario failures instead of
    /// panicking a worker.
    pub fn try_build(&self, seed: u64) -> Result<Topology, String> {
        match self {
            TopologySpec::BellCanada => Ok(netrec_topology::bell::bell_canada()),
            TopologySpec::CaidaLike {
                nodes,
                edges,
                capacity,
            } => Ok(netrec_topology::caida::caida_sized(
                *nodes, *edges, *capacity, seed,
            )),
            TopologySpec::ErdosRenyi { n, p, capacity } => Ok(
                netrec_topology::random::erdos_renyi(*n, *p, *capacity, seed),
            ),
            TopologySpec::BarabasiAlbert { n, m, capacity } => {
                if *m == 0 || n <= m {
                    return Err(format!(
                        "barabasi-albert needs n > m ≥ 1 (got n={n}, m={m})"
                    ));
                }
                Ok(netrec_topology::random::barabasi_albert(
                    *n, *m, *capacity, seed,
                ))
            }
            TopologySpec::Waxman {
                n,
                alpha,
                beta,
                capacity,
            } => {
                if !alpha.is_finite() || !beta.is_finite() || *alpha < 0.0 || *beta <= 0.0 {
                    return Err(format!(
                        "waxman needs finite alpha ≥ 0 and beta > 0 (got alpha={alpha}, beta={beta})"
                    ));
                }
                Ok(netrec_topology::random::waxman(
                    *n, *alpha, *beta, *capacity, seed,
                ))
            }
            TopologySpec::Grid {
                rows,
                cols,
                capacity,
            } => Ok(netrec_topology::random::grid(*rows, *cols, *capacity)),
            TopologySpec::Ring { n, capacity } => {
                if *n < 3 {
                    return Err(format!("a ring needs at least 3 nodes (got {n})"));
                }
                Ok(netrec_topology::random::ring(*n, *capacity))
            }
            TopologySpec::Gml { path } => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                netrec_topology::gml::parse(&text, GML_DEFAULT_CAPACITY)
                    .map_err(|e| format!("cannot parse {path}: {e}"))
            }
        }
    }

    /// Materializes the topology, panicking on generator/file errors
    /// (the historical infallible entry point; sweeps built in code use
    /// valid parameters by construction).
    pub fn build(&self, seed: u64) -> Topology {
        self.try_build(seed)
            .unwrap_or_else(|e| panic!("topology spec {self}: {e}"))
    }

    /// Parses the canonical string encoding:
    ///
    /// * `bell`
    /// * `caida[:nodes=N,edges=E,capacity=C]` (defaults 825/1018/44)
    /// * `er:n=N,p=P[,capacity=C]`
    /// * `ba:n=N,m=M[,capacity=C]`
    /// * `waxman:n=N[,alpha=A,beta=B,capacity=C]` (defaults 0.8/0.15)
    /// * `grid:rows=R,cols=C[,capacity=X]`
    /// * `ring:n=N[,capacity=C]`
    /// * `gml:<path>`
    ///
    /// Unlisted capacities default to 1000 (the paper's "connectivity
    /// only" setting).
    ///
    /// # Errors
    ///
    /// A message naming the offending token.
    pub fn parse(s: &str) -> Result<TopologySpec, String> {
        let s = s.trim();
        let (name, rest) = match s.split_once(':') {
            Some((n, r)) => (n.trim(), Some(r)),
            None => (s, None),
        };
        if name == "gml" {
            let path = rest.unwrap_or("").trim();
            if path.is_empty() {
                return Err("gml topology needs gml:<path>".into());
            }
            return Ok(TopologySpec::Gml { path: path.into() });
        }
        let mut options: Vec<(String, f64)> = Vec::new();
        if let Some(rest) = rest {
            for token in rest.split(',') {
                let token = token.trim();
                if token.is_empty() {
                    continue;
                }
                let (key, value) = token
                    .split_once('=')
                    .ok_or_else(|| format!("topology option `{token}` is not key=value"))?;
                let value: f64 = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("topology option `{token}` is not a number"))?;
                if !value.is_finite() {
                    return Err(format!("topology option `{token}` is not finite"));
                }
                options.push((key.trim().to_string(), value));
            }
        }
        let mut take = |key: &str| -> Option<f64> {
            let at = options.iter().position(|(k, _)| k == key)?;
            Some(options.remove(at).1)
        };
        let as_count = |key: &str, value: f64| -> Result<usize, String> {
            if value < 0.0 || value.fract() != 0.0 {
                return Err(format!(
                    "topology option {key}={value} must be a non-negative integer"
                ));
            }
            Ok(value as usize)
        };
        let spec = match name {
            "bell" => TopologySpec::BellCanada,
            "caida" => TopologySpec::CaidaLike {
                nodes: as_count("nodes", take("nodes").unwrap_or(825.0))?,
                edges: as_count("edges", take("edges").unwrap_or(1018.0))?,
                capacity: take("capacity").unwrap_or(netrec_topology::caida::DEFAULT_CAPACITY),
            },
            "er" => TopologySpec::ErdosRenyi {
                n: as_count("n", take("n").ok_or("er topology needs n=N")?)?,
                p: take("p").ok_or("er topology needs p=P")?,
                capacity: take("capacity").unwrap_or(1000.0),
            },
            "ba" => TopologySpec::BarabasiAlbert {
                n: as_count("n", take("n").ok_or("ba topology needs n=N")?)?,
                m: as_count("m", take("m").ok_or("ba topology needs m=M")?)?,
                capacity: take("capacity").unwrap_or(1000.0),
            },
            "waxman" => TopologySpec::Waxman {
                n: as_count("n", take("n").ok_or("waxman topology needs n=N")?)?,
                alpha: take("alpha").unwrap_or(0.8),
                beta: take("beta").unwrap_or(0.15),
                capacity: take("capacity").unwrap_or(1000.0),
            },
            "grid" => TopologySpec::Grid {
                rows: as_count("rows", take("rows").ok_or("grid topology needs rows=R")?)?,
                cols: as_count("cols", take("cols").ok_or("grid topology needs cols=C")?)?,
                capacity: take("capacity").unwrap_or(1000.0),
            },
            "ring" => TopologySpec::Ring {
                n: as_count("n", take("n").ok_or("ring topology needs n=N")?)?,
                capacity: take("capacity").unwrap_or(1000.0),
            },
            other => {
                return Err(format!(
                    "unknown topology `{other}`; use bell|caida|er|ba|waxman|grid|ring|gml:<path>"
                ))
            }
        };
        if let Some((key, _)) = options.first() {
            return Err(format!("topology `{name}` does not take option `{key}`"));
        }
        Ok(spec)
    }
}

impl std::fmt::Display for TopologySpec {
    /// The canonical encoding accepted by [`TopologySpec::parse`]
    /// (every field rendered, so distinct specs render distinctly).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologySpec::BellCanada => write!(f, "bell"),
            TopologySpec::CaidaLike {
                nodes,
                edges,
                capacity,
            } => write!(f, "caida:nodes={nodes},edges={edges},capacity={capacity}"),
            TopologySpec::ErdosRenyi { n, p, capacity } => {
                write!(f, "er:n={n},p={p},capacity={capacity}")
            }
            TopologySpec::BarabasiAlbert { n, m, capacity } => {
                write!(f, "ba:n={n},m={m},capacity={capacity}")
            }
            TopologySpec::Waxman {
                n,
                alpha,
                beta,
                capacity,
            } => write!(
                f,
                "waxman:n={n},alpha={alpha},beta={beta},capacity={capacity}"
            ),
            TopologySpec::Grid {
                rows,
                cols,
                capacity,
            } => write!(f, "grid:rows={rows},cols={cols},capacity={capacity}"),
            TopologySpec::Ring { n, capacity } => write!(f, "ring:n={n},capacity={capacity}"),
            TopologySpec::Gml { path } => write!(f, "gml:{path}"),
        }
    }
}

/// A complete experiment scenario: one point of a figure's sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable label (e.g. `pairs=4`).
    pub label: String,
    /// The x-coordinate this scenario contributes to its figure.
    pub x: f64,
    /// Topology.
    pub topology: TopologySpec,
    /// Demand generation.
    pub demand: DemandSpec,
    /// Disruption model.
    pub disruption: DisruptionModel,
    /// Solvers to run, each carrying its configuration inline. Replaces
    /// the old `algorithms` list plus the per-algorithm `isp` / `opt` /
    /// `greedy` / `mcf` config fields. The serde alias keeps the old
    /// *field key* accepted; note that migrating pre-redesign files
    /// under real serde would additionally need a custom deserializer
    /// mapping bare `Algorithm` names (`"Isp"`, …) onto `SolverSpec`
    /// variants — with the offline serde stand-in (DESIGN.md §7) neither
    /// path is exercised yet.
    #[serde(alias = "algorithms")]
    pub solvers: Vec<SolverSpec>,
    /// Independent runs to average over (the paper uses 20).
    pub runs: usize,
    /// Base RNG seed; run `r` uses `seed + r`.
    pub seed: u64,
    /// Evaluation-oracle backend forced onto every oracle-aware solver
    /// of this scenario (ISP, GRD-NC, MCB) through the run's
    /// `SolveContext`. `None` keeps each solver's own configuration.
    /// This is the sim-level ablation axis behind the CLI's `--oracle`
    /// flag.
    pub oracle: Option<OracleSpec>,
    /// Worker threads for the independent runs (`None` = one per
    /// available core, capped at the run count; `Some(1)` forces the
    /// serial path). Concurrency inflates the `time_ms` metric through
    /// contention — use `Some(1)` when timing fidelity matters.
    pub threads: Option<usize>,
}

impl Scenario {
    /// A scenario running the given solver specs.
    #[allow(clippy::too_many_arguments)] // mirrors the experiment tuple of the paper
    pub fn new(
        label: impl Into<String>,
        x: f64,
        topology: TopologySpec,
        demand: DemandSpec,
        disruption: DisruptionModel,
        solvers: Vec<SolverSpec>,
        runs: usize,
        seed: u64,
    ) -> Self {
        Scenario {
            label: label.into(),
            x,
            topology,
            demand,
            disruption,
            solvers,
            runs,
            seed,
            oracle: None,
            threads: None,
        }
    }

    /// Returns the scenario with every oracle-aware solver forced onto
    /// the given backend.
    pub fn with_oracle(mut self, oracle: OracleSpec) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// Returns the scenario with an explicit worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_specs_build() {
        assert_eq!(TopologySpec::BellCanada.build(0).graph().node_count(), 48);
        let er = TopologySpec::ErdosRenyi {
            n: 10,
            p: 0.5,
            capacity: 1.0,
        }
        .build(1);
        assert_eq!(er.graph().node_count(), 10);
        let caida = TopologySpec::CaidaLike {
            nodes: 30,
            edges: 40,
            capacity: 10.0,
        }
        .build(2);
        assert_eq!(caida.graph().edge_count(), 40);
    }

    /// Satellite: every generator is reachable as a spec variant and
    /// builds the expected structure.
    #[test]
    fn widened_topology_specs_build() {
        let ba = TopologySpec::BarabasiAlbert {
            n: 30,
            m: 2,
            capacity: 5.0,
        }
        .build(3);
        assert_eq!(ba.graph().node_count(), 30);
        // The attachment loop may occasionally find fewer than m
        // distinct targets, so the edge count is bounded, not exact.
        let edges = ba.graph().edge_count();
        assert!((28..=3 + 28 * 2).contains(&edges), "{edges}");
        let wax = TopologySpec::Waxman {
            n: 25,
            alpha: 0.9,
            beta: 0.2,
            capacity: 5.0,
        }
        .build(4);
        assert_eq!(wax.graph().node_count(), 25);
        let grid = TopologySpec::Grid {
            rows: 3,
            cols: 4,
            capacity: 2.0,
        }
        .build(0);
        assert_eq!(grid.graph().edge_count(), 3 * 3 + 2 * 4);
        let ring = TopologySpec::Ring {
            n: 6,
            capacity: 1.0,
        }
        .build(0);
        assert_eq!(ring.graph().edge_count(), 6);
    }

    /// Satellite: the string encoding round-trips for every variant
    /// (with the offline serde stand-in this *is* the serde format).
    #[test]
    fn topology_string_encoding_round_trips() {
        for s in [
            "bell",
            "caida:nodes=30,edges=40,capacity=10",
            "er:n=12,p=0.5,capacity=100",
            "ba:n=30,m=2,capacity=5",
            "waxman:n=25,alpha=0.9,beta=0.2,capacity=5",
            "grid:rows=3,cols=4,capacity=2",
            "ring:n=6,capacity=1",
            "gml:nets/foo.gml",
        ] {
            let spec = TopologySpec::parse(s).unwrap();
            assert_eq!(spec.to_string(), s, "{s}");
            assert_eq!(TopologySpec::parse(&spec.to_string()).unwrap(), spec, "{s}");
        }
        // Defaults are filled in and then rendered explicitly.
        assert_eq!(
            TopologySpec::parse("caida").unwrap().to_string(),
            "caida:nodes=825,edges=1018,capacity=44"
        );
        assert_eq!(
            TopologySpec::parse("ring:n=8").unwrap().to_string(),
            "ring:n=8,capacity=1000"
        );
    }

    #[test]
    fn topology_parse_rejects_malformed_specs() {
        for bad in [
            "",
            "torus",
            "er:n=12",
            "er:p=0.5",
            "er:n=1.5,p=0.5",
            "ba:n=10",
            "grid:rows=3",
            "ring:n=x",
            "ring:n=6,banana=1",
            "gml:",
            "bell:x=1",
        ] {
            assert!(TopologySpec::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    /// Invalid generator parameters surface as errors, not worker panics.
    #[test]
    fn try_build_reports_generator_errors() {
        assert!(TopologySpec::Ring {
            n: 2,
            capacity: 1.0
        }
        .try_build(0)
        .is_err());
        assert!(TopologySpec::BarabasiAlbert {
            n: 2,
            m: 5,
            capacity: 1.0
        }
        .try_build(0)
        .is_err());
        assert!(TopologySpec::Gml {
            path: "/nonexistent/net.gml".into()
        }
        .try_build(0)
        .is_err());
    }

    #[test]
    fn solver_names_match_paper() {
        assert_eq!(SolverSpec::isp().name(), "ISP");
        assert_eq!(SolverSpec::grd_com().name(), "GRD-COM");
        assert_eq!(SolverSpec::mcw().name(), "MCW");
    }

    #[test]
    fn scenario_builds_with_defaults() {
        let s = Scenario::new(
            "test",
            1.0,
            TopologySpec::BellCanada,
            DemandSpec::new(2, 10.0),
            netrec_disrupt::DisruptionModel::Complete,
            vec![SolverSpec::isp()],
            3,
            7,
        );
        assert_eq!(s.runs, 3);
        assert_eq!(s.solvers.len(), 1);
        assert_eq!(s.oracle, None);
    }
}
