//! The versioned machine-readable campaign report and its regression
//! diff.
//!
//! A [`CampaignReport`] aggregates every completed scenario's per-solver
//! metric summaries (mean/std/n over the runs) and preserves failure
//! causes. The JSON rendering is **stable**: scenarios in expansion
//! order, maps in sorted key order, floats through the writer's
//! canonical formatting — so re-rendering the same data is
//! byte-identical, which is what the resume guarantee and the CI gate
//! compare. Wall-clock metrics (`time_ms`) are carried in the report
//! but ignored by [`diff`] and stripped by
//! [`CampaignReport::canonical_json`], the determinism-comparison form.

use crate::campaign::journal::JournalRecord;
use crate::campaign::json::{object, Json};
use crate::stats::{summarize, Summary};
use std::collections::BTreeMap;

/// The report schema version this build writes and reads.
pub const REPORT_VERSION: u64 = 1;

/// Metrics that are wall-clock measurements: nondeterministic across
/// machines, loads, and shard layouts. Present in reports, excluded
/// from [`CampaignReport::canonical_json`] and tolerated by [`diff`].
pub const VOLATILE_METRICS: &[&str] = &["time_ms"];

/// One scenario's aggregated results.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario id (`CampaignScenario::id`).
    pub id: String,
    /// Scenario fingerprint at execution time.
    pub fingerprint: String,
    /// metric → solver → summary over the runs.
    pub metrics: BTreeMap<String, BTreeMap<String, Summary>>,
    /// solver → failure causes, in run order (preserved so infeasible
    /// runs stay visible in campaign output).
    pub failures: BTreeMap<String, Vec<String>>,
}

impl ScenarioReport {
    /// Aggregates one journal record.
    pub fn from_record(record: &JournalRecord) -> ScenarioReport {
        let metrics = record
            .samples
            .iter()
            .map(|(metric, by_solver)| {
                (
                    metric.clone(),
                    by_solver
                        .iter()
                        .map(|(solver, values)| (solver.clone(), summarize(values)))
                        .collect(),
                )
            })
            .collect();
        ScenarioReport {
            id: record.id.clone(),
            fingerprint: record.fingerprint.clone(),
            metrics,
            failures: record.failures.clone(),
        }
    }

    /// Total failed runs across all solvers.
    pub fn failure_count(&self) -> usize {
        self.failures.values().map(Vec::len).sum()
    }
}

/// The whole campaign's aggregated, versioned report.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Schema version ([`REPORT_VERSION`]).
    pub version: u64,
    /// Campaign name from the spec.
    pub name: String,
    /// Fingerprint of the expanded campaign (`CampaignSpec::fingerprint`).
    pub spec_fingerprint: String,
    /// Completed scenarios, in expansion order.
    pub scenarios: Vec<ScenarioReport>,
}

impl CampaignReport {
    /// Total failed runs across the campaign.
    pub fn failure_count(&self) -> usize {
        self.scenarios
            .iter()
            .map(ScenarioReport::failure_count)
            .sum()
    }

    fn to_json_value(&self, include_volatile: bool) -> Json {
        let scenarios = self
            .scenarios
            .iter()
            .map(|s| {
                let metrics = Json::Object(
                    s.metrics
                        .iter()
                        .filter(|(metric, _)| {
                            include_volatile || !VOLATILE_METRICS.contains(&metric.as_str())
                        })
                        .map(|(metric, by_solver)| {
                            (
                                metric.clone(),
                                Json::Object(
                                    by_solver
                                        .iter()
                                        .map(|(solver, summary)| {
                                            (
                                                solver.clone(),
                                                object(vec![
                                                    ("mean", Json::Number(summary.mean)),
                                                    ("std", Json::Number(summary.std)),
                                                    ("n", Json::Number(summary.n as f64)),
                                                ]),
                                            )
                                        })
                                        .collect(),
                                ),
                            )
                        })
                        .collect(),
                );
                let failures = Json::Object(
                    s.failures
                        .iter()
                        .map(|(solver, causes)| {
                            (
                                solver.clone(),
                                Json::Array(
                                    causes.iter().map(|c| Json::String(c.clone())).collect(),
                                ),
                            )
                        })
                        .collect(),
                );
                object(vec![
                    ("id", Json::String(s.id.clone())),
                    ("fingerprint", Json::String(s.fingerprint.clone())),
                    ("metrics", metrics),
                    ("failures", failures),
                ])
            })
            .collect();
        object(vec![
            ("campaign_report_version", Json::Number(self.version as f64)),
            ("name", Json::String(self.name.clone())),
            (
                "spec_fingerprint",
                Json::String(self.spec_fingerprint.clone()),
            ),
            ("scenario_count", Json::Number(self.scenarios.len() as f64)),
            ("scenarios", Json::Array(scenarios)),
        ])
    }

    /// The full report JSON (pretty, stable) — what `campaign run`
    /// writes to disk.
    pub fn to_json(&self) -> String {
        self.to_json_value(true).to_pretty()
    }

    /// The determinism-comparison form: identical to [`to_json`] minus
    /// the [`VOLATILE_METRICS`]. Two runs of the same spec — serial or
    /// sharded, fresh or resumed — must produce byte-identical
    /// canonical JSON.
    ///
    /// [`to_json`]: CampaignReport::to_json
    pub fn canonical_json(&self) -> String {
        self.to_json_value(false).to_pretty()
    }

    /// Parses a report produced by [`CampaignReport::to_json`].
    ///
    /// # Errors
    ///
    /// A message naming the malformed part; a version mismatch is an
    /// error (the schema is CI-enforced, not sniffed).
    pub fn from_json(text: &str) -> Result<CampaignReport, String> {
        let root = Json::parse(text)?;
        let version = root
            .get("campaign_report_version")
            .and_then(Json::as_u64)
            .ok_or("report without campaign_report_version")?;
        if version != REPORT_VERSION {
            return Err(format!(
                "report version {version} is not supported (this build reads {REPORT_VERSION})"
            ));
        }
        let name = root
            .get("name")
            .and_then(Json::as_str)
            .ok_or("report without name")?
            .to_string();
        let spec_fingerprint = root
            .get("spec_fingerprint")
            .and_then(Json::as_str)
            .ok_or("report without spec_fingerprint")?
            .to_string();
        let mut scenarios = Vec::new();
        for entry in root
            .get("scenarios")
            .and_then(Json::as_array)
            .ok_or("report without scenarios array")?
        {
            let id = entry
                .get("id")
                .and_then(Json::as_str)
                .ok_or("scenario without id")?
                .to_string();
            let fingerprint = entry
                .get("fingerprint")
                .and_then(Json::as_str)
                .ok_or("scenario without fingerprint")?
                .to_string();
            let mut metrics: BTreeMap<String, BTreeMap<String, Summary>> = BTreeMap::new();
            for (metric, by_solver) in entry
                .get("metrics")
                .and_then(Json::as_object)
                .ok_or("scenario without metrics")?
            {
                let mut solver_map = BTreeMap::new();
                for (solver, summary) in by_solver
                    .as_object()
                    .ok_or("metric entry is not an object")?
                {
                    let field = |key: &str| {
                        summary
                            .get(key)
                            .and_then(Json::as_f64)
                            .ok_or_else(|| format!("summary without {key}"))
                    };
                    solver_map.insert(
                        solver.clone(),
                        Summary {
                            mean: field("mean")?,
                            std: field("std")?,
                            n: field("n")? as usize,
                        },
                    );
                }
                metrics.insert(metric.clone(), solver_map);
            }
            let mut failures = BTreeMap::new();
            for (solver, causes) in entry
                .get("failures")
                .and_then(Json::as_object)
                .ok_or("scenario without failures")?
            {
                failures.insert(
                    solver.clone(),
                    causes
                        .as_array()
                        .ok_or("failure causes are not an array")?
                        .iter()
                        .map(|c| {
                            c.as_str()
                                .map(str::to_string)
                                .ok_or("failure cause is not a string")
                        })
                        .collect::<Result<Vec<String>, _>>()?,
                );
            }
            scenarios.push(ScenarioReport {
                id,
                fingerprint,
                metrics,
                failures,
            });
        }
        if let Some(count) = root.get("scenario_count").and_then(Json::as_usize) {
            if count != scenarios.len() {
                return Err(format!(
                    "scenario_count {count} does not match the {} scenarios present",
                    scenarios.len()
                ));
            }
        }
        Ok(CampaignReport {
            version,
            name,
            spec_fingerprint,
            scenarios,
        })
    }
}

/// One out-of-tolerance difference found by [`diff`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Scenario id.
    pub scenario: String,
    /// What differs (`metric <name>/<solver>`, `failures <solver>`,
    /// `missing scenario`, …).
    pub what: String,
    /// Baseline rendering.
    pub baseline: String,
    /// Candidate rendering.
    pub candidate: String,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}: baseline {} vs candidate {}",
            self.scenario, self.what, self.baseline, self.candidate
        )
    }
}

/// Compares a candidate report against a baseline.
///
/// Deterministic metric means must agree within `tolerance` (relative,
/// against the larger magnitude, with the same value as an absolute
/// floor near zero); sample counts and failure causes must match
/// exactly; scenarios missing from the candidate are regressions, extra
/// candidate scenarios are ignored (a widened campaign is not a
/// regression). [`VOLATILE_METRICS`] are skipped entirely — wall-clock
/// time is not comparable across machines.
pub fn diff(
    baseline: &CampaignReport,
    candidate: &CampaignReport,
    tolerance: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    let by_id: BTreeMap<&str, &ScenarioReport> = candidate
        .scenarios
        .iter()
        .map(|s| (s.id.as_str(), s))
        .collect();
    for base in &baseline.scenarios {
        let Some(cand) = by_id.get(base.id.as_str()) else {
            out.push(Regression {
                scenario: base.id.clone(),
                what: "missing scenario".into(),
                baseline: "present".into(),
                candidate: "absent".into(),
            });
            continue;
        };
        for (metric, base_solvers) in &base.metrics {
            if VOLATILE_METRICS.contains(&metric.as_str()) {
                continue;
            }
            let cand_solvers = cand.metrics.get(metric);
            for (solver, base_summary) in base_solvers {
                let what = format!("metric {metric}/{solver}");
                let Some(cand_summary) = cand_solvers.and_then(|m| m.get(solver)) else {
                    out.push(Regression {
                        scenario: base.id.clone(),
                        what,
                        baseline: format!("mean {}", base_summary.mean),
                        candidate: "absent".into(),
                    });
                    continue;
                };
                let scale = base_summary
                    .mean
                    .abs()
                    .max(cand_summary.mean.abs())
                    .max(1.0);
                if (base_summary.mean - cand_summary.mean).abs() > tolerance * scale
                    || base_summary.n != cand_summary.n
                {
                    out.push(Regression {
                        scenario: base.id.clone(),
                        what,
                        baseline: format!("mean {} (n={})", base_summary.mean, base_summary.n),
                        candidate: format!("mean {} (n={})", cand_summary.mean, cand_summary.n),
                    });
                }
            }
        }
        // Failure causes are part of the schema: a run that used to
        // succeed and now fails (or vice versa) is a regression even if
        // the surviving means happen to agree.
        if base.failures != cand.failures {
            out.push(Regression {
                scenario: base.id.clone(),
                what: "failures".into(),
                baseline: format!("{} failed runs", base.failure_count()),
                candidate: format!("{} failed runs", cand.failure_count()),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample_report() -> CampaignReport {
        let mut metrics: BTreeMap<String, BTreeMap<String, Summary>> = BTreeMap::new();
        metrics.insert(
            "total_repairs".into(),
            [
                ("ISP".to_string(), summarize(&[4.0, 6.0])),
                ("SRT".to_string(), summarize(&[7.0, 9.0])),
            ]
            .into_iter()
            .collect(),
        );
        metrics.insert(
            "time_ms".into(),
            [("ISP".to_string(), summarize(&[1.25, 2.5]))]
                .into_iter()
                .collect(),
        );
        let mut failures = BTreeMap::new();
        failures.insert("OPT".to_string(), vec!["lp error: x".to_string()]);
        CampaignReport {
            version: REPORT_VERSION,
            name: "tiny".into(),
            spec_fingerprint: "abcdef0123456789".into(),
            scenarios: vec![ScenarioReport {
                id: "bell/complete/pairs=2,flow=5/default/seed=11".into(),
                fingerprint: "00ff00ff00ff00ff".into(),
                metrics,
                failures,
            }],
        }
    }

    #[test]
    fn json_round_trips_byte_identically() {
        let report = sample_report();
        let text = report.to_json();
        let parsed = CampaignReport::from_json(&text).unwrap();
        assert_eq!(parsed, report);
        assert_eq!(parsed.to_json(), text);
        assert!(text.contains("\"campaign_report_version\": 1"), "{text}");
        assert!(text.contains("\"scenario_count\": 1"), "{text}");
        // Failure causes are present in the export (satellite bugfix).
        assert!(text.contains("lp error: x"), "{text}");
    }

    #[test]
    fn canonical_json_strips_volatile_metrics_only() {
        let report = sample_report();
        let canonical = report.canonical_json();
        assert!(!canonical.contains("time_ms"), "{canonical}");
        assert!(canonical.contains("total_repairs"), "{canonical}");
        assert!(canonical.contains("lp error: x"), "{canonical}");
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let text = sample_report().to_json().replace(
            "\"campaign_report_version\": 1",
            "\"campaign_report_version\": 2",
        );
        let err = CampaignReport::from_json(&text).unwrap_err();
        assert!(err.contains("version 2"), "{err}");
    }

    #[test]
    fn scenario_count_mismatch_is_rejected() {
        let text = sample_report()
            .to_json()
            .replace("\"scenario_count\": 1", "\"scenario_count\": 3");
        assert!(CampaignReport::from_json(&text).is_err());
    }

    #[test]
    fn diff_is_clean_for_identical_reports() {
        let report = sample_report();
        assert!(diff(&report, &report, 1e-9).is_empty());
    }

    #[test]
    fn diff_ignores_wall_clock_drift() {
        let baseline = sample_report();
        let mut candidate = sample_report();
        candidate.scenarios[0]
            .metrics
            .get_mut("time_ms")
            .unwrap()
            .insert("ISP".into(), summarize(&[99.0, 1000.0]));
        assert!(diff(&baseline, &candidate, 1e-9).is_empty());
    }

    #[test]
    fn diff_flags_metric_regressions() {
        let baseline = sample_report();
        let mut candidate = sample_report();
        candidate.scenarios[0]
            .metrics
            .get_mut("total_repairs")
            .unwrap()
            .insert("ISP".into(), summarize(&[5.0, 7.0]));
        let regressions = diff(&baseline, &candidate, 1e-9);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].what.contains("total_repairs/ISP"));
        assert!(regressions[0].to_string().contains("baseline"));
        // A generous tolerance accepts the same drift.
        assert!(diff(&baseline, &candidate, 0.5).is_empty());
    }

    #[test]
    fn diff_flags_missing_scenarios_solvers_and_failure_changes() {
        let baseline = sample_report();
        let mut candidate = sample_report();
        candidate.scenarios.clear();
        let regressions = diff(&baseline, &candidate, 1e-9);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].what, "missing scenario");

        let mut candidate = sample_report();
        candidate.scenarios[0]
            .metrics
            .get_mut("total_repairs")
            .unwrap()
            .remove("SRT");
        let regressions = diff(&baseline, &candidate, 1e-9);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].candidate, "absent");

        let mut candidate = sample_report();
        candidate.scenarios[0].failures.clear();
        let regressions = diff(&baseline, &candidate, 1e-9);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].what, "failures");

        // Extra candidate scenarios are not regressions.
        let mut widened = sample_report();
        let mut extra = widened.scenarios[0].clone();
        extra.id = "extra/scenario".into();
        widened.scenarios.push(extra);
        assert!(diff(&baseline, &widened, 1e-9).is_empty());
    }

    #[test]
    fn diff_flags_sample_count_changes() {
        let baseline = sample_report();
        let mut candidate = sample_report();
        candidate.scenarios[0]
            .metrics
            .get_mut("total_repairs")
            .unwrap()
            .insert("ISP".into(), summarize(&[5.0])); // same ballpark, n=1
        let regressions = diff(&baseline, &candidate, 0.5);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
    }
}
