//! The append-only campaign journal (`campaign.journal.jsonl`).
//!
//! One line per *completed* scenario, written and flushed as soon as the
//! scenario finishes, carrying the raw per-run samples (not summaries) —
//! so a resumed campaign rebuilds exactly the same aggregates from the
//! journal that the original run computed, and the re-rendered report is
//! byte-identical. Scenarios in flight when a campaign dies simply have
//! no line and are re-executed on resume. Records are keyed by scenario
//! id and guarded by the scenario fingerprint: when the spec changes
//! under an id (different solver line-up, run count, or budget), the
//! stale record is ignored and the scenario re-runs.

use crate::campaign::json::{object, Json};
use crate::runner::ScenarioResult;
use std::collections::BTreeMap;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::Mutex;

/// One journal line: a completed scenario with its raw samples.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Scenario id (see `CampaignScenario::id`).
    pub id: String,
    /// Scenario fingerprint at execution time.
    pub fingerprint: String,
    /// metric → solver → per-run samples (the runner's raw output).
    pub samples: BTreeMap<String, BTreeMap<String, Vec<f64>>>,
    /// solver → failure causes, in run order.
    pub failures: BTreeMap<String, Vec<String>>,
}

impl JournalRecord {
    /// Packages a runner result as a journal record.
    pub fn new(id: &str, fingerprint: &str, result: &ScenarioResult) -> Self {
        JournalRecord {
            id: id.to_string(),
            fingerprint: fingerprint.to_string(),
            samples: result.samples.clone(),
            failures: result.failures.clone(),
        }
    }

    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let samples = Json::Object(
            self.samples
                .iter()
                .map(|(metric, by_solver)| {
                    (
                        metric.clone(),
                        Json::Object(
                            by_solver
                                .iter()
                                .map(|(solver, values)| {
                                    (
                                        solver.clone(),
                                        Json::Array(
                                            values.iter().map(|&v| Json::Number(v)).collect(),
                                        ),
                                    )
                                })
                                .collect(),
                        ),
                    )
                })
                .collect(),
        );
        let failures = Json::Object(
            self.failures
                .iter()
                .map(|(solver, causes)| {
                    (
                        solver.clone(),
                        Json::Array(causes.iter().map(|c| Json::String(c.clone())).collect()),
                    )
                })
                .collect(),
        );
        object(vec![
            ("id", Json::String(self.id.clone())),
            ("fingerprint", Json::String(self.fingerprint.clone())),
            ("samples", samples),
            ("failures", failures),
        ])
        .to_line()
    }

    /// Parses one journal line.
    ///
    /// # Errors
    ///
    /// A message naming the malformed part.
    pub fn parse_line(line: &str) -> Result<JournalRecord, String> {
        let root = Json::parse(line)?;
        let id = root
            .get("id")
            .and_then(Json::as_str)
            .ok_or("journal record without id")?
            .to_string();
        let fingerprint = root
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or("journal record without fingerprint")?
            .to_string();
        let mut samples = BTreeMap::new();
        for (metric, by_solver) in root
            .get("samples")
            .and_then(Json::as_object)
            .ok_or("journal record without samples object")?
        {
            let mut solver_map = BTreeMap::new();
            for (solver, values) in by_solver
                .as_object()
                .ok_or("journal samples entry is not an object")?
            {
                let values = values
                    .as_array()
                    .ok_or("journal sample list is not an array")?
                    .iter()
                    .map(|v| v.as_f64().ok_or("journal sample is not a number"))
                    .collect::<Result<Vec<f64>, _>>()?;
                solver_map.insert(solver.clone(), values);
            }
            samples.insert(metric.clone(), solver_map);
        }
        let mut failures = BTreeMap::new();
        for (solver, causes) in root
            .get("failures")
            .and_then(Json::as_object)
            .ok_or("journal record without failures object")?
        {
            let causes = causes
                .as_array()
                .ok_or("journal failure list is not an array")?
                .iter()
                .map(|c| {
                    c.as_str()
                        .map(str::to_string)
                        .ok_or("journal failure cause is not a string")
                })
                .collect::<Result<Vec<String>, _>>()?;
            failures.insert(solver.clone(), causes);
        }
        Ok(JournalRecord {
            id,
            fingerprint,
            samples,
            failures,
        })
    }

    /// Rebuilds the runner result the record was made from.
    pub fn to_result(&self) -> ScenarioResult {
        ScenarioResult {
            samples: self.samples.clone(),
            failures: self.failures.clone(),
        }
    }
}

/// Reads a journal file into an id-keyed map (last record per id wins —
/// append-only files may carry superseded records after a spec change).
/// A missing file is an empty journal. A malformed **final** line is
/// tolerated and skipped: a campaign killed mid-append leaves a torn
/// last line, and resume must treat that scenario as simply not
/// journaled rather than refusing the whole journal.
///
/// # Errors
///
/// IO errors and any malformed non-final line (with its line number —
/// corruption in the middle of the file is not crash debris).
pub fn load(path: &Path) -> Result<BTreeMap<String, JournalRecord>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .collect();
    let mut out = BTreeMap::new();
    for (at, &(lineno, line)) in lines.iter().enumerate() {
        match JournalRecord::parse_line(line) {
            Ok(record) => {
                out.insert(record.id.clone(), record);
            }
            Err(_) if at == lines.len() - 1 => {} // torn trailing write
            Err(e) => return Err(format!("{}:{}: {e}", path.display(), lineno + 1)),
        }
    }
    Ok(out)
}

/// Merges sharded journals into one id-keyed map (`campaign merge`).
///
/// Shards produced by splitting one campaign across machines journal
/// disjoint scenario ids, but reruns and overlapping shards are legal —
/// a record appearing in several journals must be *identical* (same
/// fingerprint, samples, and failures). Anything else is flagged, not
/// silently resolved: a fingerprint clash means the shards ran
/// different spec versions under one id, and divergent samples under
/// one fingerprint mean nondeterminism upstream — both invalidate the
/// merged campaign.
///
/// # Errors
///
/// One message per conflict, naming the id, the two source journals,
/// and what disagreed.
pub fn merge(
    journals: &[(String, BTreeMap<String, JournalRecord>)],
) -> Result<BTreeMap<String, JournalRecord>, String> {
    let mut merged: BTreeMap<String, (String, JournalRecord)> = BTreeMap::new();
    let mut conflicts = Vec::new();
    for (label, records) in journals {
        for (id, record) in records {
            match merged.get(id) {
                None => {
                    merged.insert(id.clone(), (label.clone(), record.clone()));
                }
                Some((prev_label, prev)) if prev == record => {
                    let _ = prev_label; // identical duplicate: fine
                }
                Some((prev_label, prev)) if prev.fingerprint != record.fingerprint => {
                    conflicts.push(format!(
                        "{id}: fingerprint {} in {prev_label} vs {} in {label}",
                        prev.fingerprint, record.fingerprint
                    ));
                }
                Some((prev_label, _)) => {
                    conflicts.push(format!(
                        "{id}: same fingerprint but divergent samples/failures \
                         in {prev_label} vs {label}"
                    ));
                }
            }
        }
    }
    if !conflicts.is_empty() {
        return Err(format!(
            "{} conflicting record(s):\n  {}",
            conflicts.len(),
            conflicts.join("\n  ")
        ));
    }
    Ok(merged.into_iter().map(|(id, (_, r))| (id, r)).collect())
}

/// A thread-shared append-only journal writer. Every
/// [`JournalWriter::append`] writes one line and flushes it, so a
/// record is durable the moment the call returns — a campaign killed
/// mid-flight loses at most the scenarios still running.
pub struct JournalWriter {
    inner: Mutex<BufWriter<std::fs::File>>,
    /// fsync after every append (`campaign run --durable`): the record
    /// survives power loss, not just process death.
    durable: bool,
}

impl JournalWriter {
    /// Opens the journal for appending (`truncate` starts it fresh — a
    /// non-resuming run must not inherit stale records).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(path: &Path, truncate: bool) -> std::io::Result<JournalWriter> {
        JournalWriter::open_with(path, truncate, false)
    }

    /// [`JournalWriter::open`] with explicit durability. The default
    /// flush-per-append already bounds loss to in-flight scenarios on
    /// process death; `durable` adds an fsync per append so the same
    /// bound holds across power loss, at a per-scenario syscall cost.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open_with(path: &Path, truncate: bool, durable: bool) -> std::io::Result<JournalWriter> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(!truncate)
            .truncate(truncate)
            .write(true)
            .open(path)?;
        Ok(JournalWriter {
            inner: Mutex::new(BufWriter::new(file)),
            durable,
        })
    }

    /// Appends one record and flushes (and syncs, when durable).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&self, record: &JournalRecord) -> std::io::Result<()> {
        let mut writer = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        writeln!(writer, "{}", record.to_line())?;
        writer.flush()?;
        if self.durable {
            writer.get_ref().sync_all()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> JournalRecord {
        let mut samples = BTreeMap::new();
        let mut by_solver = BTreeMap::new();
        by_solver.insert("ISP".to_string(), vec![4.0, 6.5]);
        by_solver.insert("SRT".to_string(), vec![7.0, 7.0]);
        samples.insert("total_repairs".to_string(), by_solver);
        let mut failures = BTreeMap::new();
        failures.insert(
            "OPT".to_string(),
            vec!["solver deadline exceeded".to_string()],
        );
        JournalRecord {
            id: "bell/complete/pairs=2,flow=5/default/seed=11".into(),
            fingerprint: "00ff00ff00ff00ff".into(),
            samples,
            failures,
        }
    }

    #[test]
    fn record_round_trips_through_its_line() {
        let record = sample_record();
        let line = record.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(JournalRecord::parse_line(&line).unwrap(), record);
        // The line form is stable (byte-identity depends on it).
        assert_eq!(JournalRecord::parse_line(&line).unwrap().to_line(), line);
    }

    #[test]
    fn writer_appends_and_load_reads_back() {
        let dir = std::env::temp_dir().join("netrec_journal_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.journal.jsonl");
        let writer = JournalWriter::open(&path, true).unwrap();
        let mut a = sample_record();
        writer.append(&a).unwrap();
        let mut b = sample_record();
        b.id = "other/id".into();
        writer.append(&b).unwrap();
        drop(writer);
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[&a.id], a);
        assert_eq!(loaded[&b.id], b);

        // Re-opening without truncation appends; a newer record for the
        // same id supersedes the old one on load.
        let writer = JournalWriter::open(&path, false).unwrap();
        a.fingerprint = "1111111111111111".into();
        writer.append(&a).unwrap();
        drop(writer);
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[&a.id].fingerprint, "1111111111111111");

        // Truncation starts fresh.
        let writer = JournalWriter::open(&path, true).unwrap();
        drop(writer);
        assert!(load(&path).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_writer_syncs_every_append_and_reads_back() {
        let dir = std::env::temp_dir().join("netrec_journal_durable_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.journal.jsonl");
        let writer = JournalWriter::open_with(&path, true, true).unwrap();
        let record = sample_record();
        writer.append(&record).unwrap();
        // The record is on disk before the writer is dropped.
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[&record.id], record);
        drop(writer);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_is_empty() {
        assert!(load(Path::new("/nonexistent/campaign.journal.jsonl"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn torn_trailing_line_is_skipped_but_midfile_corruption_errors() {
        let dir = std::env::temp_dir().join("netrec_journal_bad_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let good = sample_record().to_line();
        // A record torn mid-append (no closing brace, no newline): crash
        // debris — resume keeps the intact records and re-runs the rest.
        let torn = &good[..good.len() / 2];
        std::fs::write(&path, format!("{good}\n{torn}")).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert!(loaded.contains_key(&sample_record().id));
        // The same garbage *before* intact records is real corruption.
        std::fs::write(&path, format!("not json\n{good}\n")).unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.contains(":1:"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_combines_shards_and_flags_conflicts() {
        let a = sample_record();
        let mut b = sample_record();
        b.id = "zz/other".into();
        let mut shard1 = BTreeMap::new();
        shard1.insert(a.id.clone(), a.clone());
        let mut shard2 = BTreeMap::new();
        shard2.insert(b.id.clone(), b.clone());
        // Identical overlap is deduplicated.
        shard2.insert(a.id.clone(), a.clone());
        let merged = merge(&[
            ("s1.jsonl".into(), shard1.clone()),
            ("s2.jsonl".into(), shard2.clone()),
        ])
        .unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[&a.id], a);
        assert_eq!(
            merged.keys().collect::<Vec<_>>(),
            vec![&a.id, &b.id],
            "deterministic id order"
        );

        // A fingerprint clash under one id is a hard conflict.
        let mut clashing = a.clone();
        clashing.fingerprint = "deadbeefdeadbeef".into();
        let mut shard3 = BTreeMap::new();
        shard3.insert(clashing.id.clone(), clashing);
        let err = merge(&[
            ("s1.jsonl".into(), shard1.clone()),
            ("s3.jsonl".into(), shard3),
        ])
        .unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
        assert!(
            err.contains("s1.jsonl") && err.contains("s3.jsonl"),
            "{err}"
        );

        // Same fingerprint, different samples: nondeterminism upstream.
        let mut divergent = a.clone();
        divergent
            .samples
            .get_mut("total_repairs")
            .unwrap()
            .get_mut("ISP")
            .unwrap()[0] += 1.0;
        let mut shard4 = BTreeMap::new();
        shard4.insert(divergent.id.clone(), divergent);
        let err = merge(&[("s1.jsonl".into(), shard1), ("s4.jsonl".into(), shard4)]).unwrap_err();
        assert!(err.contains("divergent"), "{err}");
    }

    #[test]
    fn journal_round_trip_preserves_runner_results() {
        let record = sample_record();
        let result = record.to_result();
        assert_eq!(
            JournalRecord::new(&record.id, &record.fingerprint, &result),
            record
        );
    }
}
