//! The `netrec-cli campaign` subcommand family.
//!
//! ```text
//! netrec-cli campaign run <spec.json> [--shards N] [--resume] [--out DIR]
//! netrec-cli campaign expand <spec.json>
//! netrec-cli campaign diff <baseline.json> <candidate.json> [--tolerance T]
//! ```
//!
//! All logic lives here (unit-tested); the binary maps the returned
//! exit code straight to `std::process::exit`. `diff` is the CI
//! regression gate: exit 0 when the candidate report matches the
//! baseline within tolerance, exit 1 with one line per regression
//! otherwise.

use crate::campaign::executor::{self, CampaignOptions, JOURNAL_FILE};
use crate::campaign::report;
use crate::campaign::spec::CampaignSpec;
use crate::cli::UsageError;
use crate::export::write_campaign_report_durable;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Exit code for a detected regression (`campaign diff`).
pub const EXIT_REGRESSION: i32 = 1;

/// The `campaign` help text (appended to the main `--help`).
pub const HELP: &str = "\
netrec-cli campaign — declarative scenario sweeps (see DESIGN.md §10)

usage:
  netrec-cli campaign run <spec.json> [options]
      --shards N       scenario worker threads     (default: one per core)
      --resume         skip scenarios already in the out dir's journal
      --out DIR        output directory            (default campaign-out)
      --durable        fsync the journal after every scenario and the
                       report files after writing (crash-safe exports)
      writes campaign.report.json, campaign.metrics.csv,
      campaign.failures.csv, and the append-only campaign.journal.jsonl

  netrec-cli campaign expand <spec.json>
      print the expanded scenario grid without running it

  netrec-cli campaign diff <baseline.json> <candidate.json> [options]
      --tolerance T    relative mean tolerance     (default 1e-9)
      exit 1 when the candidate regresses against the baseline
      (wall-clock metrics are always tolerated)

  netrec-cli campaign merge <journal.jsonl>... [options]
      --out FILE       write the merged journal to FILE (default stdout)
      --spec SPEC      verify every merged record's fingerprint against
                       the expanded spec and report coverage
      deterministically merges sharded campaign journals (sorted by
      scenario id); identical duplicates collapse, conflicting records
      (same id, different fingerprint or divergent samples) error out
";

/// Runs a `campaign …` invocation (`args` excludes the leading
/// `campaign`). Returns the report text and the process exit code.
///
/// # Errors
///
/// A [`UsageError`] for malformed invocations, unreadable files, and
/// campaign failures.
pub fn run(args: &[String]) -> Result<(String, i32), UsageError> {
    match args.first().map(String::as_str) {
        Some("run") => run_subcommand(&args[1..]),
        Some("expand") => expand_subcommand(&args[1..]),
        Some("diff") => diff_subcommand(&args[1..]),
        Some("merge") => merge_subcommand(&args[1..]),
        Some(other) => Err(UsageError(format!(
            "unknown campaign subcommand `{other}`; use run|expand|diff|merge"
        ))),
        None => Err(UsageError(
            "campaign needs a subcommand: run|expand|diff|merge".into(),
        )),
    }
}

fn load_spec(path: &str) -> Result<CampaignSpec, UsageError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| UsageError(format!("cannot read {path}: {e}")))?;
    CampaignSpec::parse_json(&text).map_err(|e| UsageError(format!("{path}: {e}")))
}

fn run_subcommand(args: &[String]) -> Result<(String, i32), UsageError> {
    let mut spec_path: Option<&String> = None;
    let mut options = CampaignOptions {
        shards: None,
        resume: false,
        out_dir: PathBuf::from("campaign-out"),
        durable: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--shards" => {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| UsageError("missing value for --shards".into()))?;
                let shards: usize = v
                    .parse()
                    .map_err(|_| UsageError("--shards needs a positive integer".into()))?;
                if shards == 0 {
                    return Err(UsageError("--shards needs a positive integer".into()));
                }
                options.shards = Some(shards);
            }
            "--resume" => options.resume = true,
            "--durable" => options.durable = true,
            "--out" => {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| UsageError("missing value for --out".into()))?;
                options.out_dir = PathBuf::from(v);
            }
            other if spec_path.is_none() && !other.starts_with('-') => {
                spec_path = Some(&args[i]);
            }
            other => return Err(UsageError(format!("unknown campaign run argument {other}"))),
        }
        i += 1;
    }
    let spec_path = spec_path.ok_or_else(|| {
        UsageError("campaign run needs a spec file: campaign run <spec.json>".into())
    })?;
    let spec = load_spec(spec_path)?;
    let outcome =
        executor::run_campaign(&spec, &options, None).map_err(|e| UsageError(e.to_string()))?;
    let files = write_campaign_report_durable(&outcome.report, &options.out_dir, options.durable)
        .map_err(|e| UsageError(format!("cannot write report: {e}")))?;

    let mut out = String::new();
    let total = outcome.executed + outcome.skipped + outcome.cancelled;
    let _ = writeln!(
        out,
        "campaign {}: {} scenarios ({} executed, {} skipped, {} cancelled{})",
        spec.name,
        total,
        outcome.executed,
        outcome.skipped,
        outcome.cancelled,
        if outcome.stale > 0 {
            format!(", {} stale re-run", outcome.stale)
        } else {
            String::new()
        }
    );
    let _ = writeln!(
        out,
        "journal: {}",
        options.out_dir.join(JOURNAL_FILE).display()
    );
    for file in files {
        let _ = writeln!(out, "wrote: {}", options.out_dir.join(file).display());
    }
    let _ = writeln!(out, "failed runs: {}", outcome.report.failure_count());
    Ok((out, 0))
}

fn expand_subcommand(args: &[String]) -> Result<(String, i32), UsageError> {
    let [spec_path] = args else {
        return Err(UsageError(
            "campaign expand needs exactly one spec file".into(),
        ));
    };
    let spec = load_spec(spec_path)?;
    let scenarios = spec.expand().map_err(|e| UsageError(e.to_string()))?;
    let fingerprint = crate::campaign::spec::campaign_fingerprint(&scenarios);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "campaign {}: {} scenarios (spec fingerprint {fingerprint})",
        spec.name,
        scenarios.len()
    );
    for s in &scenarios {
        let solvers: Vec<String> = s.scenario.solvers.iter().map(|x| x.to_string()).collect();
        let _ = writeln!(
            out,
            "{}  [{}] runs={} fingerprint={}{}",
            s.id,
            solvers.join(" "),
            s.scenario.runs,
            s.fingerprint,
            match s.budget {
                Some(budget) => format!(" budget={}ms", budget.as_millis()),
                None => String::new(),
            }
        );
    }
    Ok((out, 0))
}

fn diff_subcommand(args: &[String]) -> Result<(String, i32), UsageError> {
    let mut paths: Vec<&String> = Vec::new();
    let mut tolerance = 1e-9f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| UsageError("missing value for --tolerance".into()))?;
                tolerance = v
                    .parse()
                    .map_err(|_| UsageError("--tolerance needs a number".into()))?;
                if !tolerance.is_finite() || tolerance < 0.0 {
                    return Err(UsageError(
                        "--tolerance must be a finite non-negative number".into(),
                    ));
                }
            }
            other if !other.starts_with('-') => paths.push(&args[i]),
            other => {
                return Err(UsageError(format!(
                    "unknown campaign diff argument {other}"
                )))
            }
        }
        i += 1;
    }
    let [baseline_path, candidate_path] = paths[..] else {
        return Err(UsageError(
            "campaign diff needs two report files: diff <baseline.json> <candidate.json>".into(),
        ));
    };
    let baseline =
        executor::load_report(baseline_path.as_ref()).map_err(|e| UsageError(e.to_string()))?;
    let candidate =
        executor::load_report(candidate_path.as_ref()).map_err(|e| UsageError(e.to_string()))?;
    let regressions = report::diff(&baseline, &candidate, tolerance);
    if regressions.is_empty() {
        return Ok((
            format!(
                "no regressions: {} scenarios within tolerance {tolerance}\n",
                baseline.scenarios.len()
            ),
            0,
        ));
    }
    let mut out = format!(
        "{} regression(s) against {baseline_path} (tolerance {tolerance}):\n",
        regressions.len()
    );
    for r in &regressions {
        let _ = writeln!(out, "  {r}");
    }
    Ok((out, EXIT_REGRESSION))
}

fn merge_subcommand(args: &[String]) -> Result<(String, i32), UsageError> {
    let mut journal_paths: Vec<&String> = Vec::new();
    let mut out_path: Option<&String> = None;
    let mut spec_path: Option<&String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = Some(
                    args.get(i)
                        .ok_or_else(|| UsageError("missing value for --out".into()))?,
                );
            }
            "--spec" => {
                i += 1;
                spec_path = Some(
                    args.get(i)
                        .ok_or_else(|| UsageError("missing value for --spec".into()))?,
                );
            }
            other if !other.starts_with('-') => journal_paths.push(&args[i]),
            other => {
                return Err(UsageError(format!(
                    "unknown campaign merge argument {other}"
                )))
            }
        }
        i += 1;
    }
    if journal_paths.is_empty() {
        return Err(UsageError(
            "campaign merge needs at least one journal: merge <journal.jsonl>...".into(),
        ));
    }
    let mut journals = Vec::with_capacity(journal_paths.len());
    for path in &journal_paths {
        if !std::path::Path::new(path.as_str()).exists() {
            // `journal::load` treats a missing file as an empty journal
            // (resume semantics); for an explicit merge argument that
            // would silently drop a shard — reject it instead.
            return Err(UsageError(format!("cannot read {path}: no such file")));
        }
        let records = crate::campaign::journal::load(path.as_ref()).map_err(UsageError)?;
        journals.push(((*path).clone(), records));
    }
    let merged = crate::campaign::journal::merge(&journals).map_err(UsageError)?;

    let mut summary = String::new();
    if let Some(spec_path) = spec_path {
        let spec = load_spec(spec_path)?;
        let scenarios = spec.expand().map_err(|e| UsageError(e.to_string()))?;
        let mut stale = Vec::new();
        let mut unknown = Vec::new();
        let mut missing = 0usize;
        for s in &scenarios {
            match merged.get(&s.id) {
                Some(record) if record.fingerprint == s.fingerprint => {}
                Some(record) => stale.push(format!(
                    "{}: journal fingerprint {} != spec fingerprint {}",
                    s.id, record.fingerprint, s.fingerprint
                )),
                None => missing += 1,
            }
        }
        let known: std::collections::BTreeSet<&str> =
            scenarios.iter().map(|s| s.id.as_str()).collect();
        for id in merged.keys() {
            if !known.contains(id.as_str()) {
                unknown.push(id.clone());
            }
        }
        if !stale.is_empty() || !unknown.is_empty() {
            let mut msg = format!(
                "merged journal does not match {spec_path}: {} stale, {} unknown record(s)",
                stale.len(),
                unknown.len()
            );
            for line in stale.iter().chain(
                unknown
                    .iter()
                    .map(|id| format!("{id}: not in the expanded spec"))
                    .collect::<Vec<_>>()
                    .iter(),
            ) {
                let _ = write!(msg, "\n  {line}");
            }
            return Err(UsageError(msg));
        }
        let _ = writeln!(
            summary,
            "spec {}: {}/{} scenarios journaled, {} missing",
            spec.name,
            scenarios.len() - missing,
            scenarios.len(),
            missing
        );
    }

    let mut lines = String::new();
    for record in merged.values() {
        let _ = writeln!(lines, "{}", record.to_line());
    }
    match out_path {
        Some(path) => {
            std::fs::write(path, &lines)
                .map_err(|e| UsageError(format!("cannot write {path}: {e}")))?;
            let _ = writeln!(
                summary,
                "merged {} record(s) from {} journal(s) into {path}",
                merged.len(),
                journal_paths.len()
            );
            Ok((summary, 0))
        }
        // Without --out the merged journal itself is the output
        // (pipeable); the coverage summary would corrupt it, so it is
        // only printed in --out mode.
        None => Ok((lines, 0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("netrec_campaign_cli_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_spec(dir: &Path) -> PathBuf {
        let path = dir.join("spec.json");
        std::fs::write(
            &path,
            r#"{
                "name": "cli-test",
                "topologies": ["bell"],
                "disruptions": ["uniform:0.4"],
                "demands": ["pairs=2,flow=5"],
                "solvers": ["srt", "all"],
                "seeds": [11, 12],
                "runs": 2,
                "threads": 1
            }"#,
        )
        .unwrap();
        path
    }

    #[test]
    fn run_expand_diff_end_to_end() {
        let dir = temp_dir("end_to_end");
        let spec = write_spec(&dir);
        let out = dir.join("out");

        let (text, code) = run(&args(&["expand", spec.to_str().unwrap()])).unwrap();
        assert_eq!(code, 0);
        assert!(text.contains("2 scenarios"), "{text}");
        assert!(text.contains("seed=11"), "{text}");

        let (text, code) = run(&args(&[
            "run",
            spec.to_str().unwrap(),
            "--shards",
            "2",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(code, 0);
        assert!(text.contains("2 executed, 0 skipped"), "{text}");
        assert!(out.join("campaign.report.json").exists());
        assert!(out.join("campaign.metrics.csv").exists());
        assert!(out.join("campaign.failures.csv").exists());
        assert!(out.join(JOURNAL_FILE).exists());
        let first_report = std::fs::read_to_string(out.join("campaign.report.json")).unwrap();

        // Resume: zero executed, byte-identical report.
        let (text, code) = run(&args(&[
            "run",
            spec.to_str().unwrap(),
            "--resume",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(code, 0);
        assert!(text.contains("0 executed, 2 skipped"), "{text}");
        let second_report = std::fs::read_to_string(out.join("campaign.report.json")).unwrap();
        assert_eq!(first_report, second_report);

        // Self-diff is clean.
        let report_path = out.join("campaign.report.json");
        let (text, code) = run(&args(&[
            "diff",
            report_path.to_str().unwrap(),
            report_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("no regressions"), "{text}");

        // An injected metric regression exits nonzero.
        let mut doctored = crate::campaign::CampaignReport::from_json(&first_report).unwrap();
        let summary = doctored.scenarios[0]
            .metrics
            .get_mut("total_repairs")
            .unwrap()
            .get_mut("SRT")
            .unwrap();
        summary.mean += 1.0;
        let doctored_path = dir.join("doctored.json");
        std::fs::write(&doctored_path, doctored.to_json()).unwrap();
        let (text, code) = run(&args(&[
            "diff",
            report_path.to_str().unwrap(),
            doctored_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(code, EXIT_REGRESSION, "{text}");
        assert!(text.contains("regression"), "{text}");

        // A generous tolerance accepts the same drift.
        let (_, code) = run(&args(&[
            "diff",
            report_path.to_str().unwrap(),
            doctored_path.to_str().unwrap(),
            "--tolerance",
            "0.9",
        ]))
        .unwrap();
        assert_eq!(code, 0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Golden property of `campaign merge`: merging per-seed shard
    /// journals reproduces, byte for byte, the sorted journal of the
    /// unsharded campaign — and `--spec` verifies full coverage.
    #[test]
    fn merge_reassembles_sharded_journals_byte_identically() {
        let dir = temp_dir("merge_golden");
        let full_spec = dir.join("full.json");
        std::fs::write(
            &full_spec,
            r#"{
                "name": "merge-test",
                "topologies": ["bell"],
                "disruptions": ["uniform:0.4"],
                "demands": ["pairs=2,flow=5"],
                "solvers": ["srt", "all"],
                "seeds": [11, 12],
                "runs": 2,
                "threads": 1
            }"#,
        )
        .unwrap();
        let (_, code) = run(&args(&[
            "run",
            full_spec.to_str().unwrap(),
            "--out",
            dir.join("full").to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(code, 0);
        let journal = |out: &str| dir.join(out).join(JOURNAL_FILE);

        // Shard the full run's journal by seed, as `campaign expand
        // --shard` execution would have split the work. (Re-running the
        // shards would not reproduce the same bytes: `time_ms` samples
        // are wall-clock.)
        let full = crate::campaign::journal::load(&journal("full")).unwrap();
        assert_eq!(full.len(), 2, "two scenarios expected");
        for (shard, seed) in [("a", "seed=11"), ("b", "seed=12")] {
            let lines: String = full
                .values()
                .filter(|r| r.id.ends_with(seed))
                .map(|r| format!("{}\n", r.to_line()))
                .collect();
            assert!(!lines.is_empty(), "shard {shard} covers {seed}");
            std::fs::create_dir_all(dir.join(shard)).unwrap();
            std::fs::write(journal(shard), lines).unwrap();
        }

        // The golden: the full run's journal, sorted by scenario id
        // (merge output order is id order; an unsharded journal is in
        // completion order).
        let golden: String = full
            .values()
            .map(|r| format!("{}\n", r.to_line()))
            .collect();

        let (merged, code) = run(&args(&[
            "merge",
            journal("a").to_str().unwrap(),
            journal("b").to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(code, 0);
        assert_eq!(merged, golden, "sharded merge == sorted unsharded journal");

        // Merging is idempotent and overlap-tolerant: the full journal
        // plus one shard adds nothing.
        let (remerged, _) = run(&args(&[
            "merge",
            journal("full").to_str().unwrap(),
            journal("a").to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(remerged, golden);

        // --out + --spec: write the merged journal, verify coverage.
        let merged_path = dir.join("merged.jsonl");
        let (text, code) = run(&args(&[
            "merge",
            journal("a").to_str().unwrap(),
            journal("b").to_str().unwrap(),
            "--out",
            merged_path.to_str().unwrap(),
            "--spec",
            full_spec.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(code, 0);
        assert!(
            text.contains("2/2 scenarios journaled, 0 missing"),
            "{text}"
        );
        assert_eq!(std::fs::read_to_string(&merged_path).unwrap(), golden);

        // A shard alone leaves a gap the spec check reports.
        let (text, _) = run(&args(&[
            "merge",
            journal("a").to_str().unwrap(),
            "--out",
            dir.join("partial.jsonl").to_str().unwrap(),
            "--spec",
            full_spec.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(
            text.contains("1/2 scenarios journaled, 1 missing"),
            "{text}"
        );

        // A doctored fingerprint fails --spec verification.
        let mut doctored: Vec<String> = golden.lines().map(str::to_string).collect();
        doctored[0] = doctored[0].replacen("\"fingerprint\":\"", "\"fingerprint\":\"ff", 1);
        let doctored_path = dir.join("doctored.jsonl");
        std::fs::write(&doctored_path, format!("{}\n", doctored.join("\n"))).unwrap();
        let err = run(&args(&[
            "merge",
            doctored_path.to_str().unwrap(),
            "--spec",
            full_spec.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.0.contains("stale"), "{err}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `--durable` runs the same campaign through the fsync'd journal
    /// and atomic report path and produces the same artifacts.
    #[test]
    fn durable_run_produces_the_same_artifacts() {
        let dir = temp_dir("durable_run");
        let spec = write_spec(&dir);
        let out = dir.join("out");
        let (text, code) = run(&args(&[
            "run",
            spec.to_str().unwrap(),
            "--durable",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("2 executed"), "{text}");
        assert!(out.join("campaign.report.json").exists());
        assert!(out.join("campaign.metrics.csv").exists());
        assert!(out.join(JOURNAL_FILE).exists());
        // No atomic-write temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&out)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_usage_errors() {
        assert!(run(&args(&["merge"])).is_err());
        assert!(run(&args(&["merge", "/nonexistent/shard.jsonl"])).is_err());
        assert!(run(&args(&["merge", "a.jsonl", "--banana"])).is_err());
        assert!(run(&args(&["merge", "a.jsonl", "--out"])).is_err());
        assert!(run(&args(&["merge", "a.jsonl", "--spec"])).is_err());
    }

    #[test]
    fn usage_errors() {
        assert!(run(&args(&[])).is_err());
        assert!(run(&args(&["fly"])).is_err());
        assert!(run(&args(&["run"])).is_err());
        assert!(run(&args(&["run", "/nonexistent/spec.json"])).is_err());
        assert!(run(&args(&["run", "a.json", "--shards", "0"])).is_err());
        assert!(run(&args(&["run", "a.json", "--banana"])).is_err());
        assert!(run(&args(&["expand"])).is_err());
        assert!(run(&args(&["diff", "only-one.json"])).is_err());
        assert!(run(&args(&["diff", "a.json", "b.json", "--tolerance", "x"])).is_err());
        assert!(run(&args(&["diff", "a.json", "b.json", "--tolerance", "-1"])).is_err());
    }

    #[test]
    fn diff_rejects_unversioned_reports() {
        let dir = temp_dir("unversioned");
        let path = dir.join("report.json");
        std::fs::write(&path, "{\"scenarios\": []}").unwrap();
        let err = run(&args(&[
            "diff",
            path.to_str().unwrap(),
            path.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.0.contains("campaign_report_version"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
