//! The sharded campaign executor.
//!
//! Scenarios fan out across shard worker threads (work-stealing over
//! the expansion order), each shard running its scenario through the
//! existing per-scenario parallel runner — two nested levels of
//! parallelism, so pin `threads: 1` in the spec when sharding wide.
//! Completed scenarios are journaled immediately; with
//! [`CampaignOptions::resume`] the executor skips every journaled
//! scenario whose fingerprint still matches and rebuilds its aggregates
//! from the journal, making re-runs byte-identical and crash recovery
//! free. A per-scenario wall-clock budget reaches every run as a
//! `SolveContext` deadline, and a campaign-wide cancellation flag stops
//! new scenarios between grid points and running solvers at their next
//! checkpoint.

use crate::campaign::journal::{self, JournalRecord, JournalWriter};
use crate::campaign::report::{CampaignReport, ScenarioReport, REPORT_VERSION};
use crate::campaign::spec::{CampaignScenario, CampaignSpec, CampaignSpecError};
use crate::runner::{run_scenario_bounded, RunLimits};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The journal file name inside the output directory.
pub const JOURNAL_FILE: &str = "campaign.journal.jsonl";

/// Execution options for [`run_campaign`].
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Shard worker threads over scenarios (`None` = one per core,
    /// capped at the scenario count).
    pub shards: Option<usize>,
    /// Skip scenarios already journaled in the output directory.
    /// Without this, an existing journal is truncated and everything
    /// re-runs.
    pub resume: bool,
    /// Output directory (journal + report files).
    pub out_dir: PathBuf,
    /// fsync the journal after every scenario (`--durable`): completed
    /// work survives power loss, not just process death.
    pub durable: bool,
}

/// What a campaign run produced.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The aggregated report over every completed scenario.
    pub report: CampaignReport,
    /// Scenarios executed in this invocation.
    pub executed: usize,
    /// Scenarios skipped because their journal record was reused.
    pub skipped: usize,
    /// Scenarios left unexecuted by cancellation (resumable).
    pub cancelled: usize,
    /// Journal records ignored because their fingerprint no longer
    /// matched the spec (the scenario was re-run).
    pub stale: usize,
}

/// A campaign execution failure (spec, journal, or IO), as a display
/// string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignError(pub String);

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CampaignError {}

impl From<CampaignSpecError> for CampaignError {
    fn from(e: CampaignSpecError) -> Self {
        CampaignError(e.0)
    }
}

/// Runs (or resumes) a campaign: expands the spec, executes every
/// un-journaled scenario across the shard workers, journals each
/// completion, and aggregates the report in expansion order.
///
/// `cancel` is the graceful-stop handle: once raised, no new scenario
/// starts, and in-flight solvers abort at their next checkpoint (their
/// partial scenarios are *not* journaled, so a later `--resume` re-runs
/// them).
///
/// # Errors
///
/// Spec expansion problems, unreadable journals, and IO failures.
pub fn run_campaign(
    spec: &CampaignSpec,
    options: &CampaignOptions,
    cancel: Option<&AtomicBool>,
) -> Result<CampaignOutcome, CampaignError> {
    let scenarios = spec.expand()?;
    let spec_fingerprint = crate::campaign::spec::campaign_fingerprint(&scenarios);
    std::fs::create_dir_all(&options.out_dir)
        .map_err(|e| CampaignError(format!("cannot create {}: {e}", options.out_dir.display())))?;
    let journal_path = options.out_dir.join(JOURNAL_FILE);

    let mut journaled = if options.resume {
        journal::load(&journal_path).map_err(CampaignError)?
    } else {
        Default::default()
    };

    // Split the expansion into reusable records and pending work
    // (each pending entry carries its expansion index, so completed
    // records slot straight back without an id search).
    let mut records: Vec<Option<JournalRecord>> = Vec::with_capacity(scenarios.len());
    let mut pending: Vec<(usize, &CampaignScenario)> = Vec::new();
    let mut stale = 0;
    for (at, scenario) in scenarios.iter().enumerate() {
        match journaled.remove(&scenario.id) {
            Some(record) if record.fingerprint == scenario.fingerprint => {
                records.push(Some(record));
            }
            Some(_) => {
                stale += 1;
                records.push(None);
                pending.push((at, scenario));
            }
            None => {
                records.push(None);
                pending.push((at, scenario));
            }
        }
    }
    let skipped = scenarios.len() - pending.len();

    let writer = JournalWriter::open_with(&journal_path, !options.resume, options.durable)
        .map_err(|e| CampaignError(format!("cannot open {}: {e}", journal_path.display())))?;
    // A fresh (non-resume) run truncated the journal — re-seed it with
    // nothing; a resumed run keeps its history and only appends.

    let shards = options
        .shards
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, pending.len().max(1));

    let executed = AtomicUsize::new(0);
    let next = AtomicUsize::new(0);
    let io_error: Mutex<Option<String>> = Mutex::new(None);
    let fresh: Mutex<Vec<(usize, JournalRecord)>> = Mutex::new(Vec::new());
    // A scenario interrupted by the cancel flag mid-flight reflects the
    // stop request, not the scenario: it is NOT journaled (returns
    // `None`), so a later `--resume` re-runs it — Cancelled failures
    // must never become a permanent part of the record.
    let run_one = |scenario: &CampaignScenario| -> Option<JournalRecord> {
        let limits = RunLimits {
            deadline: scenario.budget.map(|budget| Instant::now() + budget),
            cancel,
        };
        let result = run_scenario_bounded(&scenario.scenario, limits);
        if result.was_cancelled() {
            return None;
        }
        Some(JournalRecord::new(
            &scenario.id,
            &scenario.fingerprint,
            &result,
        ))
    };

    if shards <= 1 {
        for &(at, scenario) in &pending {
            if cancel.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
                break;
            }
            let Some(record) = run_one(scenario) else {
                break; // cancelled mid-scenario; the flag is raised
            };
            writer
                .append(&record)
                .map_err(|e| CampaignError(format!("journal write failed: {e}")))?;
            executed.fetch_add(1, Ordering::Relaxed);
            fresh.lock().expect("collector poisoned").push((at, record));
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..shards {
                scope.spawn(|| loop {
                    if cancel.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
                        break;
                    }
                    // A journal failure in any shard dooms the run to
                    // Err — stop claiming new scenarios instead of
                    // burning solver time on unreportable work.
                    if io_error.lock().expect("error slot poisoned").is_some() {
                        break;
                    }
                    let at = next.fetch_add(1, Ordering::Relaxed);
                    if at >= pending.len() {
                        break;
                    }
                    let (slot, scenario) = pending[at];
                    let Some(record) = run_one(scenario) else {
                        break; // cancelled mid-scenario; the flag is raised
                    };
                    if let Err(e) = writer.append(&record) {
                        *io_error.lock().expect("error slot poisoned") =
                            Some(format!("journal write failed: {e}"));
                        break;
                    }
                    executed.fetch_add(1, Ordering::Relaxed);
                    fresh
                        .lock()
                        .expect("collector poisoned")
                        .push((slot, record));
                });
            }
        });
    }
    if let Some(e) = io_error.into_inner().expect("error slot poisoned") {
        return Err(CampaignError(e));
    }

    for (at, record) in fresh.into_inner().expect("collector poisoned") {
        records[at] = Some(record);
    }
    let executed = executed.into_inner();
    let cancelled = pending.len() - executed;

    let report = CampaignReport {
        version: REPORT_VERSION,
        name: spec.name.clone(),
        spec_fingerprint,
        scenarios: records
            .iter()
            .flatten()
            .map(ScenarioReport::from_record)
            .collect(),
    };
    Ok(CampaignOutcome {
        report,
        executed,
        skipped,
        cancelled,
        stale,
    })
}

/// Loads and parses a report file.
///
/// # Errors
///
/// IO and schema errors, with the path in the message.
pub fn load_report(path: &Path) -> Result<CampaignReport, CampaignError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CampaignError(format!("cannot read {}: {e}", path.display())))?;
    CampaignReport::from_json(&text).map_err(|e| CampaignError(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::parse_json(
            r#"{
                "name": "exec-test",
                "topologies": ["bell"],
                "disruptions": ["uniform:0.4"],
                "demands": ["pairs=2,flow=5"],
                "solvers": ["srt", "all"],
                "seeds": [11, 12, 13],
                "runs": 2,
                "threads": 1
            }"#,
        )
        .unwrap()
    }

    fn temp_out(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("netrec_executor_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_run_executes_everything_and_journals_it() {
        let spec = tiny_spec();
        let out_dir = temp_out("fresh");
        let options = CampaignOptions {
            shards: Some(2),
            resume: false,
            out_dir: out_dir.clone(),
            durable: false,
        };
        let outcome = run_campaign(&spec, &options, None).unwrap();
        assert_eq!(outcome.executed, 3);
        assert_eq!(outcome.skipped, 0);
        assert_eq!(outcome.cancelled, 0);
        assert_eq!(outcome.report.scenarios.len(), 3);
        let journal = journal::load(&out_dir.join(JOURNAL_FILE)).unwrap();
        assert_eq!(journal.len(), 3);
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn resume_skips_journaled_scenarios_and_reproduces_the_report() {
        let spec = tiny_spec();
        let out_dir = temp_out("resume");
        let fresh = run_campaign(
            &spec,
            &CampaignOptions {
                shards: Some(1),
                resume: false,
                out_dir: out_dir.clone(),
                durable: false,
            },
            None,
        )
        .unwrap();
        let resumed = run_campaign(
            &spec,
            &CampaignOptions {
                shards: Some(4),
                resume: true,
                out_dir: out_dir.clone(),
                durable: false,
            },
            None,
        )
        .unwrap();
        assert_eq!(resumed.executed, 0);
        assert_eq!(resumed.skipped, 3);
        // Byte-identical aggregate output, wall-clock metrics included:
        // every record came from the journal.
        assert_eq!(resumed.report.to_json(), fresh.report.to_json());
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn stale_fingerprints_force_reexecution() {
        let spec = tiny_spec();
        let out_dir = temp_out("stale");
        let options = |resume| CampaignOptions {
            shards: Some(1),
            resume,
            out_dir: out_dir.clone(),
            durable: false,
        };
        run_campaign(&spec, &options(false), None).unwrap();
        // Same ids, different run count ⇒ different fingerprints.
        let mut changed = tiny_spec();
        changed.runs = 3;
        let outcome = run_campaign(&changed, &options(true), None).unwrap();
        assert_eq!(outcome.stale, 3);
        assert_eq!(outcome.executed, 3);
        assert_eq!(outcome.skipped, 0);
        for s in &outcome.report.scenarios {
            assert_eq!(s.metrics["total_repairs"]["SRT"].n, 3, "{}", s.id);
        }
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn cancellation_stops_between_scenarios_and_is_resumable() {
        let spec = tiny_spec();
        let out_dir = temp_out("cancel");
        let flag = AtomicBool::new(true); // raised before the first scenario
        let outcome = run_campaign(
            &spec,
            &CampaignOptions {
                shards: Some(1),
                resume: false,
                out_dir: out_dir.clone(),
                durable: false,
            },
            Some(&flag),
        )
        .unwrap();
        assert_eq!(outcome.executed, 0);
        assert_eq!(outcome.cancelled, 3);
        assert!(outcome.report.scenarios.is_empty());
        // The same out dir resumes cleanly once the flag is lowered.
        flag.store(false, Ordering::Relaxed);
        let resumed = run_campaign(
            &spec,
            &CampaignOptions {
                shards: Some(2),
                resume: true,
                out_dir: out_dir.clone(),
                durable: false,
            },
            Some(&flag),
        )
        .unwrap();
        assert_eq!(resumed.executed, 3);
        assert_eq!(resumed.report.scenarios.len(), 3);
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    /// A scenario interrupted mid-flight by the cancel flag must never
    /// be journaled: whatever the flag's timing, every journal record
    /// is a fully completed scenario (no `Cancelled` causes) and the
    /// executed count matches the journal exactly, so `--resume` later
    /// re-runs precisely the interrupted work.
    #[test]
    fn mid_flight_cancellation_is_never_journaled() {
        let mut spec = tiny_spec();
        spec.solvers = vec![netrec_core::solver::SolverSpec::isp()];
        spec.runs = 8; // long enough that the flag can land mid-scenario
        let out_dir = temp_out("midflight");
        let flag = AtomicBool::new(false);
        let outcome = std::thread::scope(|scope| {
            let flag = &flag;
            scope.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                flag.store(true, Ordering::Relaxed);
            });
            run_campaign(
                &spec,
                &CampaignOptions {
                    shards: Some(1),
                    resume: false,
                    out_dir: out_dir.clone(),
                    durable: false,
                },
                Some(flag),
            )
            .unwrap()
        });
        assert_eq!(outcome.executed + outcome.cancelled, 3);
        let journal = journal::load(&out_dir.join(JOURNAL_FILE)).unwrap();
        assert_eq!(journal.len(), outcome.executed);
        let cancelled_cause = netrec_core::RecoveryError::Cancelled.to_string();
        for record in journal.values() {
            assert!(
                record
                    .failures
                    .values()
                    .flatten()
                    .all(|cause| cause != &cancelled_cause),
                "journaled record carries a Cancelled run: {record:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn serial_and_sharded_runs_agree_canonically() {
        let spec = tiny_spec();
        let out_a = temp_out("serial");
        let out_b = temp_out("sharded");
        let serial = run_campaign(
            &spec,
            &CampaignOptions {
                shards: Some(1),
                resume: false,
                out_dir: out_a.clone(),
                durable: false,
            },
            None,
        )
        .unwrap();
        let sharded = run_campaign(
            &spec,
            &CampaignOptions {
                shards: Some(4),
                resume: false,
                out_dir: out_b.clone(),
                durable: false,
            },
            None,
        )
        .unwrap();
        assert_eq!(
            serial.report.canonical_json(),
            sharded.report.canonical_json()
        );
        let _ = std::fs::remove_dir_all(&out_a);
        let _ = std::fs::remove_dir_all(&out_b);
    }

    #[test]
    fn zero_budget_scenarios_complete_with_interruption_failures() {
        let mut spec = tiny_spec();
        spec.budget_ms = Some(1);
        spec.solvers = vec![netrec_core::solver::SolverSpec::isp()];
        spec.seeds = vec![11];
        let out_dir = temp_out("budget");
        // A 1 ms budget may let the first run slip through on a fast
        // machine, but a scenario cannot take unbounded time: every run
        // either completes or records DeadlineExceeded.
        let outcome = run_campaign(
            &spec,
            &CampaignOptions {
                shards: Some(1),
                resume: false,
                out_dir: out_dir.clone(),
                durable: false,
            },
            None,
        )
        .unwrap();
        assert_eq!(outcome.executed, 1);
        let scenario = &outcome.report.scenarios[0];
        let completed = scenario
            .metrics
            .get("total_repairs")
            .and_then(|m| m.get("ISP"))
            .map_or(0, |s| s.n);
        let failed = scenario.failure_count();
        assert_eq!(completed + failed, 2, "{scenario:?}");
        let _ = std::fs::remove_dir_all(&out_dir);
    }
}
