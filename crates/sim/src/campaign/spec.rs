//! Declarative campaign specifications and their deterministic
//! expansion into scenarios.
//!
//! A [`CampaignSpec`] names the axes of a cartesian sweep — topologies ×
//! disruption models × demand specs × oracles × seeds, with the solver
//! line-up riding along on every grid point — plus an exclusion list and
//! per-axis overrides. [`CampaignSpec::expand`] turns it into a
//! stably-ordered list of [`CampaignScenario`]s: axis values are
//! canonicalized (parsed, re-rendered, sorted, deduplicated) before
//! enumeration, so two specs listing the same values in any order expand
//! to byte-identical scenario lists, and every scenario carries a stable
//! content-derived id and fingerprint that the resume journal keys on.

use crate::campaign::json::Json;
use crate::scenario::{Scenario, TopologySpec};
use netrec_core::solver::SolverSpec;
use netrec_core::OracleSpec;
use netrec_disrupt::DisruptionModel;
use netrec_topology::demand::DemandSpec;
use std::time::Duration;

/// The campaign spec format version accepted by the parser.
pub const SPEC_VERSION: u64 = 1;

/// A declarative scenario sweep.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name (carried into the report).
    pub name: String,
    /// Topology axis.
    pub topologies: Vec<TopologySpec>,
    /// Disruption axis.
    pub disruptions: Vec<DisruptionModel>,
    /// Demand axis.
    pub demands: Vec<DemandSpec>,
    /// Solver line-up run on every grid point (subject to exclusions).
    pub solvers: Vec<SolverSpec>,
    /// Oracle axis; `None` keeps each solver's own configuration
    /// (spelled `"default"` in the JSON form).
    pub oracles: Vec<Option<OracleSpec>>,
    /// Seed axis.
    pub seeds: Vec<u64>,
    /// Independent runs per scenario.
    pub runs: usize,
    /// Worker threads per scenario (`None` = one per core; campaigns
    /// that also shard usually pin this to 1).
    pub threads: Option<usize>,
    /// Wall-clock budget per scenario in milliseconds (`None` = no
    /// budget). Reaches every run as a `SolveContext` deadline.
    pub budget_ms: Option<u64>,
    /// Grid points to drop (a point is dropped when every listed axis
    /// value of an entry matches it).
    pub exclude: Vec<AxisMatch>,
    /// Per-axis overrides of `runs` / `threads` / `budget_ms`, applied
    /// in order (later entries win).
    pub overrides: Vec<AxisOverride>,
}

/// A partial grid-point pattern: every listed axis value must match
/// (canonical string encodings; at least one axis must be listed).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AxisMatch {
    /// Canonical topology encoding to match.
    pub topology: Option<String>,
    /// Canonical disruption encoding to match.
    pub disruption: Option<String>,
    /// Canonical demand encoding to match.
    pub demand: Option<String>,
    /// Canonical solver encoding to match.
    pub solver: Option<String>,
    /// Canonical oracle encoding to match (`default` for the
    /// per-solver configuration).
    pub oracle: Option<String>,
    /// Seed to match.
    pub seed: Option<u64>,
}

impl AxisMatch {
    fn is_empty(&self) -> bool {
        self.topology.is_none()
            && self.disruption.is_none()
            && self.demand.is_none()
            && self.solver.is_none()
            && self.oracle.is_none()
            && self.seed.is_none()
    }

    /// Whether this pattern names the solver axis.
    fn has_solver(&self) -> bool {
        self.solver.is_some()
    }

    /// Matches the non-solver axes of a grid point.
    fn matches_point(&self, point: &GridPoint<'_>) -> bool {
        self.topology.as_deref().is_none_or(|t| t == point.topology)
            && self
                .disruption
                .as_deref()
                .is_none_or(|d| d == point.disruption)
            && self.demand.as_deref().is_none_or(|d| d == point.demand)
            && self.oracle.as_deref().is_none_or(|o| o == point.oracle)
            && self.seed.is_none_or(|s| s == point.seed)
    }
}

/// One override entry: when the pattern matches a grid point, the set
/// fields replace the campaign-level execution parameters.
#[derive(Debug, Clone)]
pub struct AxisOverride {
    /// The pattern (solver axis not allowed here — runs/threads/budget
    /// are per-scenario, and every solver shares the scenario).
    pub when: AxisMatch,
    /// Replacement run count.
    pub runs: Option<usize>,
    /// Replacement per-scenario thread count.
    pub threads: Option<usize>,
    /// Replacement wall-clock budget.
    pub budget_ms: Option<u64>,
}

/// A canonical grid point, used for matching.
struct GridPoint<'a> {
    topology: &'a str,
    disruption: &'a str,
    demand: &'a str,
    oracle: &'a str,
    seed: u64,
}

/// One expanded scenario of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignScenario {
    /// Stable content-derived id:
    /// `<topology>/<disruption>/<demand>/<oracle>/seed=N`.
    pub id: String,
    /// FNV-1a hash (hex) over the full scenario content — id, solver
    /// line-up, runs, threads, budget — so a resumed journal can detect
    /// that the spec changed under a journaled scenario id.
    pub fingerprint: String,
    /// The runnable scenario.
    pub scenario: Scenario,
    /// Wall-clock budget for the whole scenario.
    pub budget: Option<Duration>,
}

/// A campaign spec problem (parse or validation), as a display string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpecError(pub String);

impl std::fmt::Display for CampaignSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CampaignSpecError {}

fn err<T>(message: impl Into<String>) -> Result<T, CampaignSpecError> {
    Err(CampaignSpecError(message.into()))
}

/// FNV-1a 64-bit over a string, rendered as fixed-width hex.
pub(crate) fn fnv1a_hex(text: &str) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("{h:016x}")
}

impl CampaignSpec {
    /// Parses the JSON spec format (see `DESIGN.md` §10 and
    /// `examples/campaigns/smoke.json`). Unknown keys are rejected —
    /// the spec doubles as a CI-enforced schema, so a typoed axis name
    /// fails loudly instead of silently shrinking the sweep.
    ///
    /// # Errors
    ///
    /// A [`CampaignSpecError`] naming the offending key or token.
    pub fn parse_json(text: &str) -> Result<CampaignSpec, CampaignSpecError> {
        let root = Json::parse(text).map_err(|e| CampaignSpecError(format!("bad JSON: {e}")))?;
        let members = match root.as_object() {
            Some(m) => m,
            None => return err("campaign spec must be a JSON object"),
        };
        const KNOWN: &[&str] = &[
            "version",
            "name",
            "topologies",
            "disruptions",
            "demands",
            "solvers",
            "oracles",
            "seeds",
            "runs",
            "threads",
            "budget_ms",
            "exclude",
            "overrides",
        ];
        for (key, _) in members {
            if !KNOWN.contains(&key.as_str()) {
                return err(format!(
                    "unknown campaign key `{key}` (known: {})",
                    KNOWN.join(", ")
                ));
            }
        }
        if let Some(version) = root.get("version") {
            match version.as_u64() {
                Some(SPEC_VERSION) => {}
                Some(other) => {
                    return err(format!(
                        "campaign spec version {other} is not supported (this build reads {SPEC_VERSION})"
                    ))
                }
                None => return err("campaign version must be an integer"),
            }
        }
        let name = match root.get("name") {
            None => "campaign".to_string(),
            Some(name) => name
                .as_str()
                .ok_or_else(|| CampaignSpecError("`name` must be a string".into()))?
                .to_string(),
        };

        let string_axis = |key: &str| -> Result<Vec<String>, CampaignSpecError> {
            let axis = match root.get(key) {
                Some(v) => v,
                None => return err(format!("campaign spec needs a `{key}` array")),
            };
            let items = match axis.as_array() {
                Some(items) if !items.is_empty() => items,
                _ => return err(format!("`{key}` must be a non-empty array")),
            };
            items
                .iter()
                .map(|item| {
                    item.as_str().map(str::to_string).ok_or_else(|| {
                        CampaignSpecError(format!("`{key}` entries must be strings"))
                    })
                })
                .collect()
        };

        let topologies = string_axis("topologies")?
            .iter()
            .map(|s| TopologySpec::parse(s).map_err(CampaignSpecError))
            .collect::<Result<Vec<_>, _>>()?;
        let disruptions = string_axis("disruptions")?
            .iter()
            .map(|s| DisruptionModel::parse(s).map_err(CampaignSpecError))
            .collect::<Result<Vec<_>, _>>()?;
        let demands = string_axis("demands")?
            .iter()
            .map(|s| DemandSpec::parse(s).map_err(CampaignSpecError))
            .collect::<Result<Vec<_>, _>>()?;
        let solvers = string_axis("solvers")?
            .iter()
            .map(|s| SolverSpec::parse(s).map_err(|e| CampaignSpecError(e.to_string())))
            .collect::<Result<Vec<_>, _>>()?;
        let oracles = match root.get("oracles") {
            None => vec![None],
            Some(_) => string_axis("oracles")?
                .iter()
                .map(|s| parse_oracle_axis(s))
                .collect::<Result<Vec<_>, _>>()?,
        };

        let seeds = parse_seeds(root.get("seeds"))?;
        let runs = match root.get("runs") {
            None => 1,
            Some(v) => match v.as_usize() {
                Some(runs) if runs > 0 => runs,
                _ => return err("`runs` must be a positive integer"),
            },
        };
        let threads = match root.get("threads") {
            None => None,
            Some(v) => match v.as_usize() {
                Some(t) if t > 0 => Some(t),
                _ => return err("`threads` must be a positive integer"),
            },
        };
        let budget_ms = match root.get("budget_ms") {
            None => None,
            Some(v) => match v.as_u64() {
                Some(ms) if ms > 0 => Some(ms),
                _ => return err("`budget_ms` must be a positive integer"),
            },
        };

        let exclude = match root.get("exclude") {
            None => Vec::new(),
            Some(Json::Array(items)) => items
                .iter()
                .map(parse_axis_match)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return err("`exclude` must be an array of objects"),
        };
        for entry in &exclude {
            if entry.is_empty() {
                return err("an empty `exclude` entry would exclude every scenario");
            }
        }

        let overrides = match root.get("overrides") {
            None => Vec::new(),
            Some(Json::Array(items)) => items
                .iter()
                .map(parse_override)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return err("`overrides` must be an array of objects"),
        };

        let spec = CampaignSpec {
            name,
            topologies,
            disruptions,
            demands,
            solvers,
            oracles,
            seeds,
            runs,
            threads,
            budget_ms,
            exclude,
            overrides,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks cross-field consistency (exclusion/override patterns must
    /// reference values the axes actually contain, so typos fail
    /// instead of silently matching nothing).
    fn validate(&self) -> Result<(), CampaignSpecError> {
        let topologies: Vec<String> = self.topologies.iter().map(|t| t.to_string()).collect();
        let disruptions: Vec<String> = self.disruptions.iter().map(|d| d.to_string()).collect();
        let demands: Vec<String> = self.demands.iter().map(|d| d.to_string()).collect();
        let solvers: Vec<String> = self.solvers.iter().map(|s| s.to_string()).collect();
        let oracles: Vec<String> = self.oracles.iter().map(oracle_axis_string).collect();
        let check = |what: &str,
                     value: &Option<String>,
                     axis: &[String]|
         -> Result<(), CampaignSpecError> {
            match value {
                Some(v) if !axis.contains(v) => err(format!(
                    "pattern {what} `{v}` is not on the {what} axis (axis: {})",
                    axis.join(" | ")
                )),
                _ => Ok(()),
            }
        };
        for (label, entry) in self
            .exclude
            .iter()
            .map(|e| ("exclude", e))
            .chain(self.overrides.iter().map(|o| ("override", &o.when)))
        {
            check("topology", &entry.topology, &topologies)?;
            check("disruption", &entry.disruption, &disruptions)?;
            check("demand", &entry.demand, &demands)?;
            check("solver", &entry.solver, &solvers)?;
            check("oracle", &entry.oracle, &oracles)?;
            if let Some(seed) = entry.seed {
                if !self.seeds.contains(&seed) {
                    return err(format!("pattern seed {seed} is not on the seed axis"));
                }
            }
            if label == "override" && entry.has_solver() {
                return err(
                    "override patterns cannot name a solver (runs/threads/budget are per-scenario)",
                );
            }
        }
        Ok(())
    }

    /// Expands the grid into a deterministic, stably-ordered scenario
    /// list: every axis is canonical-sorted and deduplicated first, so
    /// the expansion is invariant under reordering of the spec's axis
    /// arrays; exclusions and overrides are then applied per grid
    /// point. Scenarios whose solver line-up is fully excluded are
    /// dropped.
    ///
    /// # Errors
    ///
    /// A [`CampaignSpecError`] when an axis is empty (nothing to run).
    pub fn expand(&self) -> Result<Vec<CampaignScenario>, CampaignSpecError> {
        if self.topologies.is_empty()
            || self.disruptions.is_empty()
            || self.demands.is_empty()
            || self.solvers.is_empty()
            || self.oracles.is_empty()
            || self.seeds.is_empty()
        {
            return err("every campaign axis needs at least one value");
        }
        if self.runs == 0 {
            return err("campaign runs must be positive");
        }
        // Canonicalize each axis: render, sort by encoding, deduplicate.
        let topologies = canonical_axis(&self.topologies, |t| t.to_string());
        let disruptions = canonical_axis(&self.disruptions, |d| d.to_string());
        let demands = canonical_axis(&self.demands, |d| d.to_string());
        let solvers = canonical_axis(&self.solvers, |s| s.to_string());
        let oracles = canonical_axis(&self.oracles, oracle_axis_string);
        let mut seeds = self.seeds.clone();
        seeds.sort_unstable();
        seeds.dedup();

        let mut out = Vec::new();
        for (topo_key, topology) in &topologies {
            for (disrupt_key, disruption) in &disruptions {
                for (demand_key, demand) in &demands {
                    for (oracle_key, oracle) in &oracles {
                        for &seed in &seeds {
                            let point = GridPoint {
                                topology: topo_key,
                                disruption: disrupt_key,
                                demand: demand_key,
                                oracle: oracle_key,
                                seed,
                            };
                            // Point-level exclusions (no solver axis)
                            // drop the whole scenario.
                            if self
                                .exclude
                                .iter()
                                .any(|e| !e.has_solver() && e.matches_point(&point))
                            {
                                continue;
                            }
                            // Solver-level exclusions thin the line-up.
                            let lineup: Vec<(String, SolverSpec)> = solvers
                                .iter()
                                .filter(|(solver_key, _)| {
                                    !self.exclude.iter().any(|e| {
                                        e.solver.as_deref() == Some(solver_key)
                                            && e.matches_point(&point)
                                    })
                                })
                                .map(|(k, s)| (k.clone(), s.clone()))
                                .collect();
                            if lineup.is_empty() {
                                continue;
                            }
                            let (mut runs, mut threads, mut budget_ms) =
                                (self.runs, self.threads, self.budget_ms);
                            for o in &self.overrides {
                                if o.when.matches_point(&point) {
                                    if let Some(r) = o.runs {
                                        runs = r;
                                    }
                                    if let Some(t) = o.threads {
                                        threads = Some(t);
                                    }
                                    if let Some(b) = o.budget_ms {
                                        budget_ms = Some(b);
                                    }
                                }
                            }
                            let id = format!(
                                "{topo_key}/{disrupt_key}/{demand_key}/{oracle_key}/seed={seed}"
                            );
                            let x = out.len() as f64;
                            let mut scenario = Scenario::new(
                                id.clone(),
                                x,
                                topology.clone(),
                                demand.clone(),
                                disruption.clone(),
                                lineup.iter().map(|(_, s)| s.clone()).collect(),
                                runs,
                                seed,
                            );
                            scenario.oracle = oracle.clone();
                            scenario.threads = threads;
                            let solver_keys: Vec<&str> =
                                lineup.iter().map(|(k, _)| k.as_str()).collect();
                            let fingerprint = fnv1a_hex(&format!(
                                "{id}|solvers=[{}]|runs={runs}|threads={threads:?}|budget_ms={budget_ms:?}",
                                solver_keys.join(",")
                            ));
                            out.push(CampaignScenario {
                                id,
                                fingerprint,
                                scenario,
                                budget: budget_ms.map(Duration::from_millis),
                            });
                        }
                    }
                }
            }
        }
        if out.is_empty() {
            return err("the exclusion list removed every scenario");
        }
        Ok(out)
    }

    /// Fingerprint of the whole expanded campaign (hash over every
    /// scenario fingerprint, carried into the report header).
    /// Convenience over [`campaign_fingerprint`] — callers that already
    /// hold the expansion should use that directly instead of paying a
    /// second [`CampaignSpec::expand`].
    ///
    /// # Errors
    ///
    /// Propagates [`CampaignSpec::expand`] errors.
    pub fn fingerprint(&self) -> Result<String, CampaignSpecError> {
        Ok(campaign_fingerprint(&self.expand()?))
    }
}

/// Fingerprint of an already-expanded campaign: the FNV-1a hash over
/// every scenario fingerprint, in expansion order.
pub fn campaign_fingerprint(scenarios: &[CampaignScenario]) -> String {
    let combined: Vec<&str> = scenarios.iter().map(|s| s.fingerprint.as_str()).collect();
    fnv1a_hex(&combined.join("\n"))
}

/// Renders one sorted-deduplicated axis as (canonical key, value).
fn canonical_axis<T: Clone>(values: &[T], render: impl Fn(&T) -> String) -> Vec<(String, T)> {
    let mut keyed: Vec<(String, T)> = values.iter().map(|v| (render(v), v.clone())).collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    keyed.dedup_by(|a, b| a.0 == b.0);
    keyed
}

/// The oracle axis encoding: `default` for `None`, else the
/// [`OracleSpec`] canonical encoding.
pub(crate) fn oracle_axis_string(oracle: &Option<OracleSpec>) -> String {
    match oracle {
        None => "default".to_string(),
        Some(spec) => spec.to_string(),
    }
}

fn parse_oracle_axis(s: &str) -> Result<Option<OracleSpec>, CampaignSpecError> {
    if s == "default" {
        return Ok(None);
    }
    match OracleSpec::parse(s) {
        Some(spec) => Ok(Some(spec)),
        None => err(format!(
            "unknown oracle `{s}`; use default|exact|approx[:eps]|auto[:threshold]|cached-exact|cached-approx[:eps]|incremental|artifact:path=FILE"
        )),
    }
}

/// Seeds: either an array of integers or `{"base": N, "count": K}`.
fn parse_seeds(value: Option<&Json>) -> Result<Vec<u64>, CampaignSpecError> {
    match value {
        None => err("campaign spec needs `seeds` (an array or {base, count})"),
        Some(Json::Array(items)) => {
            if items.is_empty() {
                return err("`seeds` must not be empty");
            }
            items
                .iter()
                .map(|item| {
                    item.as_u64().ok_or_else(|| {
                        CampaignSpecError("seeds must be non-negative integers".into())
                    })
                })
                .collect()
        }
        Some(range @ Json::Object(_)) => {
            let base = range
                .get("base")
                .and_then(Json::as_u64)
                .ok_or_else(|| CampaignSpecError("`seeds.base` must be an integer".into()))?;
            let count = range
                .get("count")
                .and_then(Json::as_u64)
                .filter(|&c| c > 0)
                .ok_or_else(|| {
                    CampaignSpecError("`seeds.count` must be a positive integer".into())
                })?;
            if range.as_object().is_some_and(|m| m.len() > 2) {
                return err("`seeds` object takes only base and count");
            }
            Ok((0..count).map(|i| base.wrapping_add(i)).collect())
        }
        Some(_) => err("`seeds` must be an array or {base, count}"),
    }
}

fn parse_axis_match(value: &Json) -> Result<AxisMatch, CampaignSpecError> {
    let members = match value.as_object() {
        Some(m) => m,
        None => return err("exclude/override patterns must be objects"),
    };
    let mut out = AxisMatch::default();
    for (key, v) in members {
        match key.as_str() {
            "topology" => out.topology = Some(pattern_string(key, v)?),
            "disruption" => out.disruption = Some(pattern_string(key, v)?),
            "demand" => out.demand = Some(pattern_string(key, v)?),
            "solver" => out.solver = Some(pattern_string(key, v)?),
            "oracle" => out.oracle = Some(pattern_string(key, v)?),
            "seed" => {
                out.seed = Some(
                    v.as_u64()
                        .ok_or_else(|| CampaignSpecError("pattern seed must be an integer".into()))?,
                )
            }
            other => {
                return err(format!(
                    "unknown pattern key `{other}` (known: topology, disruption, demand, solver, oracle, seed)"
                ))
            }
        }
    }
    // Normalize pattern values through the same parsers the axes use,
    // so `uniform:0.40` matches the axis value `uniform:0.4`.
    if let Some(t) = &out.topology {
        out.topology = Some(
            TopologySpec::parse(t)
                .map_err(CampaignSpecError)?
                .to_string(),
        );
    }
    if let Some(d) = &out.disruption {
        out.disruption = Some(
            DisruptionModel::parse(d)
                .map_err(CampaignSpecError)?
                .to_string(),
        );
    }
    if let Some(d) = &out.demand {
        out.demand = Some(DemandSpec::parse(d).map_err(CampaignSpecError)?.to_string());
    }
    if let Some(s) = &out.solver {
        out.solver = Some(
            SolverSpec::parse(s)
                .map_err(|e| CampaignSpecError(e.to_string()))?
                .to_string(),
        );
    }
    if let Some(o) = &out.oracle {
        out.oracle = Some(oracle_axis_string(&parse_oracle_axis(o)?));
    }
    Ok(out)
}

fn pattern_string(key: &str, value: &Json) -> Result<String, CampaignSpecError> {
    value
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| CampaignSpecError(format!("pattern `{key}` must be a string")))
}

fn parse_override(value: &Json) -> Result<AxisOverride, CampaignSpecError> {
    let members = match value.as_object() {
        Some(m) => m,
        None => return err("`overrides` entries must be objects"),
    };
    let mut when = None;
    let mut runs = None;
    let mut threads = None;
    let mut budget_ms = None;
    for (key, v) in members {
        match key.as_str() {
            "when" => when = Some(parse_axis_match(v)?),
            "runs" => {
                runs = Some(v.as_usize().filter(|&r| r > 0).ok_or_else(|| {
                    CampaignSpecError("override runs must be a positive integer".into())
                })?)
            }
            "threads" => {
                threads = Some(v.as_usize().filter(|&t| t > 0).ok_or_else(|| {
                    CampaignSpecError("override threads must be a positive integer".into())
                })?)
            }
            "budget_ms" => {
                budget_ms = Some(v.as_u64().filter(|&b| b > 0).ok_or_else(|| {
                    CampaignSpecError("override budget_ms must be a positive integer".into())
                })?)
            }
            other => return err(format!("unknown override key `{other}`")),
        }
    }
    let when = match when {
        Some(w) if !w.is_empty() => w,
        Some(_) => return err("override `when` must name at least one axis value"),
        None => return err("overrides need a `when` pattern"),
    };
    if runs.is_none() && threads.is_none() && budget_ms.is_none() {
        return err("overrides must set at least one of runs/threads/budget_ms");
    }
    Ok(AxisOverride {
        when,
        runs,
        threads,
        budget_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) const TINY_SPEC: &str = r#"{
        "version": 1,
        "name": "tiny",
        "topologies": ["bell", "ring:n=6,capacity=20"],
        "disruptions": ["uniform:0.4"],
        "demands": ["pairs=2,flow=5"],
        "solvers": ["srt", "isp"],
        "oracles": ["default", "incremental"],
        "seeds": [11, 12],
        "runs": 2,
        "threads": 1
    }"#;

    #[test]
    fn parses_and_expands_the_tiny_spec() {
        let spec = CampaignSpec::parse_json(TINY_SPEC).unwrap();
        assert_eq!(spec.name, "tiny");
        let scenarios = spec.expand().unwrap();
        // 2 topologies × 1 disruption × 1 demand × 2 oracles × 2 seeds.
        assert_eq!(scenarios.len(), 8);
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.scenario.x, i as f64);
            assert_eq!(s.scenario.runs, 2);
            assert_eq!(s.scenario.threads, Some(1));
            assert_eq!(s.scenario.solvers.len(), 2);
            assert_eq!(s.fingerprint.len(), 16);
            assert!(s.id.contains("/seed="), "{}", s.id);
        }
        // Canonical order: axes sorted by encoding ("bell" < "ring:…",
        // "default" < "incremental").
        assert!(scenarios[0].id.starts_with("bell/"));
        assert!(scenarios[0].id.contains("/default/"));
        assert!(scenarios[4].id.starts_with("ring:"));
    }

    #[test]
    fn expansion_is_stable_under_axis_reordering() {
        let reordered = TINY_SPEC
            .replace(
                r#""topologies": ["bell", "ring:n=6,capacity=20"]"#,
                r#""topologies": ["ring:n=6,capacity=20", "bell"]"#,
            )
            .replace(
                r#""oracles": ["default", "incremental"]"#,
                r#""oracles": ["incremental", "default"]"#,
            )
            .replace(r#""seeds": [11, 12]"#, r#""seeds": [12, 11]"#);
        let a = CampaignSpec::parse_json(TINY_SPEC).unwrap();
        let b = CampaignSpec::parse_json(&reordered).unwrap();
        let ids_a: Vec<String> = a.expand().unwrap().into_iter().map(|s| s.id).collect();
        let ids_b: Vec<String> = b.expand().unwrap().into_iter().map(|s| s.id).collect();
        assert_eq!(ids_a, ids_b);
        assert_eq!(a.fingerprint().unwrap(), b.fingerprint().unwrap());
    }

    #[test]
    fn artifact_oracle_axis_normalizes_aliases_to_one_grid_point() {
        // Both spellings of the artifact spec land on the canonical
        // `artifact:path=…` encoding, so the grid dedups them into one
        // oracle axis value and the scenario carries the parsed spec.
        let with_artifact = TINY_SPEC.replace(
            r#""oracles": ["default", "incremental"]"#,
            r#""oracles": ["artifact:path=/tmp/sweep.nra", "artifact:/tmp/sweep.nra"]"#,
        );
        let spec = CampaignSpec::parse_json(&with_artifact).unwrap();
        let scenarios = spec.expand().unwrap();
        // 2 topologies × 1 disruption × 1 demand × 1 oracle × 2 seeds.
        assert_eq!(scenarios.len(), 4);
        for s in &scenarios {
            assert!(s.id.contains("/artifact:path=/tmp/sweep.nra/"), "{}", s.id);
            assert_eq!(
                s.scenario.oracle,
                Some(OracleSpec::Artifact {
                    path: "/tmp/sweep.nra".into()
                })
            );
        }
        // Near-miss spellings stay rejected — the alias must not widen
        // into a catch-all prefix match.
        for bogus in ["artifacts:/tmp/x.nra", "artifact:", "artifact:path="] {
            let broken = TINY_SPEC.replace(
                r#""oracles": ["default", "incremental"]"#,
                &format!(r#""oracles": ["{bogus}"]"#),
            );
            assert!(
                CampaignSpec::parse_json(&broken).is_err(),
                "`{bogus}` must be rejected"
            );
        }
    }

    #[test]
    fn duplicate_axis_values_are_deduplicated() {
        let doubled = TINY_SPEC.replace(
            r#""solvers": ["srt", "isp"]"#,
            r#""solvers": ["srt", "isp", "srt"]"#,
        );
        let spec = CampaignSpec::parse_json(&doubled).unwrap();
        for s in spec.expand().unwrap() {
            assert_eq!(s.scenario.solvers.len(), 2);
        }
    }

    #[test]
    fn exclusions_thin_solver_lineups_and_drop_points() {
        let with_exclude = TINY_SPEC.replace(
            r#""threads": 1"#,
            r#""threads": 1,
               "exclude": [
                 {"solver": "isp", "oracle": "incremental"},
                 {"topology": "ring:n=6,capacity=20", "seed": 12}
               ]"#,
        );
        let spec = CampaignSpec::parse_json(&with_exclude).unwrap();
        let scenarios = spec.expand().unwrap();
        // One ring grid point dropped per oracle (seed 12): 8 - 2 = 6.
        assert_eq!(scenarios.len(), 6);
        for s in &scenarios {
            let names: Vec<&str> = s.scenario.solvers.iter().map(|x| x.name()).collect();
            if s.id.contains("/incremental/") {
                assert_eq!(names, vec!["SRT"], "{}", s.id);
            } else {
                assert_eq!(names, vec!["ISP", "SRT"], "{}", s.id);
            }
            assert!(
                !(s.id.starts_with("ring:") && s.id.ends_with("seed=12")),
                "{}",
                s.id
            );
        }
    }

    #[test]
    fn overrides_rewrite_execution_parameters() {
        let with_override = TINY_SPEC.replace(
            r#""threads": 1"#,
            r#""threads": 1,
               "budget_ms": 60000,
               "overrides": [
                 {"when": {"topology": "bell"}, "runs": 3},
                 {"when": {"oracle": "incremental"}, "budget_ms": 1000, "threads": 2}
               ]"#,
        );
        let spec = CampaignSpec::parse_json(&with_override).unwrap();
        for s in spec.expand().unwrap() {
            let expect_runs = if s.id.starts_with("bell/") { 3 } else { 2 };
            assert_eq!(s.scenario.runs, expect_runs, "{}", s.id);
            if s.id.contains("/incremental/") {
                assert_eq!(s.budget, Some(Duration::from_millis(1000)), "{}", s.id);
                assert_eq!(s.scenario.threads, Some(2), "{}", s.id);
            } else {
                assert_eq!(s.budget, Some(Duration::from_millis(60000)), "{}", s.id);
                assert_eq!(s.scenario.threads, Some(1), "{}", s.id);
            }
        }
    }

    #[test]
    fn overrides_change_the_fingerprint_but_not_the_id() {
        let with_override = TINY_SPEC.replace(
            r#""threads": 1"#,
            r#""threads": 1,
               "overrides": [{"when": {"seed": 11}, "runs": 5}]"#,
        );
        let base = CampaignSpec::parse_json(TINY_SPEC)
            .unwrap()
            .expand()
            .unwrap();
        let over = CampaignSpec::parse_json(&with_override)
            .unwrap()
            .expand()
            .unwrap();
        for (a, b) in base.iter().zip(&over) {
            assert_eq!(a.id, b.id);
            if a.id.ends_with("seed=11") {
                assert_ne!(a.fingerprint, b.fingerprint, "{}", a.id);
            } else {
                assert_eq!(a.fingerprint, b.fingerprint, "{}", a.id);
            }
        }
    }

    #[test]
    fn seed_ranges_expand() {
        let ranged = TINY_SPEC.replace(
            r#""seeds": [11, 12]"#,
            r#""seeds": {"base": 7, "count": 3}"#,
        );
        let spec = CampaignSpec::parse_json(&ranged).unwrap();
        assert_eq!(spec.seeds, vec![7, 8, 9]);
    }

    #[test]
    fn rejects_malformed_specs() {
        let cases: Vec<(&str, String)> = vec![
            ("not json", "{".into()),
            (
                "non-string name",
                TINY_SPEC.replace("\"name\": \"tiny\"", "\"name\": 42"),
            ),
            (
                "unknown key",
                TINY_SPEC.replace("\"runs\"", "\"run_count\""),
            ),
            (
                "unknown version",
                TINY_SPEC.replace("\"version\": 1", "\"version\": 99"),
            ),
            ("bad topology", TINY_SPEC.replace("\"bell\"", "\"torus\"")),
            ("bad solver", TINY_SPEC.replace("\"srt\"", "\"quantum\"")),
            (
                "bad oracle",
                TINY_SPEC.replace("\"incremental\"", "\"tea-leaves\""),
            ),
            ("empty axis", TINY_SPEC.replace(r#""srt", "isp""#, "")),
            (
                "zero runs",
                TINY_SPEC.replace(r#""runs": 2"#, r#""runs": 0"#),
            ),
            ("negative seed", TINY_SPEC.replace(r#"[11, 12]"#, r#"[-1]"#)),
            (
                "empty exclude entry",
                TINY_SPEC.replace(r#""threads": 1"#, r#""threads": 1, "exclude": [{}]"#),
            ),
            (
                "exclude off the axis",
                TINY_SPEC.replace(
                    r#""threads": 1"#,
                    r#""threads": 1, "exclude": [{"solver": "mcb"}]"#,
                ),
            ),
            (
                "override with solver",
                TINY_SPEC.replace(
                    r#""threads": 1"#,
                    r#""threads": 1, "overrides": [{"when": {"solver": "srt"}, "runs": 3}]"#,
                ),
            ),
            (
                "override without effect",
                TINY_SPEC.replace(
                    r#""threads": 1"#,
                    r#""threads": 1, "overrides": [{"when": {"seed": 11}}]"#,
                ),
            ),
        ];
        for (what, text) in cases {
            assert!(CampaignSpec::parse_json(&text).is_err(), "accepted {what}");
        }
    }

    #[test]
    fn pattern_values_are_normalized_like_axis_values() {
        // `uniform:0.40` normalizes to `uniform:0.4`, so the exclusion
        // still bites.
        let text = TINY_SPEC.replace(
            r#""threads": 1"#,
            r#""threads": 1, "exclude": [{"disruption": "uniform:0.40", "solver": "isp"}]"#,
        );
        let spec = CampaignSpec::parse_json(&text).unwrap();
        for s in spec.expand().unwrap() {
            assert_eq!(s.scenario.solvers.len(), 1, "{}", s.id);
        }
    }
}
