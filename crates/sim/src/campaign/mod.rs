//! The campaign engine: declarative scenario sweeps at fleet scale.
//!
//! A campaign turns the repo from "reproduces figure points" into "runs
//! evaluation fleets": a serde-annotated [`CampaignSpec`] (JSON via the
//! offline [`json`] layer) declares a cartesian grid — topologies ×
//! disruption models × demand specs × oracles × seed ranges, with the
//! solver line-up on every point, per-axis overrides, and an exclusion
//! list — and [`CampaignSpec::expand`] deterministically flattens it
//! into stably-ordered, content-addressed scenarios. The sharded
//! [`run_campaign`] executor fans scenarios across worker threads on
//! top of the per-scenario parallel runner, enforces a wall-clock
//! budget per scenario through `SolveContext` deadlines, cancels
//! gracefully, and journals every completion to the append-only
//! `campaign.journal.jsonl` — so campaigns resume for free and resumed
//! reports are byte-identical. Results aggregate into the versioned
//! [`CampaignReport`] (JSON + CSV through [`crate::export`]), and
//! [`report::diff`] is the regression gate CI drives through
//! `netrec-cli campaign diff`.
//!
//! See `DESIGN.md` §10 for the data model, journal format, resume
//! semantics, and what `diff` tolerates.

pub mod cli;
pub mod executor;
pub mod journal;
/// The offline JSON layer, hoisted to [`netrec_json`] so the
/// `netrec-serve` protocol can share it; re-exported here so existing
/// `campaign::json::...` paths keep working.
pub use netrec_json as json;
pub mod report;
pub mod spec;

pub use executor::{run_campaign, CampaignError, CampaignOptions, CampaignOutcome, JOURNAL_FILE};
pub use report::{diff, CampaignReport, Regression, ScenarioReport, REPORT_VERSION};
pub use spec::{AxisMatch, AxisOverride, CampaignScenario, CampaignSpec, CampaignSpecError};
