//! The `netrec-cli` command line: plan a recovery from the shell.
//!
//! ```text
//! netrec-cli --topology bell --pairs 4 --flow 10 --disrupt gaussian:50 \
//!            --algo isp [--schedule 4] [--report] [--seed 7]
//! netrec-cli --topology gml:net.gml --demand 3,17,12.5 --disrupt complete
//! netrec-cli --list-algorithms
//! ```
//!
//! All parsing and execution logic lives here so it is unit-testable; the
//! binary is a thin `main`. The solver comes from
//! [`SolverSpec::parse`], so any registry algorithm with any inline
//! configuration is reachable (`--algo grd-nc:paths=8`,
//! `--algo mcf:worst`, …) and misspellings get a did-you-mean hint.

use crate::scenario::TopologySpec;
use netrec_core::schedule::{schedule_recovery, schedule_recovery_with_oracle};
use netrec_core::solver::{registry, ProgressEvent, SolveContext, SolverSpec};
use netrec_core::vulnerability::robustness_report;
use netrec_core::{OracleBuilder, OracleSpec, OracleStats, RecoveryProblem};
use netrec_disrupt::DisruptionModel;
use netrec_topology::demand::{generate_demands, DemandSpec};
use netrec_topology::Topology;
use std::fmt;

/// Parsed CLI options.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Topology source (any [`TopologySpec`] encoding, plus the legacy
    /// `er:<n>:<p>` shorthand).
    pub topology: TopologySpec,
    /// Generated demand (pairs × flow), unless explicit demands given.
    pub pairs: usize,
    /// Flow per generated pair.
    pub flow: f64,
    /// Explicit demands `(s, t, amount)` (node indices).
    pub demands: Vec<(usize, usize, f64)>,
    /// Disruption model.
    pub disrupt: DisruptionModel,
    /// Solver to run (any [`SolverSpec`] string).
    pub algorithm: SolverSpec,
    /// Evaluation-oracle backend for oracle-aware algorithms and the
    /// schedule (`None` = per-algorithm defaults).
    pub oracle: Option<OracleSpec>,
    /// RNG seed.
    pub seed: u64,
    /// Optional per-stage budget for a repair schedule.
    pub schedule_budget: Option<f64>,
    /// LP engine override (`None` = the process default, the sparse
    /// revised simplex).
    pub lp_engine: Option<netrec_lp::LpEngine>,
    /// Whether to print the solver's evaluation-oracle counters.
    pub oracle_stats: bool,
    /// Whether to print the single-failure robustness report.
    pub report: bool,
    /// Print the solver registry instead of planning a recovery.
    pub list_algorithms: bool,
}

/// A CLI usage error with a message for the user.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// The help text.
pub const HELP: &str = "\
netrec-cli — plan a network recovery after massive failures (DSN'16)

usage: netrec-cli [options]
  --topology SPEC      bell | caida[:nodes=N,edges=E,capacity=C] |
                       er:n=N,p=P[,capacity=C] (or legacy er:<n>:<p>) |
                       ba:n=N,m=M | waxman:n=N | grid:rows=R,cols=C |
                       ring:n=N | gml:<file>             (default bell)
  --pairs N            generated demand pairs            (default 4)
  --flow F             flow units per generated pair     (default 10)
  --demand s,t,amount  explicit demand (repeatable; overrides --pairs)
  --disrupt complete | gaussian:<variance> | uniform:<p> | none
                                                         (default complete)
  --algo SPEC          solver spec, e.g. isp, opt:budget=200, grd-nc:paths=8,
                       mcf:worst  (alias --algorithm; default isp)
  --list-algorithms    print every registered solver with its syntax and
                       default configuration, then exit
  --oracle exact | approx[:eps] | auto[:threshold] | cached | cached-approx[:eps]
           | incremental | artifact:path=FILE
                       routability/satisfaction backend  (default per-algorithm);
                       artifact: probe a `netrec-cli precompute` file first,
                       fall through to the incremental backend on misses
  --oracle-stats       also print the solver's oracle counters (queries,
                       LP solves, cache hits, warm starts)
  --lp revised | dense LP engine: sparse revised simplex with warm-started
                       bases (default), or the dense-tableau reference
                       implementation as an escape hatch; the revised
                       engine prices with devex partial candidate lists
                       (NETREC_LP_PRICING=dantzig restores the full-scan
                       baseline; time-vs-n tracked by the scale bench,
                       BENCH_scale.json)
  --seed N             RNG seed                          (default 42)
  --schedule BUDGET    also print a staged repair schedule
  --report             also print the single-failure robustness report
  --help

campaign subcommands (declarative scenario sweeps, DESIGN.md §10):
  netrec-cli campaign run <spec.json> [--shards N] [--resume] [--out DIR]
  netrec-cli campaign expand <spec.json>
  netrec-cli campaign diff <baseline.json> <candidate.json> [--tolerance T]
  netrec-cli campaign merge <journal.jsonl>... [--out FILE] [--spec spec.json]

serve — resident recovery-as-a-service daemon (DESIGN.md §13):
  netrec-cli serve [--topology SPEC] [--pairs N] [--flow F] [--demand s,t,a]
                   [--disrupt MODEL] [--seed N] [--algo SPEC]
                   [--workers N] [--tcp ADDR]
  loads the topology once, then answers a JSONL event stream
  (disrupt/repair/demand/query_routability/query_plan/snapshot/shutdown)
  on stdin/stdout — and on ADDR with --tcp — from warm per-session
  state; run `netrec-cli serve --help` for the quickstart
";

/// Parses argv (without the program name).
///
/// # Errors
///
/// Returns a [`UsageError`] describing the first malformed argument;
/// solver misspellings include a did-you-mean suggestion over the
/// registry names.
pub fn parse_args(args: &[String]) -> Result<CliOptions, UsageError> {
    let mut opts = CliOptions {
        topology: TopologySpec::BellCanada,
        pairs: 4,
        flow: 10.0,
        demands: Vec::new(),
        disrupt: DisruptionModel::Complete,
        algorithm: SolverSpec::isp(),
        oracle: None,
        lp_engine: None,
        seed: 42,
        schedule_budget: None,
        oracle_stats: false,
        report: false,
        list_algorithms: false,
    };
    let mut i = 0;
    let need = |i: usize, what: &str, args: &[String]| -> Result<String, UsageError> {
        args.get(i)
            .cloned()
            .ok_or_else(|| UsageError(format!("missing value for {what}")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--topology" | "-t" => {
                i += 1;
                let v = need(i, "--topology", args)?;
                opts.topology = parse_topology(&v)?;
            }
            "--pairs" => {
                i += 1;
                opts.pairs = need(i, "--pairs", args)?
                    .parse()
                    .map_err(|_| UsageError("--pairs needs an integer".into()))?;
            }
            "--flow" => {
                i += 1;
                opts.flow = need(i, "--flow", args)?
                    .parse()
                    .map_err(|_| UsageError("--flow needs a number".into()))?;
            }
            "--demand" | "-d" => {
                i += 1;
                let v = need(i, "--demand", args)?;
                opts.demands.push(parse_demand(&v)?);
            }
            "--disrupt" => {
                i += 1;
                let v = need(i, "--disrupt", args)?;
                opts.disrupt = parse_disrupt(&v)?;
            }
            "--algo" | "--algorithm" | "-a" => {
                i += 1;
                let v = need(i, "--algo", args)?;
                opts.algorithm = SolverSpec::parse(&v).map_err(|e| UsageError(e.to_string()))?;
            }
            "--list-algorithms" => opts.list_algorithms = true,
            "--oracle" => {
                i += 1;
                let v = need(i, "--oracle", args)?;
                opts.oracle = Some(OracleSpec::parse(&v).ok_or_else(|| {
                    UsageError(format!(
                        "unknown oracle {v}; use exact|approx[:eps]|auto[:threshold]|cached|cached-approx[:eps]|incremental|artifact:path=FILE"
                    ))
                })?);
            }
            "--lp" => {
                i += 1;
                let v = need(i, "--lp", args)?;
                opts.lp_engine = Some(netrec_lp::LpEngine::parse(&v).ok_or_else(|| {
                    UsageError(format!("unknown LP engine {v}; use revised|dense"))
                })?);
            }
            "--oracle-stats" => opts.oracle_stats = true,
            "--seed" => {
                i += 1;
                opts.seed = need(i, "--seed", args)?
                    .parse()
                    .map_err(|_| UsageError("--seed needs an integer".into()))?;
            }
            "--schedule" => {
                i += 1;
                opts.schedule_budget = Some(
                    need(i, "--schedule", args)?
                        .parse()
                        .map_err(|_| UsageError("--schedule needs a number".into()))?,
                );
            }
            "--report" => opts.report = true,
            other => return Err(UsageError(format!("unknown argument {other}"))),
        }
        i += 1;
    }
    Ok(opts)
}

fn parse_topology(v: &str) -> Result<TopologySpec, UsageError> {
    // Legacy positional shorthand `er:<n>:<p>` (capacity 1000) predates
    // the canonical key=value encoding and stays accepted.
    if let Some(rest) = v.strip_prefix("er:") {
        if let [n, p] = rest.split(':').collect::<Vec<_>>()[..] {
            if let (Ok(n), Ok(p)) = (n.parse(), p.parse()) {
                return Ok(TopologySpec::ErdosRenyi {
                    n,
                    p,
                    capacity: 1000.0,
                });
            }
        }
    }
    // Everything else goes through the canonical TopologySpec encoding
    // (shared with campaign-spec axes), so the CLI reaches every
    // generator: bell, caida, er, ba, waxman, grid, ring, gml:<path>.
    TopologySpec::parse(v).map_err(UsageError)
}

fn parse_demand(v: &str) -> Result<(usize, usize, f64), UsageError> {
    let parts: Vec<&str> = v.split(',').collect();
    if parts.len() != 3 {
        return Err(UsageError("--demand needs s,t,amount".into()));
    }
    let s = parts[0]
        .trim()
        .parse()
        .map_err(|_| UsageError("demand source must be a node index".into()))?;
    let t = parts[1]
        .trim()
        .parse()
        .map_err(|_| UsageError("demand target must be a node index".into()))?;
    let amount = parts[2]
        .trim()
        .parse()
        .map_err(|_| UsageError("demand amount must be a number".into()))?;
    Ok((s, t, amount))
}

fn parse_disrupt(v: &str) -> Result<DisruptionModel, UsageError> {
    // The canonical parser lives next to the model (shared with the
    // campaign-spec axis format); the CLI just wraps its message.
    DisruptionModel::parse(v).map_err(UsageError)
}

/// Renders an oracle counter snapshot on one line: queries and LP solves
/// always, cache and incremental warm-start counters when present.
pub fn render_oracle_stats(stats: &OracleStats) -> String {
    let mut line = format!(
        "{} queries, {} LP solves, {} cache hits",
        stats.queries(),
        stats.lp_solves,
        stats.cache_hits
    );
    if stats.warm_start_hits > 0 || stats.full_solves > 0 {
        line.push_str(&format!(
            ", {} warm starts, {} full solves",
            stats.warm_start_hits, stats.full_solves
        ));
    }
    if stats.generation_resets > 0 {
        line.push_str(&format!(", {} generation resets", stats.generation_resets));
    }
    if stats.artifact_hits > 0 || stats.artifact_misses > 0 {
        line.push_str(&format!(
            ", artifact: {} hits / {} misses",
            stats.artifact_hits, stats.artifact_misses
        ));
    }
    if stats.approx_runs > 0 || stats.boundary_fallbacks > 0 {
        // Which path answered: exact LP fast path, certificate-terminated
        // approximation, or the full Garg–Könemann phase schedule.
        line.push_str(&format!(
            ", paths: exact={} threshold={} approx-full={}",
            stats.boundary_fallbacks,
            stats.threshold_certified,
            stats.approx_runs.saturating_sub(stats.threshold_certified)
        ));
    }
    line
}

/// Renders the solver registry: name, parse syntax, default config.
pub fn render_registry() -> String {
    let mut out = String::from("registered solvers (--algo SPEC):\n");
    for entry in registry() {
        out.push_str(&format!(
            "  {:<8} {}\n           syntax:  {}\n           default: {}\n",
            entry.name(),
            entry.summary,
            entry.syntax,
            entry.spec
        ));
    }
    out
}

/// Builds the topology selected by the options.
///
/// # Errors
///
/// Reports GML file problems as usage errors.
pub fn build_topology(opts: &CliOptions) -> Result<Topology, UsageError> {
    opts.topology.try_build(opts.seed).map_err(UsageError)
}

/// Everything [`build_problem`] assembles from a set of CLI options:
/// the topology, the applied disruption, the disrupted problem, and
/// the demand list as `(source, target, amount)` index triples.
pub type BuiltProblem = (
    Topology,
    netrec_disrupt::Disruption,
    RecoveryProblem,
    Vec<(usize, usize, f64)>,
);

/// Builds the topology, applies the disruption model, and assembles
/// the disrupted [`RecoveryProblem`] the options describe. Returns the
/// topology and disruption alongside the problem and the demand list
/// so callers can report what they built (`run` here, and the `serve`
/// daemon boot in [`crate::serve`]).
///
/// # Errors
///
/// Usage errors for unbuildable topologies and bad demand indices.
pub fn build_problem(opts: &CliOptions) -> Result<BuiltProblem, UsageError> {
    let topology = build_topology(opts)?;
    let disruption = opts.disrupt.apply(&topology, opts.seed);

    let mut problem = RecoveryProblem::new(topology.graph().clone());
    let demand_list: Vec<(usize, usize, f64)> = if opts.demands.is_empty() {
        generate_demands(
            &topology,
            &DemandSpec::new(opts.pairs, opts.flow),
            opts.seed,
        )
        .into_iter()
        .map(|(s, t, d)| (s.index(), t.index(), d))
        .collect()
    } else {
        opts.demands.clone()
    };
    for &(s, t, d) in &demand_list {
        let n = problem.graph().node_count();
        if s >= n || t >= n {
            return Err(UsageError(format!(
                "demand endpoint out of range: {s},{t} on {n} nodes"
            )));
        }
        problem
            .add_demand(problem.graph().node(s), problem.graph().node(t), d)
            .map_err(|e| UsageError(format!("bad demand {s},{t},{d}: {e}")))?;
    }
    for (i, &b) in disruption.broken_nodes.iter().enumerate() {
        if b {
            let node = problem.graph().node(i);
            problem
                .break_node(node, 1.0)
                .map_err(|e| UsageError(e.to_string()))?;
        }
    }
    for (i, &b) in disruption.broken_edges.iter().enumerate() {
        if b {
            problem
                .break_edge(netrec_graph::EdgeId::new(i), 1.0)
                .map_err(|e| UsageError(e.to_string()))?;
        }
    }
    Ok((topology, disruption, problem, demand_list))
}

/// Builds the recovery problem and runs the selected solver, returning
/// the report text. With `--list-algorithms`, returns the registry
/// listing instead.
///
/// # Errors
///
/// Usage errors for bad demand indices; solver errors are rendered into
/// the report.
pub fn run(opts: &CliOptions) -> Result<String, UsageError> {
    if opts.list_algorithms {
        return Ok(render_registry());
    }
    let (topology, disruption, problem, demand_list) = build_problem(opts)?;

    let mut out = String::new();
    out.push_str(&format!(
        "topology: {} ({} nodes, {} edges)\n",
        topology.name(),
        topology.graph().node_count(),
        topology.graph().edge_count()
    ));
    out.push_str(&format!(
        "disruption: {} nodes + {} edges broken\n",
        disruption.node_count(),
        disruption.edge_count()
    ));
    for &(s, t, d) in &demand_list {
        out.push_str(&format!("demand: {s} <-> {t}  ({d} units)\n"));
    }

    // One trait-object dispatch: the spec picked any of the registry's
    // solvers with its inline configuration. The progress listener
    // captures the solver's final oracle-counter snapshot for
    // --oracle-stats.
    let solver = opts.algorithm.build();
    let mut solver_oracle_stats: Option<OracleStats> = None;
    if let Some(engine) = opts.lp_engine {
        // The escape hatch must cover every solve in the process,
        // including paths that do not thread a context (plan
        // verification, the robustness report).
        netrec_lp::set_global_engine(engine);
    }
    let plan = {
        let mut ctx = SolveContext::new();
        if let Some(oracle) = opts.oracle.clone() {
            ctx = ctx.with_oracle(oracle);
        }
        if let Some(engine) = opts.lp_engine {
            ctx = ctx.with_lp_engine(engine);
        }
        let mut ctx = ctx.with_progress(|event| {
            if let ProgressEvent::OracleSnapshot(stats) = event {
                solver_oracle_stats = Some(*stats);
            }
        });
        match solver.solve(&problem, &mut ctx) {
            Ok(plan) => plan,
            Err(e) => {
                out.push_str(&format!("\nno recovery plan: {e}\n"));
                return Ok(out);
            }
        }
    };

    out.push_str(&format!("\nplan ({}):\n", plan.algorithm));
    if let Some(engine) = opts.lp_engine {
        out.push_str(&format!("  lp engine: {engine}\n"));
    }
    if let Some(spec) = &opts.oracle {
        if opts.algorithm.uses_oracle() {
            out.push_str(&format!("  oracle: {spec}\n"));
        } else {
            out.push_str(&format!(
                "  oracle: {spec} (ignored: {} does not use the oracle layer)\n",
                plan.algorithm
            ));
        }
    }
    out.push_str(&format!(
        "  repair {} nodes: {:?}\n",
        plan.repaired_nodes.len(),
        plan.repaired_nodes
    ));
    out.push_str(&format!(
        "  repair {} edges: {:?}\n",
        plan.repaired_edges.len(),
        plan.repaired_edges
    ));
    out.push_str(&format!("  cost: {}\n", plan.repair_cost(&problem)));
    match plan.satisfied_fraction(&problem) {
        Ok(f) => out.push_str(&format!("  satisfied demand: {:.1}%\n", f * 100.0)),
        Err(e) => out.push_str(&format!("  satisfied demand: <error: {e}>\n")),
    }
    if opts.oracle_stats {
        match solver_oracle_stats {
            Some(stats) => out.push_str(&format!(
                "  oracle stats: {}\n",
                render_oracle_stats(&stats)
            )),
            None => out.push_str(&format!(
                "  oracle stats: not reported ({} does not use the oracle layer)\n",
                plan.algorithm
            )),
        }
    }

    if let Some(budget) = opts.schedule_budget {
        let scheduled = match &opts.oracle {
            Some(spec) => OracleBuilder::new(spec.clone()).build().and_then(|oracle| {
                let schedule =
                    schedule_recovery_with_oracle(&problem, &plan, budget, oracle.as_ref());
                schedule.map(|s| (s, Some(oracle.stats())))
            }),
            None => schedule_recovery(&problem, &plan, budget).map(|s| (s, None)),
        };
        match scheduled {
            Ok((schedule, oracle_stats)) => {
                out.push_str(&format!("\nschedule (budget {budget}/stage):\n"));
                for (day, stage) in schedule.stages.iter().enumerate() {
                    out.push_str(&format!(
                        "  stage {}: {} nodes + {} edges, cost {:.1}, satisfied {:.1}%\n",
                        day + 1,
                        stage.nodes.len(),
                        stage.edges.len(),
                        stage.cost,
                        stage.satisfied_fraction * 100.0
                    ));
                }
                if let Some(stats) = oracle_stats {
                    out.push_str(&format!(
                        "  oracle stats: {}\n",
                        render_oracle_stats(&stats)
                    ));
                }
            }
            Err(e) => out.push_str(&format!("\nschedule failed: {e}\n")),
        }
    }

    if opts.report {
        match robustness_report(&problem, &plan) {
            Ok(report) => {
                out.push_str("\nsingle-failure robustness:\n");
                out.push_str(&format!(
                    "  critical nodes: {:?}\n",
                    report.critical_nodes()
                ));
                out.push_str(&format!(
                    "  critical edges: {:?}\n",
                    report.critical_edges()
                ));
                if let Some((frac, what)) = report.worst_case() {
                    out.push_str(&format!(
                        "  worst single failure: {what} -> {:.1}% demand survives\n",
                        frac * 100.0
                    ));
                }
            }
            Err(e) => out.push_str(&format!("\nrobustness report failed: {e}\n")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o.topology, TopologySpec::BellCanada);
        assert_eq!(o.pairs, 4);
        assert_eq!(o.algorithm, SolverSpec::isp());
        assert!(!o.report);
        assert!(!o.list_algorithms);
    }

    #[test]
    fn parses_everything() {
        let o = parse_args(&args(&[
            "--topology",
            "er:20:0.3",
            "--pairs",
            "2",
            "--flow",
            "5.5",
            "--disrupt",
            "gaussian:40",
            "--algo",
            "grd-nc",
            "--seed",
            "7",
            "--schedule",
            "3",
            "--report",
        ]))
        .unwrap();
        assert_eq!(
            o.topology,
            TopologySpec::ErdosRenyi {
                n: 20,
                p: 0.3,
                capacity: 1000.0
            }
        );
        assert_eq!(o.pairs, 2);
        assert_eq!(o.flow, 5.5);
        assert_eq!(o.algorithm, SolverSpec::grd_nc());
        assert_eq!(o.seed, 7);
        assert_eq!(o.schedule_budget, Some(3.0));
        assert!(o.report);
        assert!(matches!(o.disrupt, DisruptionModel::Gaussian { .. }));
    }

    #[test]
    fn algo_specs_carry_inline_config() {
        let o = parse_args(&args(&["--algo", "grd-nc:paths=8"])).unwrap();
        match o.algorithm {
            SolverSpec::GrdNc(config) => assert_eq!(config.max_paths_per_pair, 8),
            other => panic!("{other:?}"),
        }
        // The old flag name stays as an alias.
        let o = parse_args(&args(&["--algorithm", "mcf:worst"])).unwrap();
        assert_eq!(o.algorithm, SolverSpec::mcw());
    }

    #[test]
    fn misspelled_algo_gets_a_suggestion() {
        let err = parse_args(&args(&["--algo", "ips"])).unwrap_err();
        assert!(err.0.contains("did you mean `isp`?"), "{err}");
        let err = parse_args(&args(&["--algo", "grd-cm"])).unwrap_err();
        assert!(err.0.contains("did you mean `grd-com`?"), "{err}");
    }

    #[test]
    fn explicit_demands() {
        let o = parse_args(&args(&["--demand", "1,5,12.5", "--demand", "0,3,2"])).unwrap();
        assert_eq!(o.demands, vec![(1, 5, 12.5), (0, 3, 2.0)]);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_args(&args(&["--banana"])).is_err());
        assert!(parse_args(&args(&["--pairs", "x"])).is_err());
        assert!(parse_args(&args(&["--demand", "1,2"])).is_err());
        assert!(parse_args(&args(&["--topology", "er:20"])).is_err());
        assert!(parse_args(&args(&["--disrupt", "asteroid"])).is_err());
        assert!(parse_args(&args(&["--algo", "magic"])).is_err());
        assert!(parse_args(&args(&["--algo", "isp:banana=1"])).is_err());
        assert!(parse_args(&args(&["--oracle", "tea-leaves"])).is_err());
        assert!(parse_args(&args(&["--lp", "tea-leaves"])).is_err());
        assert!(parse_args(&args(&["--lp"])).is_err());
        assert!(parse_args(&args(&["--seed"])).is_err());
    }

    #[test]
    fn parses_lp_engine() {
        assert_eq!(parse_args(&[]).unwrap().lp_engine, None);
        let o = parse_args(&args(&["--lp", "dense"])).unwrap();
        assert_eq!(o.lp_engine, Some(netrec_lp::LpEngine::Dense));
        let o = parse_args(&args(&["--lp", "revised"])).unwrap();
        assert_eq!(o.lp_engine, Some(netrec_lp::LpEngine::Revised));
    }

    #[test]
    fn parses_oracle_variants() {
        assert_eq!(parse_args(&[]).unwrap().oracle, None);
        let o = parse_args(&args(&["--oracle", "cached"])).unwrap();
        assert_eq!(o.oracle, Some(OracleSpec::CachedExact));
        let o = parse_args(&args(&["--oracle", "approx:0.1"])).unwrap();
        assert_eq!(o.oracle, Some(OracleSpec::Approx { epsilon: 0.1 }));
        let o = parse_args(&args(&["--oracle", "incremental", "--oracle-stats"])).unwrap();
        assert_eq!(o.oracle, Some(OracleSpec::Incremental));
        assert!(o.oracle_stats);
        assert!(!parse_args(&[]).unwrap().oracle_stats);
    }

    /// Satellite: `--oracle-stats` surfaces the solver's cache-hit and
    /// warm-start counters end to end.
    #[test]
    fn oracle_stats_flag_prints_solver_counters() {
        for oracle in ["cached", "incremental"] {
            let o = parse_args(&args(&[
                "--topology",
                "er:12:0.5",
                "--pairs",
                "2",
                "--flow",
                "1",
                "--algo",
                "isp",
                "--oracle",
                oracle,
                "--oracle-stats",
            ]))
            .unwrap();
            let out = run(&o).unwrap();
            assert!(out.contains("oracle stats:"), "{oracle}: {out}");
            assert!(out.contains("queries"), "{oracle}: {out}");
            if oracle == "incremental" {
                assert!(out.contains("full solves"), "{oracle}: {out}");
            }
        }
        // A solver outside the oracle layer says so instead of faking
        // counters.
        let o = parse_args(&args(&[
            "--topology",
            "er:12:0.5",
            "--pairs",
            "1",
            "--flow",
            "1",
            "--algo",
            "srt",
            "--oracle-stats",
        ]))
        .unwrap();
        let out = run(&o).unwrap();
        assert!(out.contains("oracle stats: not reported"), "{out}");
    }

    #[test]
    fn list_algorithms_prints_the_registry() {
        let o = parse_args(&args(&["--list-algorithms"])).unwrap();
        assert!(o.list_algorithms);
        let out = run(&o).unwrap();
        for entry in registry() {
            assert!(out.contains(entry.name()), "{out}");
            assert!(out.contains(entry.syntax), "{out}");
        }
        assert!(out.contains("grd-nc[:paths=N"), "{out}");
    }

    #[test]
    fn oracle_flag_runs_end_to_end() {
        for oracle in ["exact", "approx", "cached", "cached-approx"] {
            let o = parse_args(&args(&[
                "--topology",
                "er:12:0.5",
                "--pairs",
                "2",
                "--flow",
                "1",
                "--algo",
                "isp",
                "--oracle",
                oracle,
                "--schedule",
                "2",
            ]))
            .unwrap();
            let out = run(&o).unwrap();
            assert!(out.contains("plan (ISP)"), "{oracle}: {out}");
            assert!(
                out.contains(&format!("oracle: {}", o.oracle.unwrap())),
                "{oracle}: {out}"
            );
            assert!(out.contains("satisfied demand: 100.0%"), "{oracle}: {out}");
            assert!(out.contains("oracle stats:"), "{oracle}: {out}");
        }
    }

    #[test]
    fn runs_end_to_end_on_tiny_er() {
        let o = parse_args(&args(&[
            "--topology",
            "er:12:0.5",
            "--pairs",
            "2",
            "--flow",
            "1",
            "--disrupt",
            "complete",
            "--algo",
            "isp",
        ]))
        .unwrap();
        let out = run(&o).unwrap();
        assert!(out.contains("plan (ISP)"), "{out}");
        assert!(out.contains("satisfied demand: 100.0%"), "{out}");
    }

    #[test]
    fn every_registry_solver_runs_from_the_cli() {
        for entry in registry() {
            let o = parse_args(&args(&[
                "--topology",
                "er:10:0.6",
                "--pairs",
                "1",
                "--flow",
                "1",
                "--algo",
                &entry.spec.to_string(),
            ]))
            .unwrap();
            let out = run(&o).unwrap();
            assert!(out.contains(&format!("plan ({})", entry.name())), "{out}");
        }
    }

    #[test]
    fn run_reports_infeasible_demand() {
        let o = parse_args(&args(&["--topology", "er:8:0.9", "--demand", "0,1,99999"])).unwrap();
        let out = run(&o).unwrap();
        assert!(out.contains("no recovery plan"), "{out}");
    }

    #[test]
    fn run_rejects_out_of_range_demand() {
        let o = parse_args(&args(&["--demand", "0,999,1"])).unwrap();
        assert!(run(&o).is_err());
    }

    #[test]
    fn schedule_and_report_sections_render() {
        let o = parse_args(&args(&[
            "--topology",
            "er:10:0.6",
            "--pairs",
            "1",
            "--flow",
            "1",
            "--schedule",
            "2",
            "--report",
        ]))
        .unwrap();
        let out = run(&o).unwrap();
        assert!(out.contains("schedule (budget 2/stage)"), "{out}");
        assert!(out.contains("single-failure robustness"), "{out}");
    }
}
