//! Regenerates the paper's figures as text tables.
//!
//! ```text
//! repro [--figure figN] [--scale smoke|default|paper]
//! ```
//!
//! With no arguments, runs every figure at the default scale and prints
//! one table per figure (the same series the paper plots).

use netrec_sim::figures::{self, Scale};
use netrec_sim::{export, render_table, run_figure};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figure: Option<String> = None;
    let mut scale = Scale::Default;
    let mut out_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--figure" | "-f" => {
                i += 1;
                figure = args.get(i).cloned();
            }
            "--scale" | "-s" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("smoke") => Scale::Smoke,
                    Some("default") => Scale::Default,
                    Some("paper") => Scale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?}; use smoke|default|paper");
                        std::process::exit(2);
                    }
                };
            }
            "--out-dir" | "-o" => {
                i += 1;
                out_dir = args.get(i).map(PathBuf::from);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--figure figN] [--scale smoke|default|paper] [--out-dir DIR]"
                );
                println!("figures: fig3 fig4 fig5 fig6 fig7 fig9");
                println!("--out-dir also writes per-metric CSVs and gnuplot scripts");
                return;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let figs = match figure {
        Some(id) => match figures::by_id(&id, scale) {
            Some(f) => vec![f],
            None => {
                eprintln!("unknown figure {id}; use fig3|fig4|fig5|fig6|fig7|fig9");
                std::process::exit(2);
            }
        },
        None => figures::all_figures(scale),
    };

    for fig in figs {
        let started = Instant::now();
        let table = run_figure(&fig);
        println!("{}", render_table(&table));
        if let Some(dir) = &out_dir {
            match export::write_figure(&table, dir) {
                Ok(files) => eprintln!(
                    "wrote {} CSV/gnuplot pairs to {}",
                    files.len(),
                    dir.display()
                ),
                Err(e) => eprintln!("failed to write {}: {e}", dir.display()),
            }
        }
        println!(
            "({} finished in {:.1}s)\n",
            fig.id,
            started.elapsed().as_secs_f64()
        );
    }
}
