//! Thin entry point for the `netrec-cli` tool; all logic lives in
//! [`netrec_sim::cli`], [`netrec_sim::campaign::cli`], and
//! [`netrec_sim::serve`], where it is unit-tested.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        match args.first().map(String::as_str) {
            Some("serve") => print!("{}", netrec_sim::serve::HELP),
            Some("precompute") => print!("{}", netrec_sim::precompute::HELP),
            Some("campaign") => {
                print!("{}", netrec_sim::cli::HELP);
                print!("\n{}", netrec_sim::campaign::cli::HELP);
            }
            _ => print!("{}", netrec_sim::cli::HELP),
        }
        return;
    }
    // `campaign …` subcommands carry their own exit semantics: `diff`
    // exits 1 on a detected regression (the CI gate).
    if args.first().map(String::as_str) == Some("campaign") {
        match netrec_sim::campaign::cli::run(&args[1..]) {
            Ok((report, code)) => {
                print!("{report}");
                std::process::exit(code);
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("run `netrec-cli campaign --help` for usage");
                std::process::exit(2);
            }
        }
    }
    // `serve` runs the resident daemon: stdout is pure protocol, the
    // boot banner and latency summary go to stderr.
    if args.first().map(String::as_str) == Some("serve") {
        match netrec_sim::serve::run(&args[1..]) {
            Ok(code) => std::process::exit(code),
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("run `netrec-cli serve --help` for usage");
                std::process::exit(2);
            }
        }
    }
    // `precompute` sweeps disruption classes offline into a routability
    // artifact that `serve --artifact` / `--oracle artifact:path=…` reuse.
    if args.first().map(String::as_str) == Some("precompute") {
        match netrec_sim::precompute::main(&args[1..]) {
            Ok(report) => {
                print!("{report}");
                return;
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("run `netrec-cli precompute --help` for usage");
                std::process::exit(2);
            }
        }
    }
    match netrec_sim::cli::parse_args(&args).and_then(|o| netrec_sim::cli::run(&o)) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run with --help for usage");
            std::process::exit(2);
        }
    }
}
