//! Thin entry point for the `netrec-cli` tool; all logic lives in
//! [`netrec_sim::cli`] where it is unit-tested.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", netrec_sim::cli::HELP);
        return;
    }
    match netrec_sim::cli::parse_args(&args).and_then(|o| netrec_sim::cli::run(&o)) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run with --help for usage");
            std::process::exit(2);
        }
    }
}
