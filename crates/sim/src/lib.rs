//! Experiment harness reproducing the evaluation of *"Network recovery
//! after massive failures"* (DSN 2016).
//!
//! The harness turns a declarative [`Scenario`] (topology × demand ×
//! disruption × algorithms × seeds) into aggregated results, and the
//! [`figures`] module encodes one ready-made scenario sweep per
//! data-bearing figure of the paper (Figs. 3–7 and 9). The `repro` binary
//! prints the resulting data series in a gnuplot-style format (and, with
//! `--out-dir`, writes CSV + gnuplot scripts via [`export`]); the
//! `netrec-cli` binary ([`cli`]) plans a single recovery end to end.
//! `EXPERIMENTS.md` records paper-vs-measured values.
//!
//! Above single scenarios sits the [`campaign`] engine: declarative
//! cartesian sweeps (`netrec-cli campaign run spec.json`) with sharded
//! execution, resumable journals, and a versioned, diffable report —
//! see `DESIGN.md` §10. `netrec-cli serve` ([`serve`]) boots the
//! resident recovery-as-a-service daemon over the same topology and
//! demand flags — see `DESIGN.md` §13.
//!
//! # Example
//!
//! ```no_run
//! use netrec_sim::figures;
//! let fig = figures::fig4(netrec_sim::figures::Scale::Smoke);
//! let table = netrec_sim::run_figure(&fig);
//! println!("{}", netrec_sim::render_table(&table));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod runner;
mod scenario;
mod stats;

pub mod campaign;
pub mod cli;
pub mod export;
pub mod figures;
pub mod precompute;
pub mod serve;

pub use campaign::{run_campaign, CampaignOptions, CampaignReport, CampaignSpec};
pub use netrec_core::solver::{SolverInfo, SolverSpec};
pub use runner::{
    run_figure, run_scenario, run_scenario_bounded, Figure, RunLimits, ScenarioResult,
};
pub use scenario::{Scenario, TopologySpec};
pub use stats::{render_table, summarize, FailurePoint, FigureTable, SeriesPoint, Summary};
