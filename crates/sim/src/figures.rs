//! One ready-made sweep per data-bearing figure of the paper.
//!
//! Figures 1, 2 (action diagrams) and 8 (a topology picture) carry no
//! data. Every other figure is encoded here as a [`Figure`] sweep:
//!
//! | id | paper setting | sweep |
//! |----|----------------|-------|
//! | fig3 | Bell-Canada, 4 pairs, full destruction | demand/pair, MCB/MCW/OPT/ALL |
//! | fig4 | Bell-Canada, 10 units/pair, full destruction | #pairs, all algorithms |
//! | fig5 | Bell-Canada, 4 pairs, full destruction | demand/pair, all algorithms |
//! | fig6 | Bell-Canada, 4 pairs, 10 units | Gaussian variance |
//! | fig7 | Erdős–Rényi, 5 unit pairs, cap 1000, full destruction | edge probability p |
//! | fig9 | CAIDA-like, 22 units/pair, Gaussian | #pairs |
//!
//! Solver line-ups are plain `Vec<SolverSpec>` — each spec carries its
//! configuration (OPT budgets, ISP ablations) inline, so a sweep point
//! is fully declarative. Every figure is available at three [`Scale`]s,
//! trading fidelity to the paper's instance sizes against wall-clock
//! time; `EXPERIMENTS.md` records which scale produced the reported
//! numbers.

use crate::runner::Figure;
use crate::scenario::{Scenario, TopologySpec};
use netrec_core::heuristics::opt::OptConfig;
use netrec_core::solver::SolverSpec;
use netrec_core::IspConfig;
use netrec_disrupt::DisruptionModel;
use netrec_topology::demand::DemandSpec;

/// How closely to match the paper's instance sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale: reduced sweeps, few runs, small OPT budgets. For CI
    /// and quick regression checks.
    Smoke,
    /// The default reproduction: full sweeps, moderate runs/budgets.
    Default,
    /// The paper's sizes (20 runs, big budgets). Hours-scale.
    Paper,
}

impl Scale {
    fn runs(&self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Default => 5,
            Scale::Paper => 20,
        }
    }

    fn opt_budget(&self) -> Option<usize> {
        match self {
            Scale::Smoke => Some(40),
            Scale::Default => Some(200),
            Scale::Paper => Some(20_000),
        }
    }
}

/// The budgeted OPT spec of a scale.
fn opt_spec(scale: Scale) -> SolverSpec {
    SolverSpec::Opt(OptConfig {
        node_budget: scale.opt_budget(),
        warm_start: true,
    })
}

/// The full §VI comparison line-up: ISP, OPT, SRT, both greedies, ALL.
fn comparison_solvers(scale: Scale) -> Vec<SolverSpec> {
    vec![
        SolverSpec::isp(),
        opt_spec(scale),
        SolverSpec::srt(),
        SolverSpec::grd_com(),
        SolverSpec::grd_nc(),
        SolverSpec::all(),
    ]
}

fn base(
    id: &str,
    x: f64,
    demand: DemandSpec,
    disruption: DisruptionModel,
    solvers: Vec<SolverSpec>,
    scale: Scale,
) -> Scenario {
    Scenario::new(
        format!("{id}@{x}"),
        x,
        TopologySpec::BellCanada,
        demand,
        disruption,
        solvers,
        scale.runs(),
        0xB311,
    )
}

/// Fig. 3 — total repairs of the multi-commodity relaxation extremes
/// (MCW, MCB) vs OPT and ALL on Bell-Canada, 4 pairs, increasing demand
/// flow per pair, complete destruction.
pub fn fig3(scale: Scale) -> Figure {
    let sweep: Vec<f64> = match scale {
        Scale::Smoke => vec![2.0, 10.0, 18.0],
        _ => vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0],
    };
    Figure {
        id: "fig3".into(),
        title:
            "Multi-commodity relaxation solution spread (Bell-Canada, 4 pairs, full destruction)"
                .into(),
        x_label: "demand flow per pair".into(),
        scenarios: sweep
            .into_iter()
            .map(|flow| {
                base(
                    "fig3",
                    flow,
                    DemandSpec::new(4, flow),
                    DisruptionModel::Complete,
                    vec![
                        opt_spec(scale),
                        SolverSpec::mcb(),
                        SolverSpec::mcw(),
                        SolverSpec::all(),
                    ],
                    scale,
                )
            })
            .collect(),
    }
}

/// Fig. 4 — repairs and demand loss vs number of demand pairs
/// (Bell-Canada, 10 flow units per pair, complete destruction).
pub fn fig4(scale: Scale) -> Figure {
    let sweep: Vec<usize> = match scale {
        Scale::Smoke => vec![1, 4, 7],
        _ => vec![1, 2, 3, 4, 5, 6, 7],
    };
    Figure {
        id: "fig4".into(),
        title: "Varying number of demand pairs (Bell-Canada, 10 units/pair, full destruction)"
            .into(),
        x_label: "number of demand pairs".into(),
        scenarios: sweep
            .into_iter()
            .map(|pairs| {
                base(
                    "fig4",
                    pairs as f64,
                    DemandSpec::new(pairs, 10.0),
                    DisruptionModel::Complete,
                    comparison_solvers(scale),
                    scale,
                )
            })
            .collect(),
    }
}

/// Fig. 5 — repairs and demand loss vs demand intensity (Bell-Canada,
/// 4 pairs, complete destruction).
pub fn fig5(scale: Scale) -> Figure {
    let sweep: Vec<f64> = match scale {
        Scale::Smoke => vec![2.0, 10.0, 18.0],
        _ => vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0],
    };
    Figure {
        id: "fig5".into(),
        title: "Varying demand intensity (Bell-Canada, 4 pairs, full destruction)".into(),
        x_label: "demand flow per pair".into(),
        scenarios: sweep
            .into_iter()
            .map(|flow| {
                base(
                    "fig5",
                    flow,
                    DemandSpec::new(4, flow),
                    DisruptionModel::Complete,
                    comparison_solvers(scale),
                    scale,
                )
            })
            .collect(),
    }
}

/// Fig. 6 — repairs and demand loss vs the extent of a geographically
/// correlated destruction (Bell-Canada, 4 pairs of 10 units, bi-variate
/// Gaussian centered at the barycenter).
pub fn fig6(scale: Scale) -> Figure {
    let sweep: Vec<f64> = match scale {
        Scale::Smoke => vec![10.0, 80.0, 150.0],
        _ => vec![10.0, 30.0, 50.0, 80.0, 110.0, 150.0],
    };
    Figure {
        id: "fig6".into(),
        title: "Varying the extent of destruction (Bell-Canada, 4 pairs, 10 units/pair)".into(),
        x_label: "variance of disruption".into(),
        scenarios: sweep
            .into_iter()
            .map(|variance| {
                base(
                    "fig6",
                    variance,
                    DemandSpec::new(4, 10.0),
                    DisruptionModel::gaussian(variance),
                    comparison_solvers(scale),
                    scale,
                )
            })
            .collect(),
    }
}

/// Fig. 7 — execution time and repairs vs Erdős–Rényi edge probability
/// (5 unit demand pairs, capacity 1000, complete destruction: a
/// Steiner-Forest-like regime where only connectivity matters).
///
/// The paper uses n = 100 and lets OPT run for up to 27 hours; the
/// Default scale uses n = 40 with a budgeted OPT, which preserves the
/// shape (OPT time explodes with p, ISP stays flat).
pub fn fig7(scale: Scale) -> Figure {
    let (n, sweep): (usize, Vec<f64>) = match scale {
        Scale::Smoke => (16, vec![0.2, 0.5, 0.9]),
        Scale::Default => (30, vec![0.1, 0.3, 0.5, 0.7, 0.9]),
        Scale::Paper => (100, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]),
    };
    // The MILP grows with p; keep the per-node LP cost bounded.
    let opt = SolverSpec::Opt(OptConfig {
        node_budget: Some(match scale {
            Scale::Smoke => 10,
            Scale::Default => 12,
            Scale::Paper => 2_000,
        }),
        warm_start: true,
    });
    Figure {
        id: "fig7".into(),
        title: format!("Erdős–Rényi scalability (n = {n}, 5 unit pairs, capacity 1000)"),
        x_label: "edge probability".into(),
        scenarios: sweep
            .into_iter()
            .map(|p| {
                Scenario::new(
                    format!("fig7@{p}"),
                    p,
                    TopologySpec::ErdosRenyi {
                        n,
                        p,
                        capacity: 1000.0,
                    },
                    DemandSpec::new(5, 1.0),
                    DisruptionModel::Complete,
                    vec![SolverSpec::isp(), SolverSpec::srt(), opt.clone()],
                    scale.runs(),
                    0xF167,
                )
            })
            .collect(),
    }
}

/// Fig. 9 — repairs and demand loss vs number of demand pairs on the
/// CAIDA-like topology (22 flow units per pair, geographically correlated
/// destruction).
///
/// The Default scale uses a 120-node / 148-edge CAIDA-style graph so the
/// budgeted OPT remains tractable; `Scale::Paper` uses the full
/// 825 / 1018 size with approximate routability inside ISP.
pub fn fig9(scale: Scale) -> Figure {
    let (nodes, edges, sweep): (usize, usize, Vec<usize>) = match scale {
        Scale::Smoke => (60, 74, vec![1, 4, 7]),
        Scale::Default => (120, 148, vec![1, 2, 3, 4, 5, 6, 7]),
        Scale::Paper => (825, 1018, vec![1, 2, 3, 4, 5, 6, 7]),
    };
    let isp = if scale == Scale::Paper {
        // Large instances: halving-search splits instead of the exact
        // Decision-2 LP.
        SolverSpec::Isp(IspConfig {
            exact_split_lp: false,
            ..Default::default()
        })
    } else {
        SolverSpec::isp()
    };
    // Large flow LPs per node: keep the budget small.
    let opt = SolverSpec::Opt(OptConfig {
        node_budget: Some(match scale {
            Scale::Smoke => 20,
            Scale::Default => 15,
            Scale::Paper => 500,
        }),
        warm_start: true,
    });
    Figure {
        id: "fig9".into(),
        title: format!("CAIDA-like topology ({nodes} nodes / {edges} edges, 22 units/pair)"),
        x_label: "number of demand pairs".into(),
        scenarios: sweep
            .into_iter()
            .map(|pairs| {
                let mut s = Scenario::new(
                    format!("fig9@{pairs}"),
                    pairs as f64,
                    TopologySpec::CaidaLike {
                        nodes,
                        edges,
                        capacity: 44.0,
                    },
                    DemandSpec::new(pairs, 22.0),
                    // Unit-square coordinates: σ² = 0.08 wipes out a wide
                    // central region, sparing most far-apart endpoints.
                    DisruptionModel::gaussian(0.08),
                    vec![isp.clone(), opt.clone(), SolverSpec::srt()],
                    scale.runs(),
                    0xCA1DA,
                );
                if scale == Scale::Default {
                    // Large instances: fewer runs keep the sweep tractable
                    // on one core (documented in EXPERIMENTS.md).
                    s.runs = 3;
                }
                s
            })
            .collect(),
    }
}

/// All figures at the given scale, in paper order.
pub fn all_figures(scale: Scale) -> Vec<Figure> {
    vec![
        fig3(scale),
        fig4(scale),
        fig5(scale),
        fig6(scale),
        fig7(scale),
        fig9(scale),
    ]
}

/// Looks a figure up by id (`fig3`, `fig4`, `fig5`, `fig6`, `fig7`,
/// `fig9`).
pub fn by_id(id: &str, scale: Scale) -> Option<Figure> {
    match id {
        "fig3" => Some(fig3(scale)),
        "fig4" => Some(fig4(scale)),
        "fig5" => Some(fig5(scale)),
        "fig6" => Some(fig6(scale)),
        "fig7" => Some(fig7(scale)),
        "fig9" => Some(fig9(scale)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_present() {
        let figs = all_figures(Scale::Smoke);
        assert_eq!(figs.len(), 6);
        let ids: Vec<&str> = figs.iter().map(|f| f.id.as_str()).collect();
        assert_eq!(ids, vec!["fig3", "fig4", "fig5", "fig6", "fig7", "fig9"]);
    }

    #[test]
    fn by_id_round_trip() {
        for id in ["fig3", "fig4", "fig5", "fig6", "fig7", "fig9"] {
            assert_eq!(by_id(id, Scale::Smoke).unwrap().id, id);
        }
        assert!(by_id("fig8", Scale::Smoke).is_none());
    }

    #[test]
    fn scales_change_sweep_sizes() {
        assert!(fig4(Scale::Smoke).scenarios.len() < fig4(Scale::Default).scenarios.len());
        assert_eq!(fig4(Scale::Paper).scenarios[0].runs, 20);
    }

    #[test]
    fn fig3_uses_relaxation_solvers() {
        let f = fig3(Scale::Smoke);
        let names: Vec<&str> = f.scenarios[0].solvers.iter().map(|s| s.name()).collect();
        assert!(names.contains(&"MCB"));
        assert!(names.contains(&"MCW"));
        assert!(!names.contains(&"ISP"));
    }

    #[test]
    fn opt_budgets_scale_with_fidelity() {
        for (scale, budget) in [
            (Scale::Smoke, 40),
            (Scale::Default, 200),
            (Scale::Paper, 20_000),
        ] {
            let f = fig4(scale);
            let opt = f.scenarios[0]
                .solvers
                .iter()
                .find_map(|s| match s {
                    SolverSpec::Opt(config) => Some(config.clone()),
                    _ => None,
                })
                .expect("fig4 runs OPT");
            assert_eq!(opt.node_budget, Some(budget));
        }
    }

    #[test]
    fn fig9_paper_scale_uses_approximations() {
        let f = fig9(Scale::Paper);
        let isp = f.scenarios[0]
            .solvers
            .iter()
            .find_map(|s| match s {
                SolverSpec::Isp(config) => Some(config.clone()),
                _ => None,
            })
            .expect("fig9 runs ISP");
        assert!(!isp.exact_split_lp);
    }
}
