//! The `netrec-cli precompute` subcommand: offline routability sweep.
//!
//! Sweeps disruption classes of one base instance — every single
//! component cut, seeded random k-edge cuts, and geographically
//! correlated (Gaussian) failures — scores each state with the exact
//! LP oracle, and stores what the sweep proved in a
//! [`RoutabilityArtifact`](netrec_core::RoutabilityArtifact) file:
//! per-state verdicts keyed by canonical subgraph fingerprints,
//! monotone routable/unroutable witnesses, and cut certificates.
//! `netrec-cli serve --artifact` and `--oracle artifact:path=…` then
//! answer matching queries from the file without touching an LP.
//!
//! The sweep shards across threads, but each shard accumulates into
//! its own builder and the shards merge in index order — the artifact
//! bytes are a function of the flags alone, never of scheduling.

use crate::cli::{build_problem, CliOptions, UsageError};
use netrec_core::oracle::artifact::ArtifactBuilder;
use netrec_core::{OracleBuilder, OracleSpec};
use netrec_disrupt::DisruptionModel;
use std::path::Path;

/// The `precompute --help` quickstart.
pub const HELP: &str = "\
netrec-cli precompute — offline routability sweep into a reusable artifact

usage: netrec-cli precompute --out PATH [options]
  --topology SPEC      instance to sweep (same specs as the
                       one-shot CLI)                     (default bell)
  --pairs N / --flow F generated demand                  (default 4 x 10)
  --demand s,t,amount  explicit demand (repeatable; overrides --pairs)
  --seed N             RNG seed for topology/demand      (default 42)
  --out PATH           artifact destination (required)
  --classes LIST       comma list of single-cut,k-cut,geo (default all)
  --k N                simultaneous edge failures per k-cut
                       sample                            (default 2)
  --samples N          sampled states per stochastic class (default 64)
  --geo SPEC           Gaussian model for the geo class
                       (default gaussian:0.05)
  --shards N           parallel sweep shards (deterministic at any
                       count)                  (default: cores, max 8)
  --help

Every swept state is scored with the exact LP oracle; the artifact
stores proven verdicts, monotone witnesses, and cut certificates in a
checksummed container file. `netrec-cli serve --artifact PATH` and
`--oracle artifact:path=PATH` answer matching queries from the file
in O(1)–O(|E|) and fall through to the live oracle otherwise —
attaching an artifact never changes an answer, only its cost and its
reported answer_source (DESIGN.md §15).
";

/// One disruption class the sweep can cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepClass {
    /// The intact state plus every single-node and single-edge cut.
    SingleCut,
    /// Seeded random simultaneous k-edge cuts.
    KCut,
    /// Geographically correlated (Gaussian) failure draws.
    Geo,
}

impl SweepClass {
    /// The stable CLI name (`--classes` tokens and artifact labels).
    pub fn as_str(&self) -> &'static str {
        match self {
            SweepClass::SingleCut => "single-cut",
            SweepClass::KCut => "k-cut",
            SweepClass::Geo => "geo",
        }
    }

    /// Parses a `--classes` token.
    pub fn parse(s: &str) -> Option<SweepClass> {
        match s {
            "single-cut" => Some(SweepClass::SingleCut),
            "k-cut" => Some(SweepClass::KCut),
            "geo" => Some(SweepClass::Geo),
            _ => None,
        }
    }
}

/// Parsed `precompute` options.
#[derive(Debug, Clone)]
pub struct PrecomputeOptions {
    /// Instance construction (topology, demand, seed).
    pub problem: CliOptions,
    /// Artifact destination path.
    pub out: String,
    /// Classes to sweep, in sweep order.
    pub classes: Vec<SweepClass>,
    /// Edges cut simultaneously per k-cut sample.
    pub k: usize,
    /// Sampled states per stochastic class (k-cut, geo).
    pub samples: usize,
    /// The geo class model (always `Gaussian`).
    pub geo: DisruptionModel,
    /// Sweep shards (threads). The artifact is identical at any count.
    pub shards: usize,
}

/// Parses `precompute` argv (without the leading `precompute`).
///
/// # Errors
///
/// A [`UsageError`] for the first malformed argument.
pub fn parse_args(args: &[String]) -> Result<PrecomputeOptions, UsageError> {
    let mut problem_args: Vec<String> = Vec::new();
    let mut out = None;
    let mut classes = vec![SweepClass::SingleCut, SweepClass::KCut, SweepClass::Geo];
    let mut k = 2usize;
    let mut samples = 64usize;
    let mut geo = DisruptionModel::gaussian(0.05);
    let mut shards = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1);
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| UsageError("missing value for --out".into()))?,
                );
            }
            "--classes" => {
                i += 1;
                let list = args
                    .get(i)
                    .ok_or_else(|| UsageError("missing value for --classes".into()))?;
                classes = list
                    .split(',')
                    .map(str::trim)
                    .filter(|t| !t.is_empty())
                    .map(|t| {
                        SweepClass::parse(t).ok_or_else(|| {
                            UsageError(format!("unknown class `{t}`; use single-cut, k-cut, geo"))
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if classes.is_empty() {
                    return Err(UsageError("--classes selected nothing".into()));
                }
            }
            "--k" => {
                i += 1;
                k = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 2)
                    .ok_or_else(|| UsageError("--k needs an integer >= 2".into()))?;
            }
            "--samples" => {
                i += 1;
                samples = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| UsageError("--samples needs a positive integer".into()))?;
            }
            "--geo" => {
                i += 1;
                let spec = args
                    .get(i)
                    .ok_or_else(|| UsageError("missing value for --geo".into()))?;
                let model =
                    DisruptionModel::parse(spec).map_err(|e| UsageError(format!("--geo: {e}")))?;
                if !matches!(model, DisruptionModel::Gaussian { .. }) {
                    return Err(UsageError(format!(
                        "--geo must be a gaussian:<variance> model, got `{spec}`"
                    )));
                }
                geo = model;
            }
            "--shards" => {
                i += 1;
                shards = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| UsageError("--shards needs a positive integer".into()))?;
            }
            _ => problem_args.push(args[i].clone()),
        }
        i += 1;
    }
    let mut problem = crate::cli::parse_args(&problem_args)?;
    // The artifact describes the *intact* base instance; damage comes
    // from the sweep classes, never from a boot disruption.
    if problem_args.iter().any(|a| a == "--disrupt") {
        return Err(UsageError(
            "precompute does not take --disrupt; damage comes from --classes".into(),
        ));
    }
    problem.disrupt = DisruptionModel::Uniform { probability: 0.0 };
    if problem.list_algorithms || problem.report || problem.schedule_budget.is_some() {
        return Err(UsageError(
            "precompute does not take --list-algorithms/--report/--schedule".into(),
        ));
    }
    let out = out.ok_or_else(|| UsageError("precompute requires --out PATH".into()))?;
    Ok(PrecomputeOptions {
        problem,
        out,
        classes,
        k,
        samples,
        geo,
        shards,
    })
}

/// Deterministic splitmix64 step (the sweep's only randomness source;
/// no RNG state leaves this module, so the state list is a pure
/// function of the seed).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One sweep state: which nodes and edges are up.
struct SweepState {
    nodes_up: Vec<bool>,
    edges_up: Vec<bool>,
}

/// Runs the sweep and writes the artifact, returning the human report.
///
/// # Errors
///
/// Usage errors from problem construction, LP failures during scoring,
/// or filesystem errors writing the artifact.
pub fn run(opts: &PrecomputeOptions) -> Result<String, UsageError> {
    let (topology, _disruption, problem, _demands) = build_problem(&opts.problem)?;
    let graph = problem.graph();
    let demands = problem.demands();
    let n = graph.node_count();
    let m = graph.edge_count();

    // Enumerate the sweep states in a fixed, documented order: the
    // artifact bytes depend only on this list and the scoring answers.
    let mut states: Vec<SweepState> = Vec::new();
    let mut per_class: Vec<(SweepClass, usize)> = Vec::new();
    for class in &opts.classes {
        let before = states.len();
        match class {
            SweepClass::SingleCut => {
                states.push(SweepState {
                    nodes_up: vec![true; n],
                    edges_up: vec![true; m],
                });
                for e in 0..m {
                    let mut edges_up = vec![true; m];
                    edges_up[e] = false;
                    states.push(SweepState {
                        nodes_up: vec![true; n],
                        edges_up,
                    });
                }
                for v in 0..n {
                    let mut nodes_up = vec![true; n];
                    nodes_up[v] = false;
                    states.push(SweepState {
                        nodes_up,
                        edges_up: vec![true; m],
                    });
                }
            }
            SweepClass::KCut => {
                let mut rng = opts.problem.seed ^ 0x6b63_7574; // "kcut"
                for _ in 0..opts.samples {
                    let mut edges_up = vec![true; m];
                    let mut cut = 0usize;
                    // Rejection-sample k distinct edges; k ≥ m cuts all.
                    while cut < opts.k.min(m) {
                        let e = (splitmix(&mut rng) as usize) % m.max(1);
                        if edges_up[e] {
                            edges_up[e] = false;
                            cut += 1;
                        }
                    }
                    states.push(SweepState {
                        nodes_up: vec![true; n],
                        edges_up,
                    });
                }
            }
            SweepClass::Geo => {
                for i in 0..opts.samples {
                    let d = opts.geo.apply(&topology, opts.problem.seed ^ (i as u64));
                    states.push(SweepState {
                        nodes_up: d.broken_nodes.iter().map(|&b| !b).collect(),
                        edges_up: d.broken_edges.iter().map(|&b| !b).collect(),
                    });
                }
            }
        }
        per_class.push((*class, states.len() - before));
    }

    // Score the states in shards: contiguous chunks, one exact oracle
    // and one builder per shard, merged in shard order.
    let shard_count = opts.shards.min(states.len()).max(1);
    let chunk = states.len().div_ceil(shard_count);
    let shard_results: Vec<Result<ArtifactBuilder, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = states
            .chunks(chunk)
            .map(|shard_states| {
                let demands = &demands;
                scope.spawn(move || {
                    let oracle = OracleBuilder::new(OracleSpec::Exact)
                        .build()
                        .map_err(|e| e.to_string())?;
                    let mut builder = ArtifactBuilder::new(graph, demands);
                    for state in shard_states {
                        let view = graph
                            .view()
                            .with_node_mask(&state.nodes_up)
                            .with_edge_mask(&state.edges_up);
                        let routable = oracle
                            .is_routable(&view, demands)
                            .map_err(|e| e.to_string())?;
                        builder.record(&view, demands, routable);
                    }
                    Ok(builder)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep shard panicked"))
            .collect()
    });
    let mut merged: Option<ArtifactBuilder> = None;
    for result in shard_results {
        let shard = result.map_err(|e| UsageError(format!("precompute sweep failed: {e}")))?;
        match &mut merged {
            None => merged = Some(shard),
            Some(all) => all.merge(shard),
        }
    }
    let merged = merged
        .ok_or_else(|| UsageError("precompute swept no states (empty class list?)".into()))?;

    let class_labels: Vec<String> = per_class
        .iter()
        .map(|(c, _)| c.as_str().to_string())
        .collect();
    let artifact = merged.finish(topology.name(), &class_labels);
    artifact
        .save(Path::new(&opts.out), true)
        .map_err(|e| UsageError(format!("cannot write artifact to {}: {e}", opts.out)))?;

    let mut report = format!(
        "precompute: swept {} states of {} ({} nodes, {} edges, {} demand pairs)\n",
        artifact.source_states(),
        topology.name(),
        n,
        m,
        demands.len(),
    );
    for (class, count) in &per_class {
        report.push_str(&format!(
            "precompute:   {}: {} states\n",
            class.as_str(),
            count
        ));
    }
    report.push_str(&format!(
        "precompute: artifact: {} verdicts, {} witnesses, {} cuts -> {}\n",
        artifact.verdict_count(),
        artifact.witness_count(),
        artifact.cut_count(),
        opts.out,
    ));
    Ok(report)
}

/// Parses and runs in one call (the binary's entry point).
///
/// # Errors
///
/// See [`parse_args`] and [`run`].
pub fn main(args: &[String]) -> Result<String, UsageError> {
    let opts = parse_args(args)?;
    run(&opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrec_core::RoutabilityArtifact;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "netrec-precompute-{name}-{}.nra",
            std::process::id()
        ))
    }

    #[test]
    fn parses_flags_and_rejects_bad_values() {
        let o = parse_args(&args(&[
            "--topology",
            "er:10:0.5",
            "--out",
            "/tmp/a.nra",
            "--classes",
            "single-cut,geo",
            "--k",
            "3",
            "--samples",
            "5",
            "--geo",
            "gaussian:0.2",
            "--shards",
            "2",
        ]))
        .unwrap();
        assert_eq!(o.out, "/tmp/a.nra");
        assert_eq!(o.classes, vec![SweepClass::SingleCut, SweepClass::Geo]);
        assert_eq!(o.k, 3);
        assert_eq!(o.samples, 5);
        assert_eq!(o.shards, 2);
        assert!(matches!(o.geo, DisruptionModel::Gaussian { .. }));

        assert!(parse_args(&[]).is_err(), "--out is required");
        assert!(parse_args(&args(&["--out", "a", "--classes", "banana"])).is_err());
        assert!(parse_args(&args(&["--out", "a", "--classes", ""])).is_err());
        assert!(parse_args(&args(&["--out", "a", "--k", "1"])).is_err());
        assert!(parse_args(&args(&["--out", "a", "--samples", "0"])).is_err());
        assert!(parse_args(&args(&["--out", "a", "--geo", "uniform:0.5"])).is_err());
        assert!(parse_args(&args(&["--out", "a", "--shards", "0"])).is_err());
        assert!(parse_args(&args(&["--out", "a", "--disrupt", "complete"])).is_err());
        assert!(parse_args(&args(&["--out", "a", "--report"])).is_err());
    }

    #[test]
    fn sweep_is_shard_count_invariant_and_loadable() {
        let flags = [
            "--topology",
            "er:10:0.5",
            "--pairs",
            "2",
            "--flow",
            "1",
            "--seed",
            "7",
            "--samples",
            "4",
        ];
        let a = tmp("shard1");
        let b = tmp("shard4");
        let mut one = args(&flags);
        one.extend(args(&["--shards", "1", "--out", a.to_str().unwrap()]));
        let mut four = args(&flags);
        four.extend(args(&["--shards", "4", "--out", b.to_str().unwrap()]));
        let report = main(&one).unwrap();
        assert!(report.contains("precompute: artifact:"), "{report}");
        main(&four).unwrap();
        assert_eq!(
            std::fs::read(&a).unwrap(),
            std::fs::read(&b).unwrap(),
            "artifact bytes must not depend on the shard count"
        );
        // The file round-trips through the typed loader and matches the
        // instance the flags describe.
        let artifact = RoutabilityArtifact::load(&a).unwrap();
        assert!(artifact.source_states() > 10);
        assert!(artifact.verdict_count() > 0);
        assert_eq!(
            artifact.classes(),
            ["single-cut", "k-cut", "geo"],
            "{:?}",
            artifact.classes()
        );
        let opts = parse_args(&one).unwrap();
        let (_, _, problem, _) = build_problem(&opts.problem).unwrap();
        assert!(artifact.matches(problem.graph(), &problem.demands()));
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn precompute_feeds_serve_with_single_cut_hits() {
        let path = tmp("serve-rt");
        let flags = [
            "--topology",
            "bell",
            "--pairs",
            "2",
            "--flow",
            "1",
            "--seed",
            "5",
        ];
        let mut pre = args(&flags);
        pre.extend(args(&[
            "--classes",
            "single-cut",
            "--out",
            path.to_str().unwrap(),
        ]));
        main(&pre).unwrap();

        // Boot the daemon on the same flags with the swept artifact: the
        // intact boot state and every single-edge cut were precomputed,
        // so both queries must answer from the artifact tier.
        let mut serve_flags = args(&flags);
        serve_flags.extend(args(&["--artifact", path.to_str().unwrap()]));
        let opts = crate::serve::parse_args(&serve_flags).unwrap();
        let (engine, banner) = crate::serve::boot_engine(&opts).unwrap();
        assert!(banner.contains("artifact loaded"), "{banner}");
        let r = engine.process_line("{\"v\":1,\"id\":\"a\",\"op\":\"query_routability\"}");
        assert!(r.contains("\"answer_source\":\"artifact\""), "{r}");
        let r = engine
            .process_line("{\"v\":1,\"id\":\"b\",\"op\":\"disrupt\",\"edges\":[0],\"cost\":1.0}");
        assert!(r.contains("\"ok\":true"), "{r}");
        let r = engine.process_line("{\"v\":1,\"id\":\"c\",\"op\":\"query_routability\"}");
        assert!(r.contains("\"answer_source\":\"artifact\""), "{r}");
        let _ = std::fs::remove_file(&path);
    }
}
