//! The `netrec-cli serve` subcommand: boot the resident daemon.
//!
//! Argument parsing and daemon assembly live here (unit-tested); the
//! binary hands `serve …` argv straight to [`run`]. The topology,
//! demand, and disruption flags mirror the one-shot CLI — the daemon
//! starts from exactly the problem a one-shot invocation would solve —
//! except that `--disrupt` defaults to `none`: a resident process
//! receives its damage as live `disrupt` events rather than at boot.

use crate::cli::{build_problem, CliOptions, UsageError};
use netrec_core::solver::SolverSpec;
use netrec_core::FaultPlan;
use netrec_disrupt::DisruptionModel;
use netrec_serve::{Engine, Server, ServerConfig, SyncPolicy, Wal};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The `serve --help` quickstart.
pub const HELP: &str = "\
netrec-cli serve — resident recovery-as-a-service daemon

usage: netrec-cli serve [options]
  --topology SPEC      topology to load once (same specs as the
                       one-shot CLI)                     (default bell)
  --pairs N / --flow F generated demand                  (default 4 x 10)
  --demand s,t,amount  explicit demand (repeatable; overrides --pairs)
  --disrupt MODEL      damage applied at boot            (default none —
                       stream `disrupt` events instead)
  --seed N             RNG seed for topology/demand      (default 42)
  --algo SPEC          default solver for query_plan     (default isp)
  --workers N          worker threads                    (default 4)
  --tcp ADDR           also listen on ADDR (e.g. 127.0.0.1:7007);
                       the bound address is printed to stderr
  --max-queue N        global bound on admitted-not-done requests;
                       past it requests shed with a typed
                       `overloaded` error + retry_after_ms (default 1024)
  --max-session-queue N  per-session pending bound       (default 256)
  --read-timeout-ms N  TCP read poll / hung-client bound (default 200)
  --restore PATH       restore a session persisted by
                       `snapshot` with `path` (repeatable)
  --artifact PATH      load a precomputed routability artifact
                       (`netrec-cli precompute`); every session answers
                       `query_routability` from it when it can
                       (replies say \"answer_source\":\"artifact\") and
                       falls through to the live oracle otherwise
  --wal DIR            write-ahead event log: every admitted request is
                       appended (checksummed, segmented) and made
                       durable before its reply is released; replies
                       carry \"wal_seq\", and a restarted daemon replays
                       checkpoint + log so no acknowledged event is
                       lost (torn tails are salvaged with a warning)
  --wal-sync MODE      durability policy: `always` (fsync per append),
                       `interval:MS` (background flusher), or `off`
                       (OS-buffered)                   (default always)
  --wal-segment-records N  log records per segment file; also the
                       checkpoint cadence                (default 1024)
  --supervise          self-healing respawn loop: run the daemon as a
                       child, restart it on crashes with exponential
                       backoff (50ms doubling to 2s; recovery comes
                       from --wal), and give up with a nonzero exit
                       after 5 rapid crashes in a row
  --faults SPEC        arm the deterministic fault-injection plane
                       (chaos testing; also read from NETREC_FAULTS),
                       e.g. 'seed=7;panic@12;solve_error=0.1;latency=1:5'.
                       Crash drills (need --wal): `crash@I` aborts the
                       process at request index I before the event is
                       logged; `wal_torn@I` aborts midway through the
                       append, leaving a torn tail for boot salvage.
                       Both also take seeded rates (`crash=0.01`),
                       decorrelated per kind and independent of
                       --workers.
  --help

protocol: one JSON object per line on stdin (and per TCP connection),
one response line per request on stdout, in request order. Every
request carries {\"v\":1,\"id\":...,\"op\":...} and an optional
\"session\" (default \"default\"); sessions are independent overlays
of the loaded topology. Ops:

  {\"v\":1,\"id\":\"d1\",\"op\":\"disrupt\",\"nodes\":[3],\"edges\":[7,9],\"cost\":2.0}
  {\"v\":1,\"id\":\"r1\",\"op\":\"repair\",\"edges\":[7]}
  {\"v\":1,\"id\":\"m1\",\"op\":\"demand\",\"pairs\":[[0,9,5.0]],\"replace\":true}
  {\"v\":1,\"id\":\"q1\",\"op\":\"query_routability\"}
  {\"v\":1,\"id\":\"p1\",\"op\":\"query_plan\",\"solver\":\"isp\",\"deadline_ms\":250}
  {\"v\":1,\"id\":\"s1\",\"op\":\"snapshot\",\"fork\":\"what-if\"}
  {\"v\":1,\"id\":\"h1\",\"op\":\"health\"}
  {\"v\":1,\"id\":\"z\",\"op\":\"shutdown\"}

`health` is answered immediately at admission — never queued, shed,
or written to the log — and reports uptime_ms, sessions, queue depth,
and (under --wal) wal_seq, wal_durable_seq, and last_fsync_lag_ms.

Responses echo the id and carry the session's generation fingerprint
plus per-request oracle counters; errors are typed
({\"ok\":false,\"error\":{\"kind\":\"deadline_exceeded\",...}}) and never
tear down the session. A latency summary (p50/p99 per op) is printed
to stderr on shutdown. See DESIGN.md §13 for the full grammar.

failure containment (DESIGN.md §14): a panic while a request executes
becomes a typed `internal_error` reply and poisons only that session
(later requests answer `session_poisoned`); queue bounds shed load
with `overloaded` + retry_after_ms; `query_routability`/`query_plan`
accept \"degraded_ok\":true for certified-threshold / last-known-good
fallbacks marked \"degraded\":true; `snapshot` with \"path\" persists
the session atomically for `--restore` after a crash.

durability (DESIGN.md §16): with --wal, an event's reply is released
only after its log record is durable per --wal-sync, so anything a
client saw acknowledged survives a kill -9 and is replayed at the
next boot byte-for-byte. Checkpoints (every --wal-segment-records
events) bound replay time and truncate old segments. `--supervise`
closes the loop: crash, respawn, recover, resume.
";

/// Parsed `serve` options: the shared problem flags plus daemon knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Problem construction (topology, demand, boot disruption, seed).
    pub problem: CliOptions,
    /// Default solver for `query_plan` requests naming none.
    pub default_algo: SolverSpec,
    /// Worker pool size.
    pub workers: usize,
    /// Optional TCP listen address.
    pub tcp: Option<String>,
    /// Overload-control and transport-hardening knobs.
    pub config: ServerConfig,
    /// Fault plan from `--faults` (the env var is merged at boot).
    pub faults: Option<FaultPlan>,
    /// Session snapshot files to restore at boot.
    pub restore: Vec<String>,
    /// Precomputed routability artifact to front every session with.
    pub artifact: Option<String>,
    /// Write-ahead log directory (`--wal`); `None` = durability off.
    pub wal: Option<String>,
    /// Durability policy for WAL appends (`--wal-sync`).
    pub wal_sync: SyncPolicy,
    /// Records per WAL segment and checkpoint cadence
    /// (`--wal-segment-records`).
    pub wal_segment_records: u64,
    /// Run under the self-healing respawn loop (`--supervise`).
    pub supervise: bool,
}

/// Parses `serve` argv (without the leading `serve`).
///
/// # Errors
///
/// A [`UsageError`] for the first malformed argument.
pub fn parse_args(args: &[String]) -> Result<ServeOptions, UsageError> {
    // Reuse the one-shot parser for the shared problem flags by
    // splitting daemon-only flags out first.
    let mut problem_args: Vec<String> = Vec::new();
    let mut workers = 4usize;
    let mut tcp = None;
    let mut config = ServerConfig::default();
    let mut faults = None;
    let mut restore = Vec::new();
    let mut artifact = None;
    let mut wal = None;
    let mut wal_sync = None;
    let mut wal_segment_records = None;
    let mut supervise = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                i += 1;
                workers = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&w: &usize| w > 0)
                    .ok_or_else(|| UsageError("--workers needs a positive integer".into()))?;
            }
            "--tcp" => {
                i += 1;
                tcp = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| UsageError("missing value for --tcp".into()))?,
                );
            }
            "--max-queue" => {
                i += 1;
                config.max_queue = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| UsageError("--max-queue needs a positive integer".into()))?;
            }
            "--max-session-queue" => {
                i += 1;
                config.max_session_queue = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| {
                        UsageError("--max-session-queue needs a positive integer".into())
                    })?;
            }
            "--read-timeout-ms" => {
                i += 1;
                let ms: u64 = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &u64| n > 0)
                    .ok_or_else(|| {
                        UsageError("--read-timeout-ms needs a positive integer".into())
                    })?;
                config.read_timeout = Duration::from_millis(ms);
            }
            "--faults" => {
                i += 1;
                let spec = args
                    .get(i)
                    .ok_or_else(|| UsageError("missing value for --faults".into()))?;
                faults =
                    Some(FaultPlan::parse(spec).map_err(|e| UsageError(format!("--faults: {e}")))?);
            }
            "--restore" => {
                i += 1;
                restore.push(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| UsageError("missing value for --restore".into()))?,
                );
            }
            "--artifact" => {
                i += 1;
                artifact = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| UsageError("missing value for --artifact".into()))?,
                );
            }
            "--wal" => {
                i += 1;
                wal = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| UsageError("missing value for --wal".into()))?,
                );
            }
            "--wal-sync" => {
                i += 1;
                let spec = args
                    .get(i)
                    .ok_or_else(|| UsageError("missing value for --wal-sync".into()))?;
                wal_sync = Some(
                    SyncPolicy::parse(spec).map_err(|e| UsageError(format!("--wal-sync: {e}")))?,
                );
            }
            "--wal-segment-records" => {
                i += 1;
                wal_segment_records = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .ok_or_else(|| {
                            UsageError("--wal-segment-records needs a positive integer".into())
                        })?,
                );
            }
            "--supervise" => supervise = true,
            _ => problem_args.push(args[i].clone()),
        }
        i += 1;
    }
    let mut problem = crate::cli::parse_args(&problem_args)?;
    // The daemon default: no boot damage unless explicitly asked for.
    if !problem_args.iter().any(|a| a == "--disrupt") {
        problem.disrupt = DisruptionModel::Uniform { probability: 0.0 };
    }
    if problem.list_algorithms || problem.report || problem.schedule_budget.is_some() {
        return Err(UsageError(
            "serve does not take --list-algorithms/--report/--schedule".into(),
        ));
    }
    if wal.is_none() && (wal_sync.is_some() || wal_segment_records.is_some()) {
        return Err(UsageError(
            "--wal-sync/--wal-segment-records need --wal DIR".into(),
        ));
    }
    let default_algo = problem.algorithm.clone();
    Ok(ServeOptions {
        problem,
        default_algo,
        workers,
        tcp,
        config,
        faults,
        restore,
        artifact,
        wal,
        wal_sync: wal_sync.unwrap_or(SyncPolicy::Always),
        wal_segment_records: wal_segment_records.unwrap_or(Wal::SEGMENT_RECORDS),
        supervise,
    })
}

/// Boots the engine the options describe (shared by [`run`] and the
/// integration tests, which drive it without process IO): builds the
/// problem, arms the fault plan (`--faults` wins over `NETREC_FAULTS`),
/// and restores any `--restore` snapshots.
///
/// # Errors
///
/// Usage errors from problem construction, a malformed `NETREC_FAULTS`
/// value, or an unrestorable snapshot file.
pub fn boot_engine(opts: &ServeOptions) -> Result<(Arc<Engine>, String), UsageError> {
    let (topology, disruption, problem, demands) = build_problem(&opts.problem)?;
    let mut banner = format!(
        "serve: loaded {} ({} nodes, {} edges), {} demand pairs, {} nodes + {} edges broken at boot",
        topology.name(),
        topology.graph().node_count(),
        topology.graph().edge_count(),
        demands.len(),
        disruption.node_count(),
        disruption.edge_count(),
    );
    let faults = match &opts.faults {
        Some(plan) => Some(plan.clone()),
        None => FaultPlan::from_env().map_err(|e| UsageError(format!("NETREC_FAULTS: {e}")))?,
    };
    let mut engine = Engine::new(problem, opts.default_algo.clone());
    if let Some(plan) = faults {
        banner.push_str(&format!("\nserve: fault injection armed: {plan}"));
        engine = engine.with_faults(plan);
    }
    if let Some(path) = &opts.artifact {
        let artifact = netrec_core::RoutabilityArtifact::cached_load(std::path::Path::new(path))
            .map_err(|e| UsageError(format!("--artifact: {path}: {e}")))?;
        if !artifact.matches(engine.base().graph(), &engine.base().demands()) {
            return Err(UsageError(format!(
                "--artifact: {path}: precomputed for a different topology/demand \
                 instance than the one being served"
            )));
        }
        banner.push_str(&format!(
            "\nserve: artifact loaded from {path}: {} verdicts, {} witnesses, {} cuts \
             (swept {} states of {})",
            artifact.verdict_count(),
            artifact.witness_count(),
            artifact.cut_count(),
            artifact.source_states(),
            artifact.topology(),
        ));
        engine = engine.with_artifact(artifact);
    }
    // Write-ahead recovery runs before --restore: the log is the
    // authority on everything the daemon already acknowledged, and a
    // --restore of a session the log resurrects is skipped (that makes
    // a supervised respawn's argv idempotent).
    let wal = match &opts.wal {
        Some(dir) => {
            let dir = std::path::Path::new(dir);
            let (wal, boot) = Wal::open(dir, opts.wal_sync, opts.wal_segment_records)
                .map_err(|e| UsageError(format!("--wal: {}: {e}", dir.display())))?;
            for warning in &boot.warnings {
                banner.push_str(&format!("\nserve: wal: {warning}"));
            }
            let checkpoint_sessions = match &boot.checkpoint {
                Some(doc) => engine
                    .restore_checkpoint(doc)
                    .map_err(|e| UsageError(format!("--wal: checkpoint: {e}")))?,
                None => 0,
            };
            let mut replayed = 0usize;
            for record in &boot.records {
                if let Err(e) = engine.apply_replay(&record.line) {
                    banner.push_str(&format!(
                        "\nserve: wal: replay stopped at seq {}: {e}",
                        record.seq
                    ));
                    break;
                }
                replayed += 1;
            }
            banner.push_str(&format!(
                "\nserve: wal armed at {} (sync {}): {checkpoint_sessions} session(s) from \
                 checkpoint, {replayed} event(s) replayed, next seq {}",
                wal.dir().display(),
                wal.policy(),
                wal.appended_seq() + 1,
            ));
            Some(wal)
        }
        None => None,
    };
    for path in &opts.restore {
        match engine.restore_from_file(std::path::Path::new(path)) {
            Ok(report) => {
                banner.push_str(&format!(
                    "\nserve: restored session {:?} from {path}",
                    report.session
                ));
                if let Some(w) = report.warning {
                    banner.push_str(&format!("\nserve: restore: {path}: {w}"));
                }
            }
            Err(e) if wal.is_some() && e.contains("already exists") => {
                banner.push_str(&format!(
                    "\nserve: restore: {path} skipped: the write-ahead log already \
                     rebuilt that session"
                ));
            }
            Err(e) => return Err(UsageError(format!("--restore: {e}"))),
        }
    }
    if let Some(wal) = wal {
        // Sessions arriving via --restore are not in the log, so fold
        // them into a fresh checkpoint before serving: a crash before
        // the first runtime checkpoint must not lose them.
        if !opts.restore.is_empty() {
            let doc = engine
                .checkpoint_doc(wal.appended_seq())
                .map_err(|e| UsageError(format!("--wal: boot checkpoint: {e}")))?;
            wal.install_checkpoint(&doc)
                .map_err(|e| UsageError(format!("--wal: boot checkpoint: {e}")))?;
        }
        let wal = Arc::new(wal);
        engine.attach_wal(Arc::clone(&wal));
        Wal::spawn_flusher(&wal);
    }
    Ok((Arc::new(engine), banner))
}

/// Runs the daemon over stdin/stdout (and `--tcp` when given) until a
/// `shutdown` request or stdin EOF with no TCP listener. Returns the
/// process exit code; the boot banner and the shutdown latency summary
/// go to stderr so stdout stays pure protocol.
///
/// # Errors
///
/// Usage errors for malformed argv or an unbindable TCP address.
pub fn run(args: &[String]) -> Result<i32, UsageError> {
    let opts = parse_args(args)?;
    if opts.supervise {
        return supervise(args, &opts);
    }
    let (engine, banner) = boot_engine(&opts)?;
    eprintln!("{banner}");

    let server = Arc::new(Server::with_config(
        Arc::clone(&engine),
        opts.workers,
        opts.config.clone(),
    ));
    let acceptor = match &opts.tcp {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr)
                .map_err(|e| UsageError(format!("cannot listen on {addr}: {e}")))?;
            let bound = listener
                .local_addr()
                .map_err(|e| UsageError(e.to_string()))?;
            eprintln!("serve: listening on {bound}");
            let server = Arc::clone(&server);
            Some(std::thread::spawn(move || server.serve_tcp(listener)))
        }
        None => None,
    };

    let stdin = std::io::stdin();
    let stdout = StdoutSink;
    server.serve_connection(stdin.lock(), Box::new(stdout));

    if let Some(acceptor) = acceptor {
        // Stdin is done; keep serving TCP until a shutdown arrives.
        let _ = acceptor.join();
    }
    let report = Arc::try_unwrap(server)
        .ok()
        .expect("all transports stopped; sole owner")
        .finish();
    eprint!("{}", report.render());
    Ok(0)
}

/// First respawn delay after a crash; doubles per consecutive crash.
const BACKOFF_START: Duration = Duration::from_millis(50);
/// Ceiling on the respawn backoff.
const BACKOFF_CAP: Duration = Duration::from_secs(2);
/// A child that dies faster than this counts toward the crash loop.
const FAST_CRASH: Duration = Duration::from_secs(1);
/// Consecutive fast crashes before the supervisor gives up.
const CRASH_LOOP_LIMIT: u32 = 5;

/// The `--supervise` respawn loop: re-exec this binary as `serve` with
/// the same argv (minus `--supervise`), inheriting stdio, and restart
/// it whenever it dies abnormally. Recovery is the child's job — it
/// replays `--wal` at boot — so the supervisor stays a dumb loop:
/// exponential backoff between respawns, and after
/// [`CRASH_LOOP_LIMIT`] consecutive sub-[`FAST_CRASH`] lifetimes it
/// stops masking what is clearly a deterministic crash and exits
/// nonzero. A clean child exit (code 0, e.g. `shutdown`) ends the loop.
///
/// # Errors
///
/// A [`UsageError`] when the binary cannot be located or spawned.
fn supervise(args: &[String], opts: &ServeOptions) -> Result<i32, UsageError> {
    if opts.wal.is_none() {
        eprintln!(
            "serve: supervising without --wal: a respawned daemon restarts from the boot \
             problem and loses all session state"
        );
    }
    let exe = std::env::current_exe()
        .map_err(|e| UsageError(format!("--supervise: cannot locate own executable: {e}")))?;
    let child_args: Vec<&String> = args
        .iter()
        .filter(|a| a.as_str() != "--supervise")
        .collect();
    let mut backoff = BACKOFF_START;
    let mut fast_crashes = 0u32;
    loop {
        let started = Instant::now();
        let status = std::process::Command::new(&exe)
            .arg("serve")
            .args(&child_args)
            .status()
            .map_err(|e| UsageError(format!("--supervise: cannot spawn daemon: {e}")))?;
        if status.success() {
            return Ok(0);
        }
        if started.elapsed() < FAST_CRASH {
            fast_crashes += 1;
            if fast_crashes >= CRASH_LOOP_LIMIT {
                eprintln!(
                    "serve: crash loop: {fast_crashes} rapid exits in a row (last: {status}); \
                     giving up"
                );
                return Ok(1);
            }
        } else {
            fast_crashes = 0;
            backoff = BACKOFF_START;
        }
        eprintln!(
            "serve: daemon died ({status}); respawning in {}ms",
            backoff.as_millis()
        );
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(BACKOFF_CAP);
    }
}

/// A `Send` stdout handle (the daemon's output sequencer owns its sink).
struct StdoutSink;

impl std::io::Write for StdoutSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        std::io::stdout().write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        std::io::stdout().flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrec_serve::run_stream;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_are_daemon_shaped() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(
            o.problem.topology,
            crate::scenario::TopologySpec::BellCanada
        );
        assert!(matches!(
            o.problem.disrupt,
            DisruptionModel::Uniform { probability } if probability == 0.0
        ));
        assert_eq!(o.workers, 4);
        assert_eq!(o.tcp, None);
        assert_eq!(o.default_algo, SolverSpec::isp());
    }

    #[test]
    fn parses_daemon_flags_alongside_problem_flags() {
        let o = parse_args(&args(&[
            "--topology",
            "er:12:0.5",
            "--workers",
            "2",
            "--tcp",
            "127.0.0.1:0",
            "--disrupt",
            "uniform:0.3",
            "--algo",
            "grd-nc",
        ]))
        .unwrap();
        assert_eq!(o.workers, 2);
        assert_eq!(o.tcp.as_deref(), Some("127.0.0.1:0"));
        assert!(matches!(o.problem.disrupt, DisruptionModel::Uniform { .. }));
        assert_eq!(o.default_algo, SolverSpec::grd_nc());
    }

    #[test]
    fn rejects_one_shot_only_flags_and_bad_values() {
        assert!(parse_args(&args(&["--workers", "0"])).is_err());
        assert!(parse_args(&args(&["--workers", "x"])).is_err());
        assert!(parse_args(&args(&["--tcp"])).is_err());
        assert!(parse_args(&args(&["--report"])).is_err());
        assert!(parse_args(&args(&["--schedule", "2"])).is_err());
        assert!(parse_args(&args(&["--banana"])).is_err());
        assert!(parse_args(&args(&["--max-queue", "0"])).is_err());
        assert!(parse_args(&args(&["--max-session-queue", "-1"])).is_err());
        assert!(parse_args(&args(&["--read-timeout-ms", "soon"])).is_err());
        assert!(parse_args(&args(&["--faults", "frobnicate@3"])).is_err());
        assert!(parse_args(&args(&["--restore"])).is_err());
        assert!(parse_args(&args(&["--artifact"])).is_err());
        assert!(parse_args(&args(&["--wal"])).is_err());
        assert!(parse_args(&args(&["--wal-sync", "soon"])).is_err());
        assert!(parse_args(&args(&["--wal-segment-records", "0"])).is_err());
        // Tuning knobs without a log to tune are a mistake, not a no-op.
        assert!(parse_args(&args(&["--wal-sync", "off"])).is_err());
        assert!(parse_args(&args(&["--wal-segment-records", "8"])).is_err());
    }

    #[test]
    fn parses_durability_flags() {
        let o = parse_args(&args(&["--wal", "/tmp/w"])).unwrap();
        assert_eq!(o.wal.as_deref(), Some("/tmp/w"));
        assert_eq!(o.wal_sync, SyncPolicy::Always);
        assert_eq!(o.wal_segment_records, Wal::SEGMENT_RECORDS);
        assert!(!o.supervise);
        let o = parse_args(&args(&[
            "--wal",
            "/tmp/w",
            "--wal-sync",
            "interval:25",
            "--wal-segment-records",
            "64",
            "--supervise",
        ]))
        .unwrap();
        assert_eq!(o.wal_sync, SyncPolicy::Interval(25));
        assert_eq!(o.wal_segment_records, 64);
        assert!(o.supervise);
    }

    #[test]
    fn parses_containment_flags() {
        let o = parse_args(&args(&[
            "--max-queue",
            "16",
            "--max-session-queue",
            "4",
            "--read-timeout-ms",
            "50",
            "--faults",
            "seed=7;panic@3;latency=0.5:2",
            "--restore",
            "/tmp/a.jsonl",
            "--restore",
            "/tmp/b.jsonl",
        ]))
        .unwrap();
        assert_eq!(o.config.max_queue, 16);
        assert_eq!(o.config.max_session_queue, 4);
        assert_eq!(o.config.read_timeout, Duration::from_millis(50));
        assert!(o.faults.is_some());
        assert_eq!(o.restore, vec!["/tmp/a.jsonl", "/tmp/b.jsonl"]);
    }

    #[test]
    fn boot_arms_faults_and_restores_snapshots() {
        // Boot one daemon, damage a session, persist it; boot a second
        // daemon with --restore and verify the session came back.
        let path = std::env::temp_dir().join(format!(
            "netrec-serve-cli-restore-{}.jsonl",
            std::process::id()
        ));
        let opts = parse_args(&args(&["--pairs", "2", "--flow", "1"])).unwrap();
        let (engine, _) = boot_engine(&opts).unwrap();
        let (out, _) = run_stream(
            engine,
            1,
            &format!(
                "{{\"v\":1,\"id\":\"d\",\"session\":\"ops\",\"op\":\"disrupt\",\"edges\":[2],\"cost\":1.0}}\n\
                 {{\"v\":1,\"id\":\"s\",\"session\":\"ops\",\"op\":\"snapshot\",\"path\":{path:?}}}\n\
                 {{\"v\":1,\"id\":\"z\",\"op\":\"shutdown\"}}\n",
                path = path.to_str().unwrap()
            ),
        );
        assert!(out.contains("\"persisted\""), "{out}");

        let opts = parse_args(&args(&[
            "--pairs",
            "2",
            "--flow",
            "1",
            "--restore",
            path.to_str().unwrap(),
            "--faults",
            "solve_error@0",
        ]))
        .unwrap();
        let (engine, banner) = boot_engine(&opts).unwrap();
        assert!(banner.contains("restored session \"ops\""), "{banner}");
        assert!(banner.contains("fault injection armed"), "{banner}");
        let (out, _) = run_stream(
            engine,
            1,
            "{\"v\":1,\"id\":\"q\",\"session\":\"ops\",\"op\":\"query_routability\"}\n\
             {\"v\":1,\"id\":\"s\",\"session\":\"ops\",\"op\":\"snapshot\"}\n\
             {\"v\":1,\"id\":\"z\",\"op\":\"shutdown\"}\n",
        );
        // Request 0 hits the armed solve_error fault; the snapshot then
        // proves the restored damage is present.
        assert!(out.contains("\"kind\":\"injected_fault\""), "{out}");
        assert!(out.contains("\"broken_edges\":1"), "{out}");
        let _ = std::fs::remove_file(&path);

        // A missing snapshot file is a boot-time usage error.
        let opts = parse_args(&args(&["--restore", "/nonexistent/nope.jsonl"])).unwrap();
        assert!(boot_engine(&opts).is_err());
    }

    #[test]
    fn boot_loads_artifact_and_swept_queries_hit() {
        use netrec_core::oracle::artifact::ArtifactBuilder;
        use netrec_core::oracle::{ExactLp, RoutabilityOracle};
        let problem_flags = ["--topology", "er:12:0.5", "--pairs", "2", "--flow", "1"];
        let opts = parse_args(&args(&problem_flags)).unwrap();
        assert_eq!(opts.artifact, None);
        // Sweep just the boot (intact) state of the exact instance the
        // daemon will serve, and save it as an artifact.
        let (engine, _) = boot_engine(&opts).unwrap();
        let base = Arc::clone(engine.base());
        let demands = base.demands();
        let exact = ExactLp::new();
        let mut builder = ArtifactBuilder::new(base.graph(), &demands);
        let view = base.graph().view();
        let routable = exact.is_routable(&view, &demands).unwrap();
        builder.record(&view, &demands, routable);
        let path = std::env::temp_dir().join(format!(
            "netrec-serve-cli-artifact-{}.nra",
            std::process::id()
        ));
        builder
            .finish("er:12:0.5", &["boot".to_string()])
            .save(&path, false)
            .unwrap();

        let mut with_artifact = args(&problem_flags);
        with_artifact.extend(args(&["--artifact", path.to_str().unwrap()]));
        let opts = parse_args(&with_artifact).unwrap();
        let (engine, banner) = boot_engine(&opts).unwrap();
        assert!(banner.contains("artifact loaded"), "{banner}");
        let (out, _) = run_stream(
            engine,
            1,
            "{\"v\":1,\"id\":\"q\",\"op\":\"query_routability\"}\n\
             {\"v\":1,\"id\":\"z\",\"op\":\"shutdown\"}\n",
        );
        assert!(out.contains("\"answer_source\":\"artifact\""), "{out}");

        // The same artifact against a different demand set is rejected
        // at boot, not silently missed forever.
        let mut mismatched = args(&["--topology", "er:12:0.5", "--pairs", "3", "--flow", "1"]);
        mismatched.extend(args(&["--artifact", path.to_str().unwrap()]));
        let opts = parse_args(&mismatched).unwrap();
        let e = match boot_engine(&opts) {
            Err(e) => e,
            Ok(_) => panic!("mismatched artifact must be rejected at boot"),
        };
        assert!(e.0.contains("different topology/demand"), "{}", e.0);
        let _ = std::fs::remove_file(&path);

        // A missing artifact file is a boot-time usage error.
        let mut missing = args(&problem_flags);
        missing.extend(args(&["--artifact", "/nonexistent/nope.nra"]));
        let opts = parse_args(&missing).unwrap();
        assert!(boot_engine(&opts).is_err());
    }

    #[test]
    fn wal_boot_recovers_acknowledged_events_across_daemons() {
        let dir = std::env::temp_dir().join(format!("netrec-serve-cli-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let flags = [
            "--pairs",
            "2",
            "--flow",
            "1",
            "--wal",
            dir.to_str().unwrap(),
            "--wal-sync",
            "off",
        ];
        let opts = parse_args(&args(&flags)).unwrap();
        let (engine, banner) = boot_engine(&opts).unwrap();
        assert!(banner.contains("wal armed"), "{banner}");
        assert!(banner.contains("0 event(s) replayed"), "{banner}");
        let (out, _) = run_stream(
            engine,
            1,
            "{\"v\":1,\"id\":\"d\",\"op\":\"disrupt\",\"edges\":[2,5],\"cost\":1.0}\n\
             {\"v\":1,\"id\":\"z\",\"op\":\"shutdown\"}\n",
        );
        assert!(out.contains("\"wal_seq\":1"), "{out}");

        // A second daemon over the same directory replays the log and
        // continues the sequence where the first left off.
        let opts = parse_args(&args(&flags)).unwrap();
        let (engine, banner) = boot_engine(&opts).unwrap();
        assert!(banner.contains("event(s) replayed"), "{banner}");
        let (out, _) = run_stream(
            engine,
            1,
            "{\"v\":1,\"id\":\"s\",\"op\":\"snapshot\"}\n\
             {\"v\":1,\"id\":\"z\",\"op\":\"shutdown\"}\n",
        );
        assert!(out.contains("\"broken_edges\":2"), "{out}");
        assert!(out.contains("\"wal_seq\":3"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn booted_engine_serves_the_loaded_topology() {
        let opts = parse_args(&args(&[
            "--topology",
            "er:12:0.5",
            "--pairs",
            "2",
            "--flow",
            "1",
        ]))
        .unwrap();
        let (engine, banner) = boot_engine(&opts).unwrap();
        assert!(banner.contains("12 nodes"), "{banner}");
        assert!(banner.contains("0 nodes + 0 edges broken"), "{banner}");
        let (out, report) = run_stream(
            engine,
            2,
            "{\"v\":1,\"id\":\"q\",\"op\":\"query_routability\"}\n{\"v\":1,\"id\":\"z\",\"op\":\"shutdown\"}\n",
        );
        assert!(out.contains("\"routable\":true"), "{out}");
        assert_eq!(report.requests, 2);
    }
}
