//! Aggregation and rendering of experiment results.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Mean/std summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for n ≤ 1).
    pub std: f64,
    /// Sample size.
    pub n: usize,
}

/// Summarizes a sample (empty samples give a zero summary).
pub fn summarize(values: &[f64]) -> Summary {
    let n = values.len();
    if n == 0 {
        return Summary {
            mean: 0.0,
            std: 0.0,
            n: 0,
        };
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let std = if n > 1 {
        (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
    } else {
        0.0
    };
    Summary { mean, std, n }
}

/// One aggregated measurement: figure x-coordinate, algorithm, metric.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// The x-coordinate of the sweep (number of pairs, demand intensity,
    /// variance, edge probability, …).
    pub x: f64,
    /// Algorithm name (`ISP`, `OPT`, …).
    pub algorithm: String,
    /// Metric name (`edge_repairs`, `node_repairs`, `total_repairs`,
    /// `satisfied_pct`, `time_ms`).
    pub metric: String,
    /// Aggregated value.
    pub value: Summary,
}

/// One failed run of a figure sweep: which x-coordinate and algorithm,
/// and the error cause. Kept alongside the aggregated points so the
/// exporters can no longer silently drop infeasible runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailurePoint {
    /// The x-coordinate of the failing scenario.
    pub x: f64,
    /// Algorithm name (`ISP`, `OPT`, …).
    pub algorithm: String,
    /// Display string of the run's error.
    pub cause: String,
}

/// All series of one reproduced figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureTable {
    /// Figure id, e.g. `fig4`.
    pub figure: String,
    /// Human-readable description of the sweep.
    pub title: String,
    /// The x-axis label.
    pub x_label: String,
    /// Data points.
    pub points: Vec<SeriesPoint>,
    /// Failed runs, in scenario order (empty when every run succeeded).
    pub failures: Vec<FailurePoint>,
}

impl FigureTable {
    /// The distinct metrics present, in first-appearance order.
    pub fn metrics(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.metric) {
                seen.push(p.metric.clone());
            }
        }
        seen
    }

    /// The distinct algorithms present, in first-appearance order.
    pub fn algorithms(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.algorithm) {
                seen.push(p.algorithm.clone());
            }
        }
        seen
    }

    /// The series (x, mean) for one algorithm × metric, sorted by x.
    pub fn series(&self, algorithm: &str, metric: &str) -> Vec<(f64, f64)> {
        let mut out: Vec<(f64, f64)> = self
            .points
            .iter()
            .filter(|p| p.algorithm == algorithm && p.metric == metric)
            .map(|p| (p.x, p.value.mean))
            .collect();
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        out
    }
}

/// Renders a figure table as aligned text, one block per metric with one
/// column per algorithm — the same rows the paper's plots are drawn from.
pub fn render_table(table: &FigureTable) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {} — {}\n", table.figure, table.title));
    for metric in table.metrics() {
        out.push_str(&format!("\n## {metric} (x = {})\n", table.x_label));
        let algorithms: Vec<String> = table
            .algorithms()
            .into_iter()
            .filter(|a| {
                table
                    .points
                    .iter()
                    .any(|p| &p.algorithm == a && p.metric == metric)
            })
            .collect();
        // x -> algorithm -> mean±std
        let mut rows: BTreeMap<u64, BTreeMap<String, (f64, f64)>> = BTreeMap::new();
        for p in &table.points {
            if p.metric != metric {
                continue;
            }
            rows.entry(p.x.to_bits())
                .or_default()
                .insert(p.algorithm.clone(), (p.value.mean, p.value.std));
        }
        out.push_str(&format!("{:>10}", "x"));
        for a in &algorithms {
            out.push_str(&format!("{a:>18}"));
        }
        out.push('\n');
        type AlgColumns = BTreeMap<String, (f64, f64)>;
        let mut keyed: Vec<(f64, &AlgColumns)> = rows
            .iter()
            .map(|(bits, m)| (f64::from_bits(*bits), m))
            .collect();
        keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        for (x, cols) in keyed {
            out.push_str(&format!("{x:>10.2}"));
            for a in &algorithms {
                match cols.get(a) {
                    Some((mean, std)) => out.push_str(&format!("{:>12.2} ±{std:>4.1}", mean)),
                    None => out.push_str(&format!("{:>18}", "-")),
                }
            }
            out.push('\n');
        }
    }
    if !table.failures.is_empty() {
        out.push_str(&format!("\n## failures ({} runs)\n", table.failures.len()));
        for f in &table.failures {
            out.push_str(&format!("{:>10.2}  {}: {}\n", f.x, f.algorithm, f.cause));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_and_single() {
        let e = summarize(&[]);
        assert_eq!(e.n, 0);
        let s = summarize(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn summary_mean_and_std() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    fn sample_table() -> FigureTable {
        FigureTable {
            figure: "figX".into(),
            title: "test".into(),
            x_label: "pairs".into(),
            points: vec![
                SeriesPoint {
                    x: 1.0,
                    algorithm: "ISP".into(),
                    metric: "total_repairs".into(),
                    value: summarize(&[3.0, 5.0]),
                },
                SeriesPoint {
                    x: 2.0,
                    algorithm: "ISP".into(),
                    metric: "total_repairs".into(),
                    value: summarize(&[7.0]),
                },
                SeriesPoint {
                    x: 1.0,
                    algorithm: "OPT".into(),
                    metric: "total_repairs".into(),
                    value: summarize(&[3.0]),
                },
            ],
            failures: vec![FailurePoint {
                x: 2.0,
                algorithm: "OPT".into(),
                cause: "demand exceeds the capacity of the fully repaired network".into(),
            }],
        }
    }

    #[test]
    fn table_accessors() {
        let t = sample_table();
        assert_eq!(t.metrics(), vec!["total_repairs"]);
        assert_eq!(t.algorithms(), vec!["ISP", "OPT"]);
        assert_eq!(
            t.series("ISP", "total_repairs"),
            vec![(1.0, 4.0), (2.0, 7.0)]
        );
        assert!(t.series("GRD-NC", "total_repairs").is_empty());
    }

    #[test]
    fn rendering_contains_all_parts() {
        let text = render_table(&sample_table());
        assert!(text.contains("figX"));
        assert!(text.contains("total_repairs"));
        assert!(text.contains("ISP"));
        assert!(text.contains("OPT"));
        assert!(text.contains("4.00"));
        // Satellite bugfix: failures are rendered, not dropped.
        assert!(text.contains("failures (1 runs)"), "{text}");
        assert!(text.contains("fully repaired network"), "{text}");
    }

    #[test]
    fn rendering_omits_empty_failure_section() {
        let mut table = sample_table();
        table.failures.clear();
        assert!(!render_table(&table).contains("failures"));
    }
}
