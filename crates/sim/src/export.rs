//! Export of figure tables and campaign reports to CSV / JSON / gnuplot.
//!
//! `repro --out-dir DIR` writes, per figure and metric, a CSV with one
//! row per x-value and one `mean`/`std` column pair per algorithm, plus a
//! ready-to-run gnuplot script reproducing the paper's plot layout.
//! Failed runs get their own `figN_failures.csv` — they used to be
//! silently dropped between the runner and the files on disk.
//!
//! `netrec-cli campaign run --out DIR` writes the versioned
//! [`CampaignReport`] as `campaign.report.json` plus two CSVs
//! (`campaign.metrics.csv`, `campaign.failures.csv`) via
//! [`write_campaign_report`].

use crate::campaign::CampaignReport;
use crate::stats::FigureTable;
use netrec_core::fsio::atomic_write;
use std::fmt::Write as _;

/// Escapes one CSV cell: quoted when it contains a comma, quote, or
/// newline (error causes are free-form display strings).
fn csv_cell(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders one metric of a figure as CSV text.
///
/// Columns: `x, <alg> mean, <alg> std, …` in first-appearance order.
pub fn to_csv(table: &FigureTable, metric: &str) -> String {
    let algorithms: Vec<String> = table
        .algorithms()
        .into_iter()
        .filter(|a| {
            table
                .points
                .iter()
                .any(|p| &p.algorithm == a && p.metric == metric)
        })
        .collect();
    let mut out = String::from("x");
    for a in &algorithms {
        let _ = write!(out, ",{a}_mean,{a}_std");
    }
    out.push('\n');

    let mut xs: Vec<f64> = table
        .points
        .iter()
        .filter(|p| p.metric == metric)
        .map(|p| p.x)
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs.dedup();

    for x in xs {
        let _ = write!(out, "{x}");
        for a in &algorithms {
            let point = table
                .points
                .iter()
                .find(|p| p.metric == metric && &p.algorithm == a && p.x == x);
            match point {
                Some(p) => {
                    let _ = write!(out, ",{:.6},{:.6}", p.value.mean, p.value.std);
                }
                None => out.push_str(",,"),
            }
        }
        out.push('\n');
    }
    out
}

/// Emits a gnuplot script that plots every algorithm's mean (with error
/// bars) for one metric, reading the CSV produced by [`to_csv`].
pub fn to_gnuplot(table: &FigureTable, metric: &str, csv_file: &str) -> String {
    let algorithms: Vec<String> = table
        .algorithms()
        .into_iter()
        .filter(|a| {
            table
                .points
                .iter()
                .any(|p| &p.algorithm == a && p.metric == metric)
        })
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, "# {} — {metric}", table.figure);
    let _ = writeln!(out, "set datafile separator ','");
    let _ = writeln!(out, "set key top left");
    let _ = writeln!(out, "set xlabel '{}'", table.x_label.replace('\'', ""));
    let _ = writeln!(out, "set ylabel '{}'", metric.replace('_', " "));
    let _ = writeln!(
        out,
        "set title '{} ({})'",
        table.title.replace('\'', ""),
        table.figure
    );
    out.push_str("plot ");
    for (i, a) in algorithms.iter().enumerate() {
        if i > 0 {
            out.push_str(", \\\n     ");
        }
        // Column layout: x = 1, alg i mean = 2i+2, std = 2i+3.
        let _ = write!(
            out,
            "'{csv_file}' using 1:{}:{} with yerrorlines title '{a}'",
            2 * i + 2,
            2 * i + 3
        );
    }
    out.push('\n');
    out
}

/// Renders the figure's failed runs as CSV (`x,algorithm,cause`), one
/// row per failed run.
pub fn failures_to_csv(table: &FigureTable) -> String {
    let mut out = String::from("x,algorithm,cause\n");
    for f in &table.failures {
        let _ = writeln!(
            out,
            "{},{},{}",
            f.x,
            csv_cell(&f.algorithm),
            csv_cell(&f.cause)
        );
    }
    out
}

/// Writes all metrics of a figure into `dir` as `figN_metric.csv` +
/// `figN_metric.gp`, plus `figN_failures.csv` when any run failed.
///
/// Every file goes through [`netrec_core::fsio::atomic_write`]
/// (tmp + rename): a crash or full disk mid-export leaves either the
/// previous complete file or nothing, never a torn CSV that parses as
/// truncated-but-valid data.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_figure(table: &FigureTable, dir: &std::path::Path) -> std::io::Result<Vec<String>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for metric in table.metrics() {
        let base = format!("{}_{}", table.figure, metric);
        let csv_name = format!("{base}.csv");
        atomic_write(
            &dir.join(&csv_name),
            to_csv(table, &metric).as_bytes(),
            false,
        )?;
        atomic_write(
            &dir.join(format!("{base}.gp")),
            to_gnuplot(table, &metric, &csv_name).as_bytes(),
            false,
        )?;
        written.push(base);
    }
    if !table.failures.is_empty() {
        let base = format!("{}_failures", table.figure);
        atomic_write(
            &dir.join(format!("{base}.csv")),
            failures_to_csv(table).as_bytes(),
            false,
        )?;
        written.push(base);
    }
    Ok(written)
}

/// Writes a campaign report into `dir`: the versioned JSON
/// (`campaign.report.json`), the per-scenario metric CSV
/// (`campaign.metrics.csv`, rows `scenario,solver,metric,mean,std,n`),
/// and the failure CSV (`campaign.failures.csv`, rows
/// `scenario,solver,cause` — always written, header-only when clean, so
/// "no failures" is distinguishable from "failures not exported").
/// Returns the file names written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_campaign_report(
    report: &CampaignReport,
    dir: &std::path::Path,
) -> std::io::Result<Vec<String>> {
    write_campaign_report_durable(report, dir, false)
}

/// [`write_campaign_report`] with explicit durability: every file goes
/// through tmp + rename (never a torn report), and `durable` adds an
/// fsync of file and directory before the rename is relied on — the
/// crash-consistency level `campaign run --durable` promises.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_campaign_report_durable(
    report: &CampaignReport,
    dir: &std::path::Path,
    durable: bool,
) -> std::io::Result<Vec<String>> {
    std::fs::create_dir_all(dir)?;
    let files = [
        ("campaign.report.json", report.to_json()),
        ("campaign.metrics.csv", campaign_metrics_csv(report)),
        ("campaign.failures.csv", campaign_failures_csv(report)),
    ];
    let mut written = Vec::new();
    for (name, content) in files {
        atomic_write(&dir.join(name), content.as_bytes(), durable)?;
        written.push(name.to_string());
    }
    Ok(written)
}

/// The campaign metric CSV: one row per scenario × solver × metric.
pub fn campaign_metrics_csv(report: &CampaignReport) -> String {
    let mut out = String::from("scenario,solver,metric,mean,std,n\n");
    for scenario in &report.scenarios {
        for (metric, by_solver) in &scenario.metrics {
            for (solver, summary) in by_solver {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{}",
                    csv_cell(&scenario.id),
                    csv_cell(solver),
                    csv_cell(metric),
                    summary.mean,
                    summary.std,
                    summary.n
                );
            }
        }
    }
    out
}

/// The campaign failure CSV: one row per failed run, cause preserved.
pub fn campaign_failures_csv(report: &CampaignReport) -> String {
    let mut out = String::from("scenario,solver,cause\n");
    for scenario in &report.scenarios {
        for (solver, causes) in &scenario.failures {
            for cause in causes {
                let _ = writeln!(
                    out,
                    "{},{},{}",
                    csv_cell(&scenario.id),
                    csv_cell(solver),
                    csv_cell(cause)
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{summarize, SeriesPoint};

    fn sample() -> FigureTable {
        FigureTable {
            figure: "figT".into(),
            title: "test sweep".into(),
            x_label: "pairs".into(),
            points: vec![
                SeriesPoint {
                    x: 1.0,
                    algorithm: "ISP".into(),
                    metric: "total_repairs".into(),
                    value: summarize(&[4.0, 6.0]),
                },
                SeriesPoint {
                    x: 2.0,
                    algorithm: "ISP".into(),
                    metric: "total_repairs".into(),
                    value: summarize(&[8.0]),
                },
                SeriesPoint {
                    x: 1.0,
                    algorithm: "OPT".into(),
                    metric: "total_repairs".into(),
                    value: summarize(&[4.0]),
                },
            ],
            failures: vec![crate::stats::FailurePoint {
                x: 2.0,
                algorithm: "OPT".into(),
                cause: "lp error, with a \"quoted\" part".into(),
            }],
        }
    }

    #[test]
    fn csv_layout() {
        let csv = to_csv(&sample(), "total_repairs");
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "x,ISP_mean,ISP_std,OPT_mean,OPT_std");
        let row1 = lines.next().unwrap();
        assert!(row1.starts_with("1,5.000000,"));
        let row2 = lines.next().unwrap();
        assert!(row2.starts_with("2,8.000000,"));
        // OPT has no point at x=2: empty cells.
        assert!(row2.ends_with(",,"));
    }

    #[test]
    fn gnuplot_references_all_series() {
        let gp = to_gnuplot(&sample(), "total_repairs", "figT_total_repairs.csv");
        assert!(gp.contains("title 'ISP'"));
        assert!(gp.contains("title 'OPT'"));
        assert!(gp.contains("using 1:2:3"));
        assert!(gp.contains("using 1:4:5"));
        assert!(gp.contains("set xlabel 'pairs'"));
    }

    #[test]
    fn write_figure_creates_files() {
        let dir = std::env::temp_dir().join("netrec_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        let written = write_figure(&sample(), &dir).unwrap();
        assert_eq!(written, vec!["figT_total_repairs", "figT_failures"]);
        assert!(dir.join("figT_total_repairs.csv").exists());
        assert!(dir.join("figT_total_repairs.gp").exists());
        // Satellite bugfix: failures land on disk next to the metrics.
        let failures = std::fs::read_to_string(dir.join("figT_failures.csv")).unwrap();
        assert!(failures.starts_with("x,algorithm,cause\n"), "{failures}");
        assert!(failures.contains("2,OPT,"), "{failures}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failure_csv_quotes_free_form_causes() {
        let csv = failures_to_csv(&sample());
        assert!(
            csv.contains("\"lp error, with a \"\"quoted\"\" part\""),
            "{csv}"
        );
    }

    #[test]
    fn clean_figures_skip_the_failure_file() {
        let dir = std::env::temp_dir().join("netrec_export_clean_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut table = sample();
        table.failures.clear();
        let written = write_figure(&table, &dir).unwrap();
        assert_eq!(written, vec!["figT_total_repairs"]);
        assert!(!dir.join("figT_failures.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_metric_gives_header_only() {
        let csv = to_csv(&sample(), "nonexistent");
        assert_eq!(csv.trim(), "x");
    }

    #[test]
    fn torn_rewrite_leaves_the_previous_export_intact() {
        // Exports are tmp+rename: a crash mid-rewrite (simulated by the
        // fault plane's torn-write hook) must leave the previous
        // complete file, not a truncated CSV that still parses.
        let dir =
            std::env::temp_dir().join(format!("netrec_export_torn_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_figure(&sample(), &dir).unwrap();
        let path = dir.join("figT_total_repairs.csv");
        let original = std::fs::read_to_string(&path).unwrap();

        let err = netrec_core::fsio::atomic_write_torn(
            &path,
            "x,NEW_mean,NEW_std\n1,9.0,0.0\n".as_bytes(),
            false,
            true,
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            original,
            "the published file must survive a torn rewrite byte-for-byte"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
