//! Campaign determinism guarantees (tentpole acceptance tests):
//!
//! * the same spec + seeds yields a **byte-identical** report — serial
//!   vs sharded (canonical form, i.e. minus wall-clock metrics) and
//!   fresh vs resumed (full file bytes, wall-clock included, because a
//!   resumed run re-reads the journal instead of re-measuring);
//! * `CampaignSpec::expand` is stable under reordering of the spec's
//!   axis arrays (property-based, random permutations).

use netrec_sim::campaign::{run_campaign, CampaignOptions, CampaignSpec};
use proptest::prelude::*;
use std::path::PathBuf;

const SPEC: &str = r#"{
    "version": 1,
    "name": "determinism",
    "topologies": ["bell", "grid:rows=3,cols=3,capacity=50"],
    "disruptions": ["uniform:0.4"],
    "demands": ["pairs=2,flow=5"],
    "solvers": ["isp", "srt", "all"],
    "oracles": ["default", "incremental"],
    "seeds": [11, 12],
    "runs": 2,
    "threads": 1,
    "exclude": [{"solver": "all", "oracle": "incremental"}]
}"#;

fn out_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netrec_campaign_determinism_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn options(dir: &std::path::Path, shards: usize, resume: bool) -> CampaignOptions {
    CampaignOptions {
        shards: Some(shards),
        resume,
        out_dir: dir.to_path_buf(),
        durable: false,
    }
}

/// Golden test: serial vs sharded byte-identical (canonical JSON), and
/// fresh vs resumed byte-identical (full JSON), on one fixed spec.
#[test]
fn campaign_reports_are_byte_identical() {
    let spec = CampaignSpec::parse_json(SPEC).unwrap();
    let serial_dir = out_dir("serial");
    let sharded_dir = out_dir("sharded");

    let serial = run_campaign(&spec, &options(&serial_dir, 1, false), None).unwrap();
    let sharded = run_campaign(&spec, &options(&sharded_dir, 4, false), None).unwrap();
    assert_eq!(serial.executed, 8);
    assert_eq!(sharded.executed, 8);
    // Shard layout must not leak into the deterministic metrics.
    assert_eq!(
        serial.report.canonical_json(),
        sharded.report.canonical_json()
    );

    // Resuming re-executes nothing and reproduces the *full* report
    // bytes (wall-clock metrics included — they come from the journal).
    let resumed = run_campaign(&spec, &options(&sharded_dir, 4, true), None).unwrap();
    assert_eq!(resumed.executed, 0);
    assert_eq!(resumed.skipped, 8);
    assert_eq!(resumed.report.to_json(), sharded.report.to_json());

    // The exclusion bit: ALL never runs under the incremental oracle.
    for scenario in &serial.report.scenarios {
        let has_all = scenario
            .metrics
            .get("total_repairs")
            .is_some_and(|m| m.contains_key("ALL"));
        assert_eq!(
            has_all,
            !scenario.id.contains("/incremental/"),
            "{}",
            scenario.id
        );
    }

    let _ = std::fs::remove_dir_all(&serial_dir);
    let _ = std::fs::remove_dir_all(&sharded_dir);
}

/// Shuffles a JSON array's rendering inside the spec text.
fn shuffle<T: Clone>(items: &[T], order_seed: u64) -> Vec<T> {
    let mut out: Vec<T> = items.to_vec();
    let mut state = order_seed | 1;
    for i in (1..out.len()).rev() {
        // xorshift64 — cheap, deterministic permutation driver.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.swap(i, (state as usize) % (i + 1));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: permuting every axis array leaves the expansion —
    /// ids, order, fingerprints, and solver line-ups — unchanged.
    #[test]
    fn expansion_is_invariant_under_axis_permutations(order_seed in proptest::arbitrary::any::<u64>()) {
        let base = CampaignSpec::parse_json(SPEC).unwrap();
        let mut permuted = CampaignSpec::parse_json(SPEC).unwrap();
        permuted.topologies = shuffle(&permuted.topologies, order_seed);
        permuted.disruptions = shuffle(&permuted.disruptions, order_seed ^ 0xa5a5);
        permuted.demands = shuffle(&permuted.demands, order_seed ^ 0x5a5a);
        permuted.solvers = shuffle(&permuted.solvers, order_seed ^ 0xff00);
        permuted.oracles = shuffle(&permuted.oracles, order_seed ^ 0x00ff);
        permuted.seeds = shuffle(&permuted.seeds, order_seed ^ 0xf0f0);

        let a = base.expand().unwrap();
        let b = permuted.expand().unwrap();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.id, &y.id);
            prop_assert_eq!(&x.fingerprint, &y.fingerprint);
            prop_assert_eq!(&x.scenario.solvers, &y.scenario.solvers);
            prop_assert_eq!(x.scenario.seed, y.scenario.seed);
        }
        prop_assert_eq!(base.fingerprint().unwrap(), permuted.fingerprint().unwrap());
    }
}
