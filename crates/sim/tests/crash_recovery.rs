//! The durability theorem, executed against the real binary: kill the
//! daemon at seeded points across the committed 222-request stream —
//! including mid-WAL-append — restart it over the same `--wal`
//! directory, and every surviving reply is byte-identical to the
//! uninterrupted golden run, at one worker and at four.
//!
//! The kill itself is the daemon's own fault plane (`crash@I` aborts
//! before request I's record exists; `wal_torn@I` aborts midway through
//! the append, leaving a genuinely torn tail), so the cut point is
//! deterministic and the durable prefix is known exactly: requests
//! `0..I`. The harness therefore checks three things per kill point:
//!
//! 1. every reply the dying daemon released is a byte prefix of the
//!    golden transcript (nothing wrong was ever acknowledged);
//! 2. the on-disk log bytes are identical at workers 1 and 4 (the
//!    durable cut does not depend on scheduling);
//! 3. the restarted daemon replays the log and answers the rest of the
//!    stream byte-identically to the golden run — state, warmth, and
//!    `wal_seq` numbering all survive the crash.
//!
//! Scratch directories live under `target/crash-smoke/` and are kept on
//! failure so CI can upload the offending log.

use netrec_serve::Request;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::Duration;

/// The committed smoke stream (222 lines, three sessions, deliberate
/// protocol errors, final shutdown) — the same stream the chaos-replay
/// suite holds the containment rules to.
const EVENTS: &str = include_str!("../../../examples/serve/events.jsonl");

/// The daemon binary under test.
const BIN: &str = env!("CARGO_BIN_EXE_netrec-cli");

/// Cheap problem flags: the stream's own `demand` events replace the
/// boot demand set, so a small one keeps debug-profile runs fast
/// without changing what the stream exercises.
const PROBLEM: [&str; 4] = ["--pairs", "2", "--flow", "1"];

fn scratch_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/crash-smoke")
}

/// Runs the daemon to completion with `input` on stdin, feeding it from
/// a writer thread (the daemon may abort mid-stream; a broken pipe is
/// expected, not an error).
fn run_daemon(args: &[String], input: &str) -> Output {
    let mut child = Command::new(BIN)
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let mut stdin = child.stdin.take().expect("stdin piped");
    let input = input.to_string();
    let writer = std::thread::spawn(move || {
        let _ = stdin.write_all(input.as_bytes());
    });
    let out = child.wait_with_output().expect("wait for daemon");
    writer.join().expect("stdin writer");
    out
}

fn serve_args(workers: usize, wal: &Path, faults: Option<&str>) -> Vec<String> {
    let mut args: Vec<String> = PROBLEM.iter().map(|s| s.to_string()).collect();
    args.extend([
        "--workers".into(),
        workers.to_string(),
        "--wal".into(),
        wal.display().to_string(),
        "--wal-sync".into(),
        "always".into(),
    ]);
    if let Some(spec) = faults {
        args.extend(["--faults".into(), spec.to_string()]);
    }
    args
}

/// 0-based line numbers of the stream lines that consume a request
/// index (protocol-error lines are answered without one), in dispatch
/// order — `dispatch_lines()[i]` is the line killed by `crash@i`.
fn dispatch_lines() -> Vec<usize> {
    EVENTS
        .lines()
        .enumerate()
        .filter(|(_, l)| Request::parse(l).is_ok())
        .map(|(n, _)| n)
        .collect()
}

/// The durable log as one byte string: every `wal-*.log` segment in
/// name order (torn tail included — the cut must be scheduling-
/// independent down to the half-written record).
fn log_bytes(dir: &Path) -> Vec<u8> {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read wal dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-"))
        })
        .collect();
    segments.sort();
    let mut bytes = Vec::new();
    for seg in segments {
        bytes.extend(std::fs::read(&seg).expect("read segment"));
    }
    bytes
}

#[test]
fn killed_at_twenty_points_the_daemon_recovers_byte_identically() {
    let golden_w1 = run_daemon(
        &serve_args(1, &scratch_root().join("golden-w1"), None),
        EVENTS,
    );
    let golden_w4 = run_daemon(
        &serve_args(4, &scratch_root().join("golden-w4"), None),
        EVENTS,
    );
    assert!(golden_w1.status.success() && golden_w4.status.success());
    assert_eq!(
        golden_w1.stdout, golden_w4.stdout,
        "the golden transcript is byte-deterministic across worker counts"
    );
    let golden_text = String::from_utf8(golden_w1.stdout).expect("golden is UTF-8");
    let golden: Vec<&str> = golden_text.lines().collect();
    assert_eq!(golden.len(), EVENTS.lines().count(), "golden answers all");

    let lines = dispatch_lines();
    // Kill points spread across the stream; the last dispatched request
    // is the shutdown, which must stay reachable in the recovery run.
    let crash: &[u64] = &[
        0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 120, 144, 170, 190, 205,
    ];
    let torn: &[u64] = &[4, 10, 30, 70, 110, 150, 195];
    let mut points: Vec<(&str, u64)> = crash.iter().map(|&i| ("crash", i)).collect();
    points.extend(torn.iter().map(|&i| ("wal_torn", i)));
    points.retain(|&(_, i)| (i as usize) < lines.len() - 1);
    assert!(points.len() >= 20, "need at least 20 kill points");
    // The full matrix is a release-profile (CI crash-smoke) workout; a
    // debug `cargo test` keeps a spread sample so the harness still
    // exercises both fault kinds and both worker counts everywhere.
    if cfg!(debug_assertions) {
        points = vec![
            ("crash", 0),
            ("crash", 55),
            ("wal_torn", 10),
            ("wal_torn", 195),
        ];
    }

    for (kind, index) in points {
        // The cut: the stream line whose admission kills the daemon.
        // Requests before it are durable; it and everything after were
        // never accepted and are re-offered to the recovered daemon.
        let cut = lines[index as usize];
        let remainder: String = EVENTS.lines().skip(cut).flat_map(|l| [l, "\n"]).collect();
        let mut w1_log: Vec<u8> = Vec::new();
        for workers in [1usize, 4] {
            let dir = scratch_root().join(format!("{kind}-{index}-w{workers}"));
            let _ = std::fs::remove_dir_all(&dir);
            let fault = format!("seed=13;{kind}@{index}");
            let died = run_daemon(&serve_args(workers, &dir, Some(&fault)), EVENTS);
            assert!(
                !died.status.success(),
                "{kind}@{index} w{workers}: the daemon must die at the kill point"
            );
            let acked = String::from_utf8(died.stdout).expect("phase-A output is UTF-8");
            let acked: Vec<&str> = acked.lines().collect();
            assert!(
                acked.len() <= cut,
                "{kind}@{index} w{workers}: no reply at or past the cut line"
            );
            for (i, reply) in acked.iter().enumerate() {
                assert_eq!(
                    reply, &golden[i],
                    "{kind}@{index} w{workers}: acknowledged reply {i} must be \
                     byte-identical to the golden"
                );
            }
            let bytes = log_bytes(&dir);
            if workers == 1 {
                w1_log = bytes;
            } else {
                assert_eq!(
                    bytes, w1_log,
                    "{kind}@{index}: the durable log bytes must not depend on \
                     the worker count"
                );
            }

            let recovered = run_daemon(&serve_args(workers, &dir, None), &remainder);
            assert!(
                recovered.status.success(),
                "{kind}@{index} w{workers}: recovery run must exit cleanly"
            );
            let boot_log = String::from_utf8_lossy(&recovered.stderr).to_string();
            if kind == "wal_torn" {
                assert!(
                    boot_log.contains("salvaged"),
                    "{kind}@{index} w{workers}: boot must report the torn tail:\n{boot_log}"
                );
            }
            let replies = String::from_utf8(recovered.stdout).expect("phase-B output is UTF-8");
            let replies: Vec<&str> = replies.lines().collect();
            assert_eq!(
                replies.len(),
                golden.len() - cut,
                "{kind}@{index} w{workers}: the recovered daemon answers the \
                 whole remainder"
            );
            for (i, reply) in replies.iter().enumerate() {
                assert_eq!(
                    reply,
                    &golden[cut + i],
                    "{kind}@{index} w{workers}: post-recovery reply {i} must be \
                     byte-identical to the golden (boot warnings:\n{boot_log})"
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let _ = std::fs::remove_dir_all(scratch_root().join("golden-w1"));
    let _ = std::fs::remove_dir_all(scratch_root().join("golden-w4"));
}

/// Drip-feeds lines to a supervised daemon's stdin. The pacing matters:
/// a crashing child loses whatever its reader had buffered, so each
/// line is written only after the previous one had time to land.
fn drip(mut stdin: std::process::ChildStdin, lines: Vec<String>, gap: Duration) {
    std::thread::spawn(move || {
        for line in lines {
            if stdin.write_all(line.as_bytes()).is_err() {
                return; // supervisor exited; expected for crash loops
            }
            let _ = stdin.flush();
            std::thread::sleep(gap);
        }
    });
}

#[test]
fn supervisor_respawns_through_a_torn_crash_and_finishes_the_stream() {
    let dir = scratch_root().join("supervise-recover");
    let _ = std::fs::remove_dir_all(&dir);
    let mut args = serve_args(2, &dir, Some("seed=13;wal_torn@2"));
    args.push("--supervise".into());
    let mut child = Command::new(BIN)
        .arg("serve")
        .args(&args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn supervisor");
    // The third disrupt aborts the first daemon mid-append; the respawn
    // replays the two durable events and serves the rest. Its own fault
    // plan is identical (argv is inherited) but harmless: the respawned
    // daemon never reaches request index 2.
    drip(
        child.stdin.take().expect("stdin piped"),
        vec![
            "{\"v\":1,\"id\":\"d0\",\"op\":\"disrupt\",\"edges\":[1],\"cost\":1.0}\n".into(),
            "{\"v\":1,\"id\":\"d1\",\"op\":\"disrupt\",\"edges\":[2],\"cost\":1.0}\n".into(),
            "{\"v\":1,\"id\":\"d2\",\"op\":\"disrupt\",\"edges\":[3],\"cost\":1.0}\n".into(),
            "{\"v\":1,\"id\":\"s\",\"op\":\"snapshot\"}\n".into(),
            "{\"v\":1,\"id\":\"z\",\"op\":\"shutdown\"}\n".into(),
        ],
        Duration::from_millis(600),
    );
    let out = child.wait_with_output().expect("wait for supervisor");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "clean shutdown propagates: {stderr}");
    assert!(stderr.contains("respawning"), "{stderr}");
    assert!(
        stderr.contains("salvaged"),
        "the respawned daemon must salvage the torn tail: {stderr}"
    );
    // d0 and d1 were durable and survive; d2 died mid-append and was
    // never acknowledged, so the recovered session has exactly two
    // broken edges and the snapshot is WAL event 3.
    assert!(stdout.contains("\"broken_edges\":2"), "{stdout}");
    assert!(stdout.contains("\"wal_seq\":3"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn supervisor_gives_up_on_a_crash_loop_instead_of_masking_it() {
    let dir = scratch_root().join("supervise-loop");
    let _ = std::fs::remove_dir_all(&dir);
    let mut args = serve_args(1, &dir, Some("seed=13;crash@0"));
    args.push("--supervise".into());
    let mut child = Command::new(BIN)
        .arg("serve")
        .args(&args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn supervisor");
    // Every child aborts on its first request, so keep requests coming
    // until the supervisor declares a crash loop and exits nonzero.
    let fuel: Vec<String> = (0..60)
        .map(|i| format!("{{\"v\":1,\"id\":\"f{i}\",\"op\":\"query_routability\"}}\n"))
        .collect();
    drip(
        child.stdin.take().expect("stdin piped"),
        fuel,
        Duration::from_millis(150),
    );
    let out = child.wait_with_output().expect("wait for supervisor");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(1),
        "a deterministic crash must surface, not loop forever: {stderr}"
    );
    assert!(stderr.contains("crash loop"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}
