//! Ablation (DESIGN.md decision 2): the paper's dynamic path metric vs a
//! plain hop metric inside ISP. The dynamic metric — repair costs over
//! residual capacity — is what concentrates demand onto already-repaired
//! components; dropping it must never make plans infeasible, and on the
//! paper's Bell-Canada workload it should not produce *cheaper* plans.

use netrec_core::{solve_isp, IspConfig, MetricMode, RecoveryProblem};
use netrec_disrupt::DisruptionModel;
use netrec_topology::bell::bell_canada;
use netrec_topology::demand::{generate_demands, DemandSpec};

fn bell_problem(seed: u64) -> RecoveryProblem {
    let topo = bell_canada();
    let demands = generate_demands(&topo, &DemandSpec::new(4, 10.0), seed);
    let broken = DisruptionModel::Complete.apply(&topo, seed);
    let mut p = RecoveryProblem::new(topo.graph().clone());
    for (s, t, d) in demands {
        p.add_demand(s, t, d).unwrap();
    }
    for (i, &b) in broken.broken_nodes.iter().enumerate() {
        if b {
            p.break_node(p.graph().node(i), 1.0).unwrap();
        }
    }
    for (i, &b) in broken.broken_edges.iter().enumerate() {
        if b {
            p.break_edge(netrec_graph::EdgeId::new(i), 1.0).unwrap();
        }
    }
    p
}

#[test]
fn dynamic_metric_is_never_worse_on_average() {
    let mut dynamic_total = 0usize;
    let mut hops_total = 0usize;
    for seed in [11u64, 22, 33] {
        let p = bell_problem(seed);
        let dynamic = solve_isp(
            &p,
            &IspConfig {
                metric: MetricMode::Dynamic,
                ..Default::default()
            },
        )
        .unwrap();
        let hops = solve_isp(
            &p,
            &IspConfig {
                metric: MetricMode::Hops,
                ..Default::default()
            },
        )
        .unwrap();
        // Both must be feasible regardless of metric.
        assert!(dynamic.verify_routable(&p).unwrap());
        assert!(hops.verify_routable(&p).unwrap());
        eprintln!(
            "seed {seed}: dynamic {} repairs, hops {} repairs",
            dynamic.total_repairs(),
            hops.total_repairs()
        );
        dynamic_total += dynamic.total_repairs();
        hops_total += hops.total_repairs();
    }
    assert!(
        dynamic_total <= hops_total + 3,
        "dynamic metric should not repair notably more: {dynamic_total} vs {hops_total}"
    );
}
