use netrec_core::heuristics::{
    all::solve_all,
    opt::{solve_opt, OptConfig},
    srt::solve_srt,
};
use netrec_core::{solve_isp_with_stats, IspConfig, RecoveryProblem};
use netrec_disrupt::DisruptionModel;
use netrec_topology::{
    bell::bell_canada,
    demand::{generate_demands, DemandSpec},
};
use std::time::Instant;

#[test]
fn bell_canada_full_destruction_smoke() {
    let topo = bell_canada();
    let demands = generate_demands(&topo, &DemandSpec::new(4, 10.0), 42);
    let disruption = DisruptionModel::Complete.apply(&topo, 0);
    let mut p = RecoveryProblem::new(topo.graph().clone());
    for (s, t, d) in &demands {
        p.add_demand(*s, *t, *d).unwrap();
    }
    for (i, &b) in disruption.broken_nodes.iter().enumerate() {
        if b {
            p.break_node(p.graph().node(i), 1.0).unwrap();
        }
    }
    for (i, &b) in disruption.broken_edges.iter().enumerate() {
        if b {
            p.break_edge(netrec_graph::EdgeId::new(i), 1.0).unwrap();
        }
    }

    let t0 = Instant::now();
    let (isp, stats) = solve_isp_with_stats(&p, &IspConfig::default()).unwrap();
    let isp_time = t0.elapsed();
    eprintln!(
        "ISP: {} repairs in {:?} ({} iters, {} splits, {} prunes, fallback={})",
        isp.total_repairs(),
        isp_time,
        stats.iterations,
        stats.splits,
        stats.prunes,
        stats.used_fallback
    );
    assert!(
        isp.verify_routable(&p).unwrap(),
        "ISP plan must be feasible"
    );

    let t0 = Instant::now();
    let srt = solve_srt(&p);
    eprintln!(
        "SRT: {} repairs in {:?}, satisfied {:.2}",
        srt.total_repairs(),
        t0.elapsed(),
        srt.satisfied_fraction(&p).unwrap()
    );

    let all = solve_all(&p);
    eprintln!("ALL: {} repairs", all.total_repairs());

    let t0 = Instant::now();
    let opt = solve_opt(
        &p,
        &OptConfig {
            node_budget: Some(50),
            warm_start: true,
        },
    )
    .unwrap();
    eprintln!(
        "OPT: {} repairs in {:?} (fallback={})",
        opt.total_repairs(),
        t0.elapsed(),
        opt.used_fallback
    );

    assert!(opt.total_repairs() <= isp.total_repairs());
    assert!(isp.total_repairs() < all.total_repairs());
}
