//! Property tests of the evaluation-oracle layer: the approximate
//! backend is conservative w.r.t. the exact one, the cache decorator
//! is observationally identical to its inner backend, and the
//! precomputed-artifact front is answer-identical to the live exact
//! backends no matter which states were swept offline.

use netrec_core::oracle::artifact::ArtifactBuilder;
use netrec_core::oracle::{Cached, ConcurrentFlowApprox, ExactLp, IncrementalOracle};
use netrec_core::{ArtifactOracle, RoutabilityOracle, SatisfactionOracle};
use netrec_graph::Graph;
use netrec_lp::mcf::Demand;
use proptest::prelude::*;
use std::sync::Arc;

/// Random connected graph: a random tree over `n` nodes plus extra
/// edges, capacities in [0.5, 16].
fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..10)
        .prop_flat_map(|n| {
            let anchors: Vec<_> = (1..n).map(|v| 0..v).collect();
            let extra = proptest::collection::vec((0..n, 0..n, 0.5f64..16.0), 0..n);
            let caps = proptest::collection::vec(0.5f64..16.0, n - 1);
            (Just(n), anchors, caps, extra)
        })
        .prop_map(|(n, anchors, caps, extra)| {
            let mut g = Graph::with_nodes(n);
            for (v, (a, c)) in anchors.into_iter().zip(caps).enumerate() {
                g.add_edge(g.node(v + 1), g.node(a), c).unwrap();
            }
            for (a, b, c) in extra {
                if a != b {
                    g.add_edge(g.node(a), g.node(b), c).unwrap();
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness (satellite requirement): `ConcurrentFlowApprox` never
    /// reports routable when `ExactLp` reports unroutable — with or
    /// without the boundary-band fallback.
    #[test]
    fn approx_never_routable_when_exact_unroutable(
        g in arb_graph(),
        s1 in 0usize..10,
        t1 in 0usize..10,
        s2 in 0usize..10,
        t2 in 0usize..10,
        d1 in 0.2f64..20.0,
        d2 in 0.2f64..20.0,
    ) {
        let n = g.node_count();
        let demands = [
            Demand::new(g.node(s1 % n), g.node(t1 % n), d1),
            Demand::new(g.node(s2 % n), g.node(t2 % n), d2),
        ];
        let exact = ExactLp::new();
        let exact_answer = exact.is_routable(&g.view(), &demands).unwrap();
        for approx in [
            ConcurrentFlowApprox::new(0.05),
            ConcurrentFlowApprox::new(0.2),
            ConcurrentFlowApprox::new(0.05).with_fallback_limit(0),
        ] {
            let approx_answer = approx.is_routable(&g.view(), &demands).unwrap();
            prop_assert!(
                exact_answer || !approx_answer,
                "approx(ε={}) certified an unroutable instance",
                approx.epsilon()
            );
        }
    }

    /// The approximate satisfaction answer is a valid lower bound on the
    /// exact optimum for the total served demand.
    #[test]
    fn approx_satisfaction_never_exceeds_exact(
        g in arb_graph(),
        s in 0usize..10,
        t in 0usize..10,
        d in 0.2f64..40.0,
    ) {
        let n = g.node_count();
        prop_assume!(s % n != t % n);
        let demands = [Demand::new(g.node(s % n), g.node(t % n), d)];
        let exact = ExactLp::new().satisfied(&g.view(), &demands).unwrap();
        let approx = ConcurrentFlowApprox::new(0.05)
            .satisfied(&g.view(), &demands)
            .unwrap();
        prop_assert!(
            approx[0] <= exact[0] + 1e-6,
            "approx bound {} exceeds exact {}",
            approx[0],
            exact[0]
        );
    }

    /// The cache decorator is observationally identical to its inner
    /// backend, on cold and warm queries alike.
    #[test]
    fn cached_matches_inner_on_masked_views(
        g in arb_graph(),
        s in 0usize..10,
        t in 0usize..10,
        d in 0.2f64..20.0,
        mask_bits in proptest::collection::vec(any::<bool>(), 10),
    ) {
        let n = g.node_count();
        prop_assume!(s % n != t % n);
        let demands = [Demand::new(g.node(s % n), g.node(t % n), d)];
        let mut mask: Vec<bool> = (0..n).map(|i| mask_bits[i % mask_bits.len()]).collect();
        mask[s % n] = true;
        mask[t % n] = true;

        let plain = ExactLp::new();
        let cached = Cached::new(ExactLp::new());
        for view in [g.view(), g.view().with_node_mask(&mask)] {
            for _ in 0..2 {
                prop_assert_eq!(
                    cached.is_routable(&view, &demands).unwrap(),
                    plain.is_routable(&view, &demands).unwrap()
                );
                prop_assert_eq!(
                    cached.satisfied(&view, &demands).unwrap(),
                    plain.satisfied(&view, &demands).unwrap()
                );
            }
        }
        // Each view's second round (2 query kinds × 2 views) must hit; an
        // all-true mask legitimately collides with the full view and adds
        // more hits on top.
        prop_assert!(cached.hits() >= 4, "second round must be all hits: {}", cached.hits());
    }

    /// Tentpole acceptance: `IncrementalOracle` is answer-equivalent to
    /// `ExactLp` across arbitrary interleaved apply/undo sequences on
    /// random topologies — identical routability verdicts and identical
    /// optimal satisfied totals at every step. (Per-demand splits may
    /// differ between degenerate optima of the same LP, so totals are
    /// the invariant; the scheduler consumes exactly the totals.)
    #[test]
    fn incremental_equals_exact_under_apply_undo(
        g in arb_graph(),
        s1 in 0usize..10,
        t1 in 0usize..10,
        d1 in 0.2f64..20.0,
        s2 in 0usize..10,
        t2 in 0usize..10,
        d2 in 0.2f64..20.0,
        toggles in proptest::collection::vec((any::<bool>(), 0usize..64), 1..25),
    ) {
        let n = g.node_count();
        let m = g.edge_count();
        let demands = [
            Demand::new(g.node(s1 % n), g.node(t1 % n), d1),
            Demand::new(g.node(s2 % n), g.node(t2 % n), d2),
        ];
        let incremental = IncrementalOracle::new();
        let exact = ExactLp::new();
        // Start fully broken; each step toggles one component (an apply
        // or an undo), querying both oracles on the resulting state.
        let mut node_mask = vec![false; n];
        let mut edge_mask = vec![false; m];
        for &(toggle_node, idx) in &toggles {
            if toggle_node || m == 0 {
                let i = idx % n;
                node_mask[i] = !node_mask[i];
            } else {
                let i = idx % m;
                edge_mask[i] = !edge_mask[i];
            }
            let view = g
                .view()
                .with_node_mask(&node_mask)
                .with_edge_mask(&edge_mask);
            prop_assert_eq!(
                incremental.is_routable(&view, &demands).unwrap(),
                exact.is_routable(&view, &demands).unwrap()
            );
            let a = incremental.satisfied(&view, &demands).unwrap();
            let b = exact.satisfied(&view, &demands).unwrap();
            let (ta, tb): (f64, f64) = (a.iter().sum(), b.iter().sum());
            prop_assert!((ta - tb).abs() < 1e-6, "totals diverge: {} vs {}", ta, tb);
        }
    }

    /// Artifact integrity (satellite requirement): fronting the
    /// incremental backend with a precomputed artifact never changes an
    /// answer — `ArtifactOracle` ≡ `IncrementalOracle` ≡ `ExactLp` over
    /// random disruption sequences, for *any* swept subset of the
    /// visited states (including states the walk never revisits, and
    /// whether a query hits a verdict, transfers through a witness or a
    /// cut certificate, or falls through on a miss).
    #[test]
    fn artifact_front_never_changes_an_answer(
        g in arb_graph(),
        s1 in 0usize..10,
        t1 in 0usize..10,
        d1 in 0.2f64..20.0,
        s2 in 0usize..10,
        t2 in 0usize..10,
        d2 in 0.2f64..20.0,
        toggles in proptest::collection::vec((any::<bool>(), 0usize..64), 1..20),
        swept in proptest::collection::vec(any::<bool>(), 20),
    ) {
        let n = g.node_count();
        let m = g.edge_count();
        let demands = vec![
            Demand::new(g.node(s1 % n), g.node(t1 % n), d1),
            Demand::new(g.node(s2 % n), g.node(t2 % n), d2),
        ];
        // Offline pass: walk the disruption sequence once with the exact
        // backend, sweeping an arbitrary subset of the states into the
        // artifact.
        let exact = ExactLp::new();
        let mut builder = ArtifactBuilder::new(&g, &demands);
        let mut node_mask = vec![false; n];
        let mut edge_mask = vec![false; m];
        for (step, &(toggle_node, idx)) in toggles.iter().enumerate() {
            if toggle_node || m == 0 {
                node_mask[idx % n] ^= true;
            } else {
                edge_mask[idx % m] ^= true;
            }
            if swept[step % swept.len()] {
                let view = g.view().with_node_mask(&node_mask).with_edge_mask(&edge_mask);
                let verdict = exact.is_routable(&view, &demands).unwrap();
                builder.record(&view, &demands, verdict);
            }
        }
        let artifact = Arc::new(builder.finish("proptest", &["walk".to_string()]));

        // Online pass: replay the same sequence against the fronted
        // oracle; every verdict must match the live exact backends.
        let fronted = ArtifactOracle::new(Arc::clone(&artifact), Box::new(IncrementalOracle::new()));
        let incremental = IncrementalOracle::new();
        let mut node_mask = vec![false; n];
        let mut edge_mask = vec![false; m];
        for &(toggle_node, idx) in &toggles {
            if toggle_node || m == 0 {
                node_mask[idx % n] ^= true;
            } else {
                edge_mask[idx % m] ^= true;
            }
            let view = g.view().with_node_mask(&node_mask).with_edge_mask(&edge_mask);
            let truth = exact.is_routable(&view, &demands).unwrap();
            prop_assert_eq!(
                fronted.is_routable(&view, &demands).unwrap(),
                truth,
                "artifact front diverged from exact"
            );
            prop_assert_eq!(
                incremental.is_routable(&view, &demands).unwrap(),
                truth,
                "incremental diverged from exact"
            );
            // Satisfaction bypasses the artifact by design and stays
            // exact-equivalent in total.
            let a = fronted.satisfied(&view, &demands).unwrap();
            let b = exact.satisfied(&view, &demands).unwrap();
            let (ta, tb): (f64, f64) = (a.iter().sum(), b.iter().sum());
            prop_assert!((ta - tb).abs() < 1e-6, "totals diverge: {} vs {}", ta, tb);
        }
    }

    /// Any single-byte corruption or truncation of a saved artifact is
    /// rejected at load with a typed error — never a panic, never a
    /// silently different artifact.
    #[test]
    fn corrupted_artifact_files_never_load(
        g in arb_graph(),
        s in 0usize..10,
        t in 0usize..10,
        d in 0.2f64..20.0,
        cut_at in 0usize..65536,
        flip_at in 0usize..65536,
        flip_with in 1u32..256,
    ) {
        let flip_with = flip_with as u8;
        let n = g.node_count();
        prop_assume!(s % n != t % n);
        let demands = vec![Demand::new(g.node(s % n), g.node(t % n), d)];
        let exact = ExactLp::new();
        let mut builder = ArtifactBuilder::new(&g, &demands);
        let verdict = exact.is_routable(&g.view(), &demands).unwrap();
        builder.record(&g.view(), &demands, verdict);
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "netrec-proptest-artifact-{}-{:x}.nra",
            std::process::id(),
            (cut_at << 16) | flip_at
        ));
        builder
            .finish("proptest", &["intact".to_string()])
            .save(&path, false)
            .unwrap();
        let full = std::fs::read(&path).unwrap();

        // Truncation (a torn copy) at any interior offset.
        let cut = cut_at % full.len();
        std::fs::write(&path, &full[..cut]).unwrap();
        prop_assert!(netrec_core::RoutabilityArtifact::load(&path).is_err());

        // A single flipped byte anywhere in the file.
        let mut flipped = full.clone();
        let at = flip_at % flipped.len();
        flipped[at] ^= flip_with;
        std::fs::write(&path, &flipped).unwrap();
        prop_assert!(
            netrec_core::RoutabilityArtifact::load(&path).is_err(),
            "flipping byte {} with {:#04x} went undetected",
            at,
            flip_with
        );
        let _ = std::fs::remove_file(&path);
    }
}
