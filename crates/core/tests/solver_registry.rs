//! Conformance tests of the unified solver layer: every registry entry
//! must solve the standard fixtures to a feasible plan within a
//! deadline, honor a zero deadline and the cancellation flag, and
//! round-trip through the `SolverSpec` canonical encoding.
//!
//! With the offline serde stand-in (see `DESIGN.md` §7) the canonical
//! string form (`Display` ↔ `SolverSpec::parse`) *is* the serialization
//! format, so the round-trip property is serialize → deserialize →
//! identical plan on a fixed problem.

use netrec_core::oracle::artifact::ArtifactBuilder;
use netrec_core::oracle::ExactLp;
use netrec_core::solver::{registry, ProgressEvent, SolveContext, SolverSpec};
use netrec_core::{OracleBuilder, OracleSpec, RecoveryError, RecoveryProblem, RoutabilityOracle};
use netrec_graph::Graph;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Two parallel 2-hop routes 0-1-3 (cap 10) and 0-2-3 (cap 4), all four
/// nodes and edges broken, one 8-unit demand 0→3: the diamond fixture.
fn diamond() -> RecoveryProblem {
    let mut g = Graph::with_nodes(4);
    let edges = [
        g.add_edge(g.node(0), g.node(1), 10.0).unwrap(),
        g.add_edge(g.node(1), g.node(3), 10.0).unwrap(),
        g.add_edge(g.node(0), g.node(2), 4.0).unwrap(),
        g.add_edge(g.node(2), g.node(3), 4.0).unwrap(),
    ];
    let mut p = RecoveryProblem::new(g);
    p.add_demand(p.graph().node(0), p.graph().node(3), 8.0)
        .unwrap();
    for n in 0..4 {
        p.break_node(p.graph().node(n), 1.0).unwrap();
    }
    for e in edges {
        p.break_edge(e, 1.0).unwrap();
    }
    p
}

/// Two disjoint broken lines 0-1-2 and 3-4-5 (cap 10), one demand along
/// each: the two_lines fixture.
fn two_lines() -> RecoveryProblem {
    let mut g = Graph::with_nodes(6);
    let edges = [
        g.add_edge(g.node(0), g.node(1), 10.0).unwrap(),
        g.add_edge(g.node(1), g.node(2), 10.0).unwrap(),
        g.add_edge(g.node(3), g.node(4), 10.0).unwrap(),
        g.add_edge(g.node(4), g.node(5), 10.0).unwrap(),
    ];
    let mut p = RecoveryProblem::new(g);
    p.add_demand(p.graph().node(0), p.graph().node(2), 5.0)
        .unwrap();
    p.add_demand(p.graph().node(3), p.graph().node(5), 5.0)
        .unwrap();
    for e in edges {
        p.break_edge(e, 1.0).unwrap();
    }
    p
}

/// Exhaustively enumerates every repair subset of a fixture's broken
/// component set as a `(node_mask, edge_mask)` pair — every view any
/// solver can reach while planning on that fixture.
fn every_repair_state(problem: &RecoveryProblem) -> Vec<(Vec<bool>, Vec<bool>)> {
    let (base_nodes, base_edges) = problem.working_masks();
    let broken_nodes: Vec<usize> = (0..base_nodes.len()).filter(|&i| !base_nodes[i]).collect();
    let broken_edges: Vec<usize> = (0..base_edges.len()).filter(|&i| !base_edges[i]).collect();
    let k = broken_nodes.len() + broken_edges.len();
    (0..1u32 << k)
        .map(|bits| {
            let mut nm = base_nodes.clone();
            let mut em = base_edges.clone();
            for (j, &n) in broken_nodes.iter().enumerate() {
                if bits >> j & 1 == 1 {
                    nm[n] = true;
                }
            }
            for (j, &e) in broken_edges.iter().enumerate() {
                if bits >> (broken_nodes.len() + j) & 1 == 1 {
                    em[e] = true;
                }
            }
            (nm, em)
        })
        .collect()
}

/// Precomputes an artifact covering *every* repair state of a fixture
/// (exact verdicts), so an artifact-fronted oracle never misses on it.
fn sweep_artifact(problem: &RecoveryProblem, tag: &str) -> std::path::PathBuf {
    let demands = problem.demands();
    let exact = ExactLp::new();
    let mut builder = ArtifactBuilder::new(problem.graph(), &demands);
    for (nm, em) in every_repair_state(problem) {
        let view = problem.full_view().with_node_mask(&nm).with_edge_mask(&em);
        let routable = exact.is_routable(&view, &demands).unwrap();
        builder.record(&view, &demands, routable);
    }
    let path = std::env::temp_dir().join(format!(
        "netrec-conformance-{tag}-{}.nra",
        std::process::id()
    ));
    builder
        .finish(tag, &["exhaustive".to_string()])
        .save(&path, false)
        .unwrap();
    path
}

/// The deprecated `OracleSpec::build`/`build_with_engine` shims must
/// stay answer-identical to the [`OracleBuilder`] front door for every
/// spec variant, probed over every reachable repair state of both
/// fixtures — migrating a caller to the builder can never flip an
/// answer.
#[test]
#[allow(deprecated)]
fn deprecated_shims_agree_with_the_builder_front_door() {
    for (fixture_name, problem) in [("two_lines", two_lines()), ("diamond", diamond())] {
        let artifact = sweep_artifact(&problem, &format!("shim-{fixture_name}"));
        let demands = problem.demands();
        let specs = vec![
            OracleSpec::Exact,
            OracleSpec::Approx { epsilon: 0.05 },
            OracleSpec::Auto { threshold: 8 },
            OracleSpec::CachedExact,
            OracleSpec::CachedApprox { epsilon: 0.05 },
            OracleSpec::Incremental,
            OracleSpec::Artifact {
                path: artifact.to_string_lossy().into_owned(),
            },
        ];
        for spec in specs {
            let old = spec.build();
            let new = OracleBuilder::new(spec.clone()).build().unwrap();
            assert_eq!(old.name(), new.name(), "{fixture_name}: {spec:?}");
            for (nm, em) in every_repair_state(&problem) {
                let view = problem.full_view().with_node_mask(&nm).with_edge_mask(&em);
                assert_eq!(
                    old.is_routable(&view, &demands).unwrap(),
                    new.is_routable(&view, &demands).unwrap(),
                    "{fixture_name}: {spec:?} diverged between shim and builder"
                );
            }
        }
        // The one contract the shims cannot honor: a broken artifact
        // file silently degrades to the plain incremental backend, while
        // the builder reports the typed load error.
        let missing = OracleSpec::Artifact {
            path: "/nonexistent/conformance.nra".into(),
        };
        assert!(OracleBuilder::new(missing.clone()).build().is_err());
        let degraded = missing.build();
        assert!(degraded.is_routable(&problem.full_view(), &demands).is_ok());
        let _ = std::fs::remove_file(&artifact);
    }
}

/// The exact-answer oracle family — exact, incremental, cached-exact,
/// and the precomputed artifact front — is plan-identical for every
/// registry solver on the fixtures: fronting the oracle with an
/// artifact may change costs, never repairs.
#[test]
fn exact_equivalent_oracles_plan_identically_for_every_solver() {
    for (fixture_name, problem) in [("two_lines", two_lines()), ("diamond", diamond())] {
        let artifact = sweep_artifact(&problem, &format!("plan-{fixture_name}"));
        let overrides = vec![
            OracleSpec::Exact,
            OracleSpec::Incremental,
            OracleSpec::CachedExact,
            OracleSpec::Artifact {
                path: artifact.to_string_lossy().into_owned(),
            },
        ];
        for entry in registry() {
            let solver = entry.spec.build();
            let mut plans = Vec::new();
            for spec in &overrides {
                let mut ctx = SolveContext::new()
                    .with_deadline(Duration::from_secs(60))
                    .with_oracle(spec.clone());
                let plan = solver.solve(&problem, &mut ctx).unwrap_or_else(|e| {
                    panic!("{} with {spec:?} on {fixture_name}: {e}", entry.name())
                });
                assert!(
                    plan.verify_routable(&problem).unwrap(),
                    "{} with {spec:?} plan infeasible on {fixture_name}",
                    entry.name()
                );
                plans.push((spec.clone(), plan));
            }
            let (_, reference) = &plans[0];
            for (spec, plan) in &plans[1..] {
                assert_eq!(
                    plan.repaired_nodes,
                    reference.repaired_nodes,
                    "{} node repairs diverge under {spec:?} on {fixture_name}",
                    entry.name()
                );
                assert_eq!(
                    plan.repaired_edges,
                    reference.repaired_edges,
                    "{} edge repairs diverge under {spec:?} on {fixture_name}",
                    entry.name()
                );
            }
        }
        let _ = std::fs::remove_file(&artifact);
    }
}

#[test]
fn every_registry_entry_solves_the_fixtures_within_deadline() {
    for (fixture_name, problem) in [("two_lines", two_lines()), ("diamond", diamond())] {
        for entry in registry() {
            let solver = entry.spec.build();
            let mut ctx = SolveContext::new().with_deadline(Duration::from_secs(60));
            let plan = solver
                .solve(&problem, &mut ctx)
                .unwrap_or_else(|e| panic!("{} on {fixture_name}: {e}", entry.name()));
            assert_eq!(plan.algorithm, entry.name(), "{fixture_name}");
            assert!(
                plan.verify_routable(&problem).unwrap(),
                "{} plan infeasible on {fixture_name}",
                entry.name()
            );
        }
    }
}

/// The `--lp dense` escape hatch: on the conformance fixtures every
/// registry solver must produce the identical plan under both LP engines
/// (DESIGN.md §11). Larger instances may legitimately extract different
/// degenerate optima for the flow-based heuristics; the fixtures are the
/// contract surface.
#[test]
fn dense_escape_hatch_matches_revised_on_the_fixtures() {
    for (fixture_name, problem) in [("two_lines", two_lines()), ("diamond", diamond())] {
        for entry in registry() {
            let solver = entry.spec.build();
            let mut plans = Vec::new();
            for engine in [netrec_lp::LpEngine::Revised, netrec_lp::LpEngine::Dense] {
                let mut ctx = SolveContext::new()
                    .with_deadline(Duration::from_secs(60))
                    .with_lp_engine(engine);
                let plan = solver.solve(&problem, &mut ctx).unwrap_or_else(|e| {
                    panic!("{} ({engine}) on {fixture_name}: {e}", entry.name())
                });
                assert!(
                    plan.verify_routable(&problem).unwrap(),
                    "{} ({engine}) plan infeasible on {fixture_name}",
                    entry.name()
                );
                plans.push(plan);
            }
            assert_eq!(
                plans[0].repaired_nodes,
                plans[1].repaired_nodes,
                "{} node repairs diverge between engines on {fixture_name}",
                entry.name()
            );
            assert_eq!(
                plans[0].repaired_edges,
                plans[1].repaired_edges,
                "{} edge repairs diverge between engines on {fixture_name}",
                entry.name()
            );
        }
    }
}

#[test]
fn zero_deadline_makes_every_solver_return_deadline_exceeded() {
    let problem = diamond();
    for entry in registry() {
        let solver = entry.spec.build();
        let mut ctx = SolveContext::new().with_deadline(Duration::ZERO);
        assert_eq!(
            solver.solve(&problem, &mut ctx).unwrap_err(),
            RecoveryError::DeadlineExceeded,
            "{}",
            entry.name()
        );
    }
}

#[test]
fn raised_cancellation_flag_cancels_every_solver() {
    let problem = diamond();
    let cancelled = AtomicBool::new(true);
    for entry in registry() {
        let solver = entry.spec.build();
        let mut ctx = SolveContext::new().with_cancel_flag(&cancelled);
        assert_eq!(
            solver.solve(&problem, &mut ctx).unwrap_err(),
            RecoveryError::Cancelled,
            "{}",
            entry.name()
        );
    }
}

#[test]
fn cancellation_mid_run_stops_isp() {
    // Cancel from the progress listener after the first main-loop stage:
    // the run must stop with Cancelled instead of finishing.
    let problem = diamond();
    let cancelled = AtomicBool::new(false);
    let solver = SolverSpec::isp().build();
    let mut ctx = SolveContext::new()
        .with_cancel_flag(&cancelled)
        .with_progress(|event| {
            if matches!(
                event,
                ProgressEvent::Stage {
                    stage: "main-loop",
                    ..
                }
            ) {
                cancelled.store(true, Ordering::Relaxed);
            }
        });
    assert_eq!(
        solver.solve(&problem, &mut ctx).unwrap_err(),
        RecoveryError::Cancelled
    );
}

#[test]
fn progress_events_cover_stages_repairs_and_oracle() {
    let problem = diamond();
    let mut events: Vec<ProgressEvent> = Vec::new();
    {
        let mut ctx = SolveContext::new().with_progress(|e| events.push(e.clone()));
        SolverSpec::isp().build().solve(&problem, &mut ctx).unwrap();
    }
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ProgressEvent::Stage { solver: "ISP", .. })),
        "{events:?}"
    );
    let final_repairs = events
        .iter()
        .filter_map(|e| match e {
            ProgressEvent::Repaired { nodes, edges } => Some(nodes + edges),
            _ => None,
        })
        .next_back()
        .expect("ISP must report repairs");
    assert!(final_repairs >= 5, "{events:?}");
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ProgressEvent::OracleSnapshot(s) if s.queries() > 0)),
        "{events:?}"
    );
}

/// Decodes an index + parameters into a spec the same way a user-written
/// spec string would configure it, exercising every variant.
fn spec_from(
    index: usize,
    paths: usize,
    candidates: usize,
    budget: usize,
    flag: bool,
    oracle_idx: usize,
) -> SolverSpec {
    let oracle = match oracle_idx % 3 {
        0 => String::new(),
        1 => ",oracle=cached-exact".into(),
        _ => ",oracle=approx:0.05".into(),
    };
    let text = match index % 8 {
        0 => format!("isp:candidates={candidates},exact-split={flag}{oracle}"),
        1 => {
            if flag {
                format!("opt:budget={budget}")
            } else {
                "opt:budget=none,warm-start=true".into()
            }
        }
        2 => "srt".into(),
        3 => format!("grd-com:paths={paths}"),
        4 => format!("grd-nc:paths={paths},hops=12{oracle}"),
        5 => format!("mcb:eliminations={budget}{oracle}"),
        6 => "mcf:worst".into(),
        _ => "all".into(),
    };
    SolverSpec::parse(&text).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round-trip: serializing a spec to its canonical string and
    /// deserializing it back yields an identical spec — and an identical
    /// plan on a fixed problem.
    #[test]
    fn solver_spec_round_trips_and_plans_identically(
        index in 0usize..8,
        paths in 1usize..64,
        candidates in 1usize..16,
        budget in 1usize..64,
        flag in any::<bool>(),
        oracle_idx in 0usize..3,
    ) {
        let spec = spec_from(index, paths, candidates, budget, flag, oracle_idx);
        let encoded = spec.to_string();
        let decoded = SolverSpec::parse(&encoded).unwrap();
        prop_assert_eq!(&decoded, &spec, "{}", encoded);

        let problem = two_lines();
        let plan_a = spec.build().solve(&problem, &mut SolveContext::new()).unwrap();
        let plan_b = decoded.build().solve(&problem, &mut SolveContext::new()).unwrap();
        prop_assert_eq!(plan_a.repaired_nodes, plan_b.repaired_nodes);
        prop_assert_eq!(plan_a.repaired_edges, plan_b.repaired_edges);
        prop_assert_eq!(plan_a.algorithm, plan_b.algorithm);
    }
}
