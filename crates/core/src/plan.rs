use crate::oracle::SatisfactionOracle;
use crate::{RecoveryError, RecoveryProblem};
use netrec_graph::{EdgeId, NodeId};
use netrec_lp::mcf;
use serde::{Deserialize, Serialize};

/// The output of a recovery algorithm: which broken components to repair,
/// plus run statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RecoveryPlan {
    /// Broken nodes selected for repair.
    pub repaired_nodes: Vec<NodeId>,
    /// Broken edges selected for repair.
    pub repaired_edges: Vec<EdgeId>,
    /// Name of the algorithm that produced the plan.
    pub algorithm: String,
    /// Algorithm iterations (meaning is algorithm-specific: ISP loop
    /// iterations, B&B nodes, greedy path steps, …).
    pub iterations: usize,
    /// Whether the algorithm fell back to a conservative strategy (e.g.
    /// the ISP iteration guard).
    pub used_fallback: bool,
}

impl RecoveryPlan {
    /// Creates an empty plan for `algorithm`.
    pub fn new(algorithm: impl Into<String>) -> Self {
        RecoveryPlan {
            algorithm: algorithm.into(),
            ..Default::default()
        }
    }

    /// Total number of repaired components (the paper's headline metric).
    pub fn total_repairs(&self) -> usize {
        self.repaired_nodes.len() + self.repaired_edges.len()
    }

    /// Total repair cost under the problem's cost vectors.
    pub fn repair_cost(&self, problem: &RecoveryProblem) -> f64 {
        let nodes: f64 = self
            .repaired_nodes
            .iter()
            .map(|&n| problem.node_cost(n))
            .sum();
        let edges: f64 = self
            .repaired_edges
            .iter()
            .map(|&e| problem.edge_cost(e))
            .sum();
        nodes + edges
    }

    /// Working masks **after** applying this plan's repairs:
    /// enabled = not broken, or broken-and-repaired.
    pub fn repaired_masks(&self, problem: &RecoveryProblem) -> (Vec<bool>, Vec<bool>) {
        let (mut nm, mut em) = problem.working_masks();
        for n in &self.repaired_nodes {
            nm[n.index()] = true;
        }
        for e in &self.repaired_edges {
            em[e.index()] = true;
        }
        (nm, em)
    }

    /// Fraction of the total demand that the repaired network can satisfy,
    /// in `[0, 1]` (1.0 when the total demand is zero). Computed with the
    /// maximum-satisfied-demand LP on the post-repair working subgraph.
    ///
    /// # Errors
    ///
    /// Propagates LP solver failures.
    pub fn satisfied_fraction(&self, problem: &RecoveryProblem) -> Result<f64, RecoveryError> {
        self.satisfied_fraction_with(problem, &crate::oracle::ExactLp::new())
    }

    /// [`RecoveryPlan::satisfied_fraction`] evaluated through an explicit
    /// [evaluation oracle](crate::oracle) — cached backends make repeated
    /// plan assessments over the same damage cheap, approximate backends
    /// return a conservative lower bound.
    ///
    /// # Errors
    ///
    /// Propagates LP solver failures from the oracle.
    pub fn satisfied_fraction_with(
        &self,
        problem: &RecoveryProblem,
        oracle: &dyn SatisfactionOracle,
    ) -> Result<f64, RecoveryError> {
        let total = problem.total_demand();
        if total <= 0.0 {
            return Ok(1.0);
        }
        let (nm, em) = self.repaired_masks(problem);
        let view = problem.full_view().with_node_mask(&nm).with_edge_mask(&em);
        let sat = oracle.satisfied(&view, &problem.demands())?;
        Ok(sat.iter().sum::<f64>() / total)
    }

    /// Verifies that the plan's repairs make the *entire* demand routable
    /// (the paper's feasibility guarantee for ISP and GRD-NC).
    ///
    /// # Errors
    ///
    /// Propagates LP solver failures.
    pub fn verify_routable(&self, problem: &RecoveryProblem) -> Result<bool, RecoveryError> {
        let (nm, em) = self.repaired_masks(problem);
        let view = problem.full_view().with_node_mask(&nm).with_edge_mask(&em);
        Ok(mcf::routability(&view, &problem.demands())?.is_some())
    }

    /// A concrete routing of the problem's demands over the repaired
    /// network — per-demand, per-edge net flows (the paper's ISP "also
    /// produces a routing solution").
    ///
    /// Returns `Ok(None)` if the plan does not actually make the demand
    /// routable (possible for SRT / GRD-COM, which give no feasibility
    /// guarantee).
    ///
    /// # Errors
    ///
    /// Propagates LP solver failures.
    pub fn routing(
        &self,
        problem: &RecoveryProblem,
    ) -> Result<Option<mcf::FlowAssignment>, RecoveryError> {
        let (nm, em) = self.repaired_masks(problem);
        let view = problem.full_view().with_node_mask(&nm).with_edge_mask(&em);
        Ok(mcf::routability(&view, &problem.demands())?)
    }

    /// Deduplicates and sorts the repair lists (algorithms may record a
    /// component twice; idempotent).
    pub fn normalize(&mut self) {
        self.repaired_nodes.sort();
        self.repaired_nodes.dedup();
        self.repaired_edges.sort();
        self.repaired_edges.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrec_graph::Graph;

    /// 0-1-2 line, both edges broken, demand 0→2.
    fn broken_line() -> RecoveryProblem {
        let mut g = Graph::with_nodes(3);
        let e0 = g.add_edge(g.node(0), g.node(1), 10.0).unwrap();
        let e1 = g.add_edge(g.node(1), g.node(2), 10.0).unwrap();
        let mut p = RecoveryProblem::new(g);
        p.add_demand(p.graph().node(0), p.graph().node(2), 5.0)
            .unwrap();
        p.break_edge(e0, 2.0).unwrap();
        p.break_edge(e1, 3.0).unwrap();
        p
    }

    #[test]
    fn counts_and_costs() {
        let p = broken_line();
        let mut plan = RecoveryPlan::new("test");
        plan.repaired_edges = vec![EdgeId::new(0), EdgeId::new(1)];
        assert_eq!(plan.total_repairs(), 2);
        assert_eq!(plan.repair_cost(&p), 5.0);
    }

    #[test]
    fn verify_routable_needs_both_edges() {
        let p = broken_line();
        let mut partial = RecoveryPlan::new("partial");
        partial.repaired_edges = vec![EdgeId::new(0)];
        assert!(!partial.verify_routable(&p).unwrap());
        let mut full = RecoveryPlan::new("full");
        full.repaired_edges = vec![EdgeId::new(0), EdgeId::new(1)];
        assert!(full.verify_routable(&p).unwrap());
    }

    #[test]
    fn satisfied_fraction_partial() {
        let p = broken_line();
        let none = RecoveryPlan::new("none");
        assert_eq!(none.satisfied_fraction(&p).unwrap(), 0.0);
        let mut full = RecoveryPlan::new("full");
        full.repaired_edges = vec![EdgeId::new(0), EdgeId::new(1)];
        assert!((full.satisfied_fraction(&p).unwrap() - 1.0).abs() < 1e-7);
    }

    #[test]
    fn normalize_dedups() {
        let mut plan = RecoveryPlan::new("d");
        plan.repaired_edges = vec![EdgeId::new(1), EdgeId::new(0), EdgeId::new(1)];
        plan.repaired_nodes = vec![NodeId::new(2), NodeId::new(2)];
        plan.normalize();
        assert_eq!(plan.repaired_edges, vec![EdgeId::new(0), EdgeId::new(1)]);
        assert_eq!(plan.repaired_nodes, vec![NodeId::new(2)]);
    }

    #[test]
    fn routing_respects_capacities_and_balances() {
        let p = broken_line();
        let mut full = RecoveryPlan::new("full");
        full.repaired_edges = vec![EdgeId::new(0), EdgeId::new(1)];
        let flows = full.routing(&p).unwrap().expect("plan is feasible");
        // One demand of 5 units across both edges.
        assert!((flows.flow[0][0].abs() - 5.0).abs() < 1e-6);
        assert!((flows.flow[0][1].abs() - 5.0).abs() < 1e-6);
        // An infeasible plan yields no routing.
        let partial = RecoveryPlan::new("none");
        assert!(partial.routing(&p).unwrap().is_none());
    }

    #[test]
    fn satisfied_fraction_with_matches_exact_and_bounds_approx() {
        let p = broken_line();
        let mut full = RecoveryPlan::new("full");
        full.repaired_edges = vec![EdgeId::new(0), EdgeId::new(1)];
        for plan in [&RecoveryPlan::new("none"), &full] {
            let reference = plan.satisfied_fraction(&p).unwrap();
            let exact = plan
                .satisfied_fraction_with(&p, &crate::oracle::ExactLp::new())
                .unwrap();
            assert_eq!(exact, reference);
            let approx = plan
                .satisfied_fraction_with(&p, &crate::oracle::ConcurrentFlowApprox::new(0.05))
                .unwrap();
            assert!(approx <= reference + 1e-9, "approx {approx} > {reference}");
        }
        let cached = crate::oracle::Cached::new(crate::oracle::ExactLp::new());
        let first = full.satisfied_fraction_with(&p, &cached).unwrap();
        let second = full.satisfied_fraction_with(&p, &cached).unwrap();
        assert_eq!(first, second);
        assert_eq!(cached.hits(), 1);
    }

    #[test]
    fn satisfied_fraction_trivial_when_no_demand() {
        let g = Graph::with_nodes(2);
        let p = RecoveryProblem::new(g);
        let plan = RecoveryPlan::new("x");
        assert_eq!(plan.satisfied_fraction(&p).unwrap(), 1.0);
    }
}
