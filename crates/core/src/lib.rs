//! The MINIMUM RECOVERY problem and its solvers (Bartolini et al.,
//! DSN 2016: *"Network recovery after massive failures"*).
//!
//! After a massive disruption breaks nodes (`VB`) and edges (`EB`) of a
//! capacitated supply graph, [`RecoveryProblem`] asks for the
//! cheapest set of repairs that lets a set of demand flows be routed.
//! The problem is NP-hard (reduction from Steiner Forest — Theorem 1).
//!
//! All solvers live behind the unified [`solver`] layer: a
//! [`SolverSpec`] names an algorithm plus its configuration as data,
//! `build()` turns it into a [`solver::RecoverySolver`] trait object, and
//! [`solver::registry`] lists the whole line-up of the paper's §VI:
//!
//! * `isp` — the paper's contribution: **Iterative Split and Prune**, a
//!   polynomial-time heuristic built on demand-based centrality
//!   ([`centrality`]); also directly via [`solve_isp`].
//! * `srt` — the Shortest-Path heuristic (SRT, §VI-B; [`heuristics::srt`]).
//! * `grd-com` / `grd-nc` — Greedy Commitment and Greedy No-Commitment
//!   (§VI-C), knapsack-style path ranking ([`heuristics::greedy`]).
//! * `opt` — the exact MILP (1) via branch & bound ([`heuristics::opt`]).
//! * `mcb` / `mcw` — the multi-commodity relaxation LP (8) with
//!   best/worst repair extraction (§VI-A; [`heuristics::mcf_relax`]).
//! * `all` — repair everything (the ALL baseline; [`heuristics::all`]).
//!
//! All solvers answer their routability / satisfied-demand questions
//! through the pluggable [`oracle`] layer (exact LP, conservative
//! concurrent-flow approximation, a memoizing cache, or the
//! warm-starting incremental backend `--oracle incremental` — see
//! `DESIGN.md`),
//! and every run threads a [`solver::SolveContext`] carrying the oracle
//! override, an optional wall-clock deadline, a cancellation flag, and a
//! progress listener.
//!
//! # Quickstart
//!
//! ```
//! use netrec_core::solver::{SolveContext, SolverSpec};
//! use netrec_core::RecoveryProblem;
//! use netrec_graph::Graph;
//!
//! // A diamond with a broken relay on each route.
//! let mut g = Graph::with_nodes(4);
//! g.add_edge(g.node(0), g.node(1), 10.0)?;
//! g.add_edge(g.node(1), g.node(3), 10.0)?;
//! g.add_edge(g.node(0), g.node(2), 10.0)?;
//! g.add_edge(g.node(2), g.node(3), 10.0)?;
//! let mut problem = RecoveryProblem::new(g);
//! problem.add_demand(problem.graph().node(0), problem.graph().node(3), 5.0)?;
//! problem.break_node(problem.graph().node(1), 1.0)?;
//! problem.break_node(problem.graph().node(2), 1.0)?;
//!
//! // Any CLI-style spec string works: "isp", "grd-nc:paths=8", "mcf:worst".
//! let solver = SolverSpec::parse("isp")?.build();
//! let plan = solver.solve(&problem, &mut SolveContext::new())?;
//! assert_eq!(plan.repaired_nodes.len(), 1); // one relay suffices
//! assert!(plan.verify_routable(&problem)?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod plan;
mod problem;
mod routability;
mod state;

pub mod centrality;
pub mod fault;
pub mod fsio;
pub mod heuristics;
pub mod isp;
pub mod oracle;
pub mod schedule;
pub mod solver;
pub mod vulnerability;

pub use error::RecoveryError;
pub use fault::{FaultPlan, Faults};
pub use isp::{solve_isp, solve_isp_with_stats, IspConfig, IspStats, MetricMode};
pub use oracle::{
    AnswerSource, ArtifactOracle, EvalOracle, OracleBuilder, OracleSpec, OracleStats,
    RoutabilityArtifact, RoutabilityOracle, SatisfactionOracle,
};
pub use plan::RecoveryPlan;
pub use problem::{RecoveryProblem, StatePatch};
pub use routability::RoutabilityMode;
pub use solver::{RecoverySolver, SolveContext, SolverSpec};
