//! The precomputed routability artifact and its oracle front door.
//!
//! `netrec-cli precompute` sweeps disruption classes of one base
//! instance offline and stores what it proved in a
//! [`RoutabilityArtifact`]: exact per-state verdicts keyed by the
//! canonical subgraph fingerprint (the private `canon` module), monotone
//! routable/unroutable witnesses, and cut certificates. At query time
//! [`ArtifactOracle`] consults the artifact first — a verdict hit is an
//! O(1) hash lookup, no LP anywhere near it — and falls through to its
//! inner backend (the [`super::IncrementalOracle`] by default) on a
//! miss. The
//! artifact is immutable after load, so one [`Arc`] serves every
//! session of a resident daemon and every scenario of a campaign
//! concurrently.
//!
//! **When is a hit sound?** Three transfer rules, all exact:
//!
//! 1. *Fingerprint equality.* Answers transfer only while the base
//!    instance matches: the generation key (graph wiring + demand
//!    list, `generation_key_of`) is stored in the artifact and
//!    checked on every lookup. Two states that canonicalize to the same
//!    effective subgraph are the same LP instance, so the stored
//!    verdict *is* the exact verdict.
//! 2. *Monotone witnesses.* A state extending a routable witness
//!    (every witness edge present with at least its capacity) is
//!    routable — the witnessed routing is still feasible. A state that
//!    a stored unroutable witness extends is unroutable — it offers
//!    strictly less. Same deduction the incremental oracle makes, from
//!    witnesses proven offline.
//! 3. *Cut certificates.* For a node set `S` recorded from an
//!    unroutable state, any state whose enabled capacity crossing `S`
//!    is below the total demand that must cross `S` is unroutable:
//!    every unit of crossing demand consumes a unit of crossing
//!    capacity regardless of routing. This transfers across capacity
//!    changes monotone witnesses cannot reach.
//!
//! On disk the artifact is netrec-json text inside the checksummed
//! [`crate::fsio`] container frame, so torn, truncated,
//! version-mismatched, or foreign files are rejected at load with
//! typed errors ([`ArtifactError`]) instead of producing wrong
//! answers. All integer bit patterns (keys, capacity bits) are stored
//! as fixed-width hex strings — the JSON number type is an `f64` and
//! cannot carry them losslessly.

use super::canon::{
    canonicalize, extends, insert_maximal_capped, insert_minimal_capped, EffState, RawState,
    UnionFind,
};
use super::{Counter, EvalOracle, OracleStats, Patch, RoutabilityOracle, SatisfactionOracle};
use crate::fsio::{self, ContainerError};
use crate::RecoveryError;
use netrec_graph::{Graph, View};
use netrec_json::{object, Json};
use netrec_lp::mcf::Demand;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// Container kind tag of artifact files.
pub const ARTIFACT_KIND: &str = "routability-artifact";

/// Artifact format version; bumped on any change to the JSON schema.
pub const ARTIFACT_VERSION: u32 = 1;

/// Witness-list bound per kind. Far above the live oracle's 16: the
/// artifact is built once offline and shared read-only, so the only
/// recurring cost is the O(|witnesses| · |E|) scan on a verdict miss.
const MAX_ARTIFACT_WITNESSES: usize = 512;

/// Cut-certificate bound (each check is O(|E|) per miss).
const MAX_CUTS: usize = 256;

/// A typed artifact failure: the container frame rejected the file, the
/// payload did not parse as an artifact, or the artifact does not match
/// the instance it was asked to serve.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactError {
    /// The container frame rejected the file (truncated, torn,
    /// version-mismatched, wrong kind, unreadable…).
    Container(ContainerError),
    /// The payload is not a well-formed artifact (JSON or schema).
    Parse(String),
    /// The artifact was built for a different base instance than the
    /// one it must serve (generation fingerprint mismatch).
    InstanceMismatch,
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Container(e) => write!(f, "{e}"),
            ArtifactError::Parse(why) => write!(f, "malformed artifact payload: {why}"),
            ArtifactError::InstanceMismatch => {
                write!(
                    f,
                    "artifact was precomputed for a different topology/demand instance"
                )
            }
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Container(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ContainerError> for ArtifactError {
    fn from(e: ContainerError) -> Self {
        ArtifactError::Container(e)
    }
}

impl From<ArtifactError> for RecoveryError {
    fn from(e: ArtifactError) -> Self {
        RecoveryError::Artifact(e.to_string())
    }
}

/// A capacity-weighted unroutability certificate: the node set `S` (as
/// a bitset) and the total demand that must cross it. Any state whose
/// enabled crossing capacity is below `crossing_demand` is unroutable.
#[derive(Debug, Clone, PartialEq)]
struct CutCertificate {
    words: Vec<u64>,
    crossing_demand: f64,
}

impl CutCertificate {
    #[inline]
    fn contains(&self, node: usize) -> bool {
        self.words[node / 64] & (1 << (node % 64)) != 0
    }
}

/// The precomputed routability table (see the module docs). Immutable
/// after construction; share via [`Arc`].
#[derive(Debug, Clone)]
pub struct RoutabilityArtifact {
    /// Base-instance fingerprint ([`super::generation_key_of`]).
    generation: Vec<u64>,
    node_count: usize,
    edge_count: usize,
    /// Exact verdicts: canonical state key → routable.
    verdicts: HashMap<Vec<u64>, bool>,
    /// Minimal routable witnesses.
    routable: Vec<EffState>,
    /// Maximal unroutable witnesses.
    unroutable: Vec<EffState>,
    /// Capacity-weighted unroutability certificates.
    cuts: Vec<CutCertificate>,
    /// Free-form provenance: what the sweep covered.
    topology: String,
    classes: Vec<String>,
    /// Disruption states the offline sweep scored.
    source_states: usize,
}

impl RoutabilityArtifact {
    /// Whether this artifact was precomputed for exactly this base
    /// instance (graph wiring + demand list). Lookups on a
    /// non-matching instance always miss.
    pub fn matches(&self, graph: &Graph, demands: &[Demand]) -> bool {
        self.generation == super::generation_key_of(graph, demands)
    }

    /// The stored base-instance fingerprint (for the builder's
    /// generation policy).
    pub(crate) fn generation_key(&self) -> &[u64] {
        &self.generation
    }

    /// Number of exact per-state verdicts stored.
    pub fn verdict_count(&self) -> usize {
        self.verdicts.len()
    }

    /// Number of monotone witnesses stored (both kinds).
    pub fn witness_count(&self) -> usize {
        self.routable.len() + self.unroutable.len()
    }

    /// Number of cut certificates stored.
    pub fn cut_count(&self) -> usize {
        self.cuts.len()
    }

    /// Disruption states the offline sweep scored to build this
    /// artifact.
    pub fn source_states(&self) -> usize {
        self.source_states
    }

    /// Topology label recorded at build time.
    pub fn topology(&self) -> &str {
        &self.topology
    }

    /// Disruption classes the sweep covered, as recorded at build time.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Answers a routability query from the artifact alone, or `None`
    /// on a miss. This is the exact probe [`ArtifactOracle`] and the
    /// serve sessions share: fingerprint check, canonical-key verdict
    /// lookup, then witness and cut-certificate scans.
    pub fn lookup(&self, view: &View<'_>, demands: &[Demand]) -> Option<bool> {
        let graph = view.graph();
        if !self.matches(graph, demands) {
            return None;
        }
        let raw = RawState::of(view);
        let q = canonicalize(graph, demands, &raw.enabled, &raw.caps);
        self.lookup_canonical(graph, &q)
    }

    /// The canonical-state lookup behind [`Self::lookup`] (fingerprint
    /// already checked by the caller).
    fn lookup_canonical(&self, graph: &Graph, q: &EffState) -> Option<bool> {
        if let Some(&verdict) = self.verdicts.get(&q.key()) {
            return Some(verdict);
        }
        if self.routable.iter().any(|w| extends(q, w)) {
            return Some(true);
        }
        if self.unroutable.iter().any(|w| extends(w, q)) {
            return Some(false);
        }
        for cut in &self.cuts {
            let mut crossing_cap = 0.0;
            for e in graph.edges() {
                if q.enabled(e.index()) {
                    let (u, v) = graph.endpoints(e);
                    if cut.contains(u.index()) != cut.contains(v.index()) {
                        crossing_cap += q.caps[e.index()];
                    }
                }
            }
            if crossing_cap < cut.crossing_demand - 1e-9 {
                return Some(false);
            }
        }
        None
    }

    /// Serializes to the on-disk netrec-json payload.
    fn to_json(&self) -> Json {
        let hex_list = |vals: &[u64]| {
            Json::Array(
                vals.iter()
                    .map(|v| Json::String(format!("{v:016x}")))
                    .collect(),
            )
        };
        let state_json = |s: &EffState| {
            // Capacities only for enabled edges, in id order (the same
            // compression as `EffState::key`), stored as f64 bit
            // patterns so the round trip is exact.
            let caps: Vec<u64> = s
                .caps
                .iter()
                .enumerate()
                .filter(|&(e, _)| s.enabled(e))
                .map(|(_, c)| c.to_bits())
                .collect();
            object(vec![
                ("words", hex_list(&s.words)),
                ("caps", hex_list(&caps)),
            ])
        };
        let mut verdicts: Vec<(&Vec<u64>, bool)> =
            self.verdicts.iter().map(|(k, &v)| (k, v)).collect();
        // HashMap iteration order is unstable, and the witness lists
        // carry the builder's insertion order (which differs between a
        // whole-sweep build and a sharded merge); the file must be
        // byte-deterministic for golden tests and content-addressed
        // caching, so everything serializes sorted.
        verdicts.sort();
        let sorted_states = |states: &[EffState]| {
            let mut keyed: Vec<(Vec<u64>, Json)> =
                states.iter().map(|s| (s.key(), state_json(s))).collect();
            keyed.sort_by(|a, b| a.0.cmp(&b.0));
            Json::Array(keyed.into_iter().map(|(_, j)| j).collect())
        };
        object(vec![
            ("generation", hex_list(&self.generation)),
            ("nodes", Json::Number(self.node_count as f64)),
            ("edges", Json::Number(self.edge_count as f64)),
            ("topology", Json::String(self.topology.clone())),
            (
                "classes",
                Json::Array(
                    self.classes
                        .iter()
                        .map(|c| Json::String(c.clone()))
                        .collect(),
                ),
            ),
            ("source_states", Json::Number(self.source_states as f64)),
            (
                "verdicts",
                Json::Array(
                    verdicts
                        .into_iter()
                        .map(|(key, routable)| {
                            object(vec![
                                ("key", hex_list(key)),
                                ("routable", Json::Bool(routable)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("routable", sorted_states(&self.routable)),
            ("unroutable", sorted_states(&self.unroutable)),
            ("cuts", {
                let mut cuts: Vec<&CutCertificate> = self.cuts.iter().collect();
                cuts.sort_by(|a, b| {
                    (&a.words, a.crossing_demand.to_bits())
                        .cmp(&(&b.words, b.crossing_demand.to_bits()))
                });
                Json::Array(
                    cuts.into_iter()
                        .map(|c| {
                            object(vec![
                                ("nodes", hex_list(&c.words)),
                                (
                                    "demand",
                                    Json::String(format!("{:016x}", c.crossing_demand.to_bits())),
                                ),
                            ])
                        })
                        .collect(),
                )
            }),
        ])
    }

    /// Deserializes the on-disk payload.
    fn from_json(json: &Json) -> Result<Self, ArtifactError> {
        let parse = |why: &str| ArtifactError::Parse(why.to_string());
        let hex = |j: &Json, what: &str| -> Result<u64, ArtifactError> {
            j.as_str()
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| parse(&format!("bad hex word in {what}")))
        };
        let hex_list = |j: Option<&Json>, what: &str| -> Result<Vec<u64>, ArtifactError> {
            j.and_then(Json::as_array)
                .ok_or_else(|| parse(&format!("missing {what}")))?
                .iter()
                .map(|w| hex(w, what))
                .collect()
        };
        let node_count = json
            .get("nodes")
            .and_then(Json::as_usize)
            .ok_or_else(|| parse("missing nodes"))?;
        let edge_count = json
            .get("edges")
            .and_then(Json::as_usize)
            .ok_or_else(|| parse("missing edges"))?;
        let words_per_state = edge_count.div_ceil(64);
        let state = |j: &Json| -> Result<EffState, ArtifactError> {
            let words = hex_list(j.get("words"), "state words")?;
            if words.len() != words_per_state {
                return Err(parse("state bitset width does not match edge count"));
            }
            let cap_bits = hex_list(j.get("caps"), "state caps")?;
            let mut caps = vec![0.0; edge_count];
            let mut next = 0;
            for (e, cap) in caps.iter_mut().enumerate() {
                if words[e / 64] & (1 << (e % 64)) != 0 {
                    let bits = *cap_bits
                        .get(next)
                        .ok_or_else(|| parse("state caps shorter than its bitset"))?;
                    *cap = f64::from_bits(bits);
                    next += 1;
                }
            }
            if next != cap_bits.len() {
                return Err(parse("state caps longer than its bitset"));
            }
            Ok(EffState { words, caps })
        };
        let states = |key: &str| -> Result<Vec<EffState>, ArtifactError> {
            json.get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| parse(&format!("missing {key}")))?
                .iter()
                .map(state)
                .collect()
        };
        let mut verdicts = HashMap::new();
        for entry in json
            .get("verdicts")
            .and_then(Json::as_array)
            .ok_or_else(|| parse("missing verdicts"))?
        {
            let key = hex_list(entry.get("key"), "verdict key")?;
            let routable = match entry.get("routable") {
                Some(Json::Bool(b)) => *b,
                _ => return Err(parse("verdict without a boolean routable field")),
            };
            verdicts.insert(key, routable);
        }
        let mut cuts = Vec::new();
        for entry in json
            .get("cuts")
            .and_then(Json::as_array)
            .ok_or_else(|| parse("missing cuts"))?
        {
            let words = hex_list(entry.get("nodes"), "cut nodes")?;
            if words.len() != node_count.div_ceil(64) {
                return Err(parse("cut bitset width does not match node count"));
            }
            let demand_bits = entry
                .get("demand")
                .map(|j| hex(j, "cut demand"))
                .transpose()?
                .ok_or_else(|| parse("cut without demand"))?;
            let crossing_demand = f64::from_bits(demand_bits);
            if !crossing_demand.is_finite() || crossing_demand <= 0.0 {
                return Err(parse("cut with non-positive crossing demand"));
            }
            cuts.push(CutCertificate {
                words,
                crossing_demand,
            });
        }
        Ok(RoutabilityArtifact {
            generation: hex_list(json.get("generation"), "generation")?,
            node_count,
            edge_count,
            verdicts,
            routable: states("routable")?,
            unroutable: states("unroutable")?,
            cuts,
            topology: json
                .get("topology")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            classes: json
                .get("classes")
                .and_then(Json::as_array)
                .map(|cs| {
                    cs.iter()
                        .filter_map(Json::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default(),
            source_states: json
                .get("source_states")
                .and_then(Json::as_usize)
                .unwrap_or(0),
        })
    }

    /// Writes the artifact to `path` inside the checksummed container
    /// frame, atomically (tmp + rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; on error the destination is
    /// untouched.
    pub fn save(&self, path: &Path, durable: bool) -> std::io::Result<()> {
        let payload = self.to_json().to_line();
        fsio::write_container(
            path,
            ARTIFACT_KIND,
            ARTIFACT_VERSION,
            payload.as_bytes(),
            durable,
        )
    }

    /// Loads an artifact from `path`, validating the container frame
    /// (kind, version, length, checksum) and the payload schema.
    ///
    /// # Errors
    ///
    /// A typed [`ArtifactError`] naming what was wrong — a torn or
    /// truncated file, a version mismatch, corruption, or a malformed
    /// payload. A rejected file never yields answers.
    pub fn load(path: &Path) -> Result<RoutabilityArtifact, ArtifactError> {
        let payload = fsio::read_container(path, ARTIFACT_KIND, ARTIFACT_VERSION)?;
        let text = String::from_utf8(payload)
            .map_err(|_| ArtifactError::Parse("payload is not UTF-8".to_string()))?;
        let json = Json::parse(&text).map_err(ArtifactError::Parse)?;
        RoutabilityArtifact::from_json(&json)
    }

    /// [`Self::load`] through a process-wide cache keyed by the
    /// canonical path: a daemon with many sessions and a campaign with
    /// many scenarios sharing one artifact parse it once and share the
    /// [`Arc`]. Load failures are not cached — a path can be retried
    /// after the file is fixed.
    ///
    /// # Errors
    ///
    /// Same as [`Self::load`].
    pub fn cached_load(path: &Path) -> Result<Arc<RoutabilityArtifact>, ArtifactError> {
        static CACHE: OnceLock<Mutex<HashMap<PathBuf, Arc<RoutabilityArtifact>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let key = std::fs::canonicalize(path).unwrap_or_else(|_| path.to_path_buf());
        if let Some(hit) = cache.lock().expect("artifact cache poisoned").get(&key) {
            return Ok(Arc::clone(hit));
        }
        let loaded = Arc::new(RoutabilityArtifact::load(path)?);
        cache
            .lock()
            .expect("artifact cache poisoned")
            .insert(key, Arc::clone(&loaded));
        Ok(loaded)
    }
}

/// Accumulates scored disruption states into a [`RoutabilityArtifact`].
/// The precompute sweep drives one builder per shard and
/// [`merge`](ArtifactBuilder::merge)s them in shard order, so the
/// result is deterministic for a given sweep regardless of thread
/// interleaving.
#[derive(Debug, Clone)]
pub struct ArtifactBuilder {
    generation: Vec<u64>,
    node_count: usize,
    edge_count: usize,
    verdicts: HashMap<Vec<u64>, bool>,
    routable: Vec<EffState>,
    unroutable: Vec<EffState>,
    cuts: Vec<CutCertificate>,
    source_states: usize,
}

impl ArtifactBuilder {
    /// A builder pinned to one base instance.
    pub fn new(graph: &Graph, demands: &[Demand]) -> Self {
        ArtifactBuilder {
            generation: super::generation_key_of(graph, demands),
            node_count: graph.node_count(),
            edge_count: graph.edge_count(),
            verdicts: HashMap::new(),
            routable: Vec::new(),
            unroutable: Vec::new(),
            cuts: Vec::new(),
            source_states: 0,
        }
    }

    /// Records one scored disruption state: the exact verdict keyed by
    /// its canonical state, a monotone witness, and (for unroutable
    /// states) the cut certificates of every disconnected demand.
    pub fn record(&mut self, view: &View<'_>, demands: &[Demand], is_routable: bool) {
        let graph = view.graph();
        debug_assert!(
            self.generation == super::generation_key_of(graph, demands),
            "artifact builder fed a state from a different base instance"
        );
        self.source_states += 1;
        let raw = RawState::of(view);
        if !is_routable {
            // Cuts come from the *raw* mask: canonicalization drops every
            // edge of a disconnected demand's components, which would
            // collapse each source side to the lone source node and lose
            // the informative partition.
            self.derive_cuts(graph, demands, &raw.enabled);
        }
        let q = canonicalize(graph, demands, &raw.enabled, &raw.caps);
        self.verdicts.insert(q.key(), is_routable);
        if is_routable {
            insert_minimal_capped(&mut self.routable, q, MAX_ARTIFACT_WITNESSES);
        } else {
            insert_maximal_capped(&mut self.unroutable, q, MAX_ARTIFACT_WITNESSES);
        }
    }

    /// For each demand disconnected in the swept state, certify the node
    /// set of its source-side component: in that state no enabled
    /// capacity crosses it (it is a component), so the certificate holds
    /// with the full demand that must cross. The resulting bound —
    /// "enabled capacity crossing `S` below the crossing demand ⇒
    /// unroutable" — is a plain cut bound, valid for *any* node set, so
    /// it transfers to every queried state regardless of how `S` was
    /// found.
    fn derive_cuts(&mut self, graph: &Graph, demands: &[Demand], enabled: &[bool]) {
        let n = graph.node_count();
        let mut uf = UnionFind::new(n);
        for e in graph.edges() {
            if enabled[e.index()] {
                let (u, v) = graph.endpoints(e);
                uf.union(u.index(), v.index());
            }
        }
        for d in demands {
            if d.amount <= 0.0 || d.source == d.target {
                continue;
            }
            let rs = uf.find(d.source.index());
            if rs == uf.find(d.target.index()) {
                continue;
            }
            let mut words = vec![0u64; n.div_ceil(64)];
            for node in 0..n {
                if uf.find(node) == rs {
                    words[node / 64] |= 1 << (node % 64);
                }
            }
            let inside = |node: usize| words[node / 64] & (1 << (node % 64)) != 0;
            let crossing_demand: f64 = demands
                .iter()
                .filter(|d| {
                    d.amount > 0.0
                        && d.source != d.target
                        && inside(d.source.index()) != inside(d.target.index())
                })
                .map(|d| d.amount)
                .sum();
            if crossing_demand <= 0.0 {
                continue;
            }
            if self.cuts.len() < MAX_CUTS && !self.cuts.iter().any(|c| c.words == words) {
                self.cuts.push(CutCertificate {
                    words,
                    crossing_demand,
                });
            }
        }
    }

    /// Folds another shard's accumulation into this one. Merging the
    /// shards in index order yields the same artifact every run.
    pub fn merge(&mut self, other: ArtifactBuilder) {
        assert_eq!(
            self.generation, other.generation,
            "cannot merge artifact shards from different base instances"
        );
        self.source_states += other.source_states;
        self.verdicts.extend(other.verdicts);
        for w in other.routable {
            insert_minimal_capped(&mut self.routable, w, MAX_ARTIFACT_WITNESSES);
        }
        for w in other.unroutable {
            insert_maximal_capped(&mut self.unroutable, w, MAX_ARTIFACT_WITNESSES);
        }
        for c in other.cuts {
            if self.cuts.len() < MAX_CUTS && !self.cuts.iter().any(|mine| mine.words == c.words) {
                self.cuts.push(c);
            }
        }
    }

    /// Disruption states recorded so far.
    pub fn recorded(&self) -> usize {
        self.source_states
    }

    /// Finishes the artifact, stamping its provenance labels.
    pub fn finish(self, topology: &str, classes: &[String]) -> RoutabilityArtifact {
        RoutabilityArtifact {
            generation: self.generation,
            node_count: self.node_count,
            edge_count: self.edge_count,
            verdicts: self.verdicts,
            routable: self.routable,
            unroutable: self.unroutable,
            cuts: self.cuts,
            topology: topology.to_string(),
            classes: classes.to_vec(),
            source_states: self.source_states,
        }
    }
}

/// The artifact-fronted oracle: probes the shared read-only
/// [`RoutabilityArtifact`] first and falls through to an inner backend
/// on a miss (see the module docs for the hit soundness argument).
/// Satisfaction queries and batch scoring always go to the inner
/// backend — the artifact stores routability verdicts only.
pub struct ArtifactOracle {
    artifact: Arc<RoutabilityArtifact>,
    inner: Box<dyn EvalOracle>,
    artifact_hits: Counter,
    artifact_misses: Counter,
}

impl ArtifactOracle {
    /// Fronts `inner` with `artifact`.
    pub fn new(artifact: Arc<RoutabilityArtifact>, inner: Box<dyn EvalOracle>) -> Self {
        ArtifactOracle {
            artifact,
            inner,
            artifact_hits: Counter::default(),
            artifact_misses: Counter::default(),
        }
    }

    /// The shared artifact this oracle probes.
    pub fn artifact(&self) -> &Arc<RoutabilityArtifact> {
        &self.artifact
    }
}

impl std::fmt::Debug for ArtifactOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactOracle")
            .field("artifact_verdicts", &self.artifact.verdict_count())
            .field("inner", &self.inner.name())
            .finish()
    }
}

impl RoutabilityOracle for ArtifactOracle {
    fn is_routable(&self, view: &View<'_>, demands: &[Demand]) -> Result<bool, RecoveryError> {
        if let Some(verdict) = self.artifact.lookup(view, demands) {
            self.artifact_hits.bump();
            return Ok(verdict);
        }
        self.artifact_misses.bump();
        self.inner.is_routable(view, demands)
    }
}

impl SatisfactionOracle for ArtifactOracle {
    fn satisfied(&self, view: &View<'_>, demands: &[Demand]) -> Result<Vec<f64>, RecoveryError> {
        self.inner.satisfied(view, demands)
    }
}

impl EvalOracle for ArtifactOracle {
    fn name(&self) -> String {
        format!("artifact({})", self.inner.name())
    }

    fn stats(&self) -> OracleStats {
        let mut stats = self.inner.stats();
        // Artifact hits never reach the inner backend, so its query
        // counter misses them; fold them back in so `queries()` counts
        // every question asked of this oracle.
        stats.routability_queries += self.artifact_hits.get();
        stats.artifact_hits = self.artifact_hits.get();
        stats.artifact_misses = self.artifact_misses.get();
        stats
    }

    fn reset_stats(&self) {
        self.artifact_hits.reset();
        self.artifact_misses.reset();
        self.inner.reset_stats();
    }

    fn evaluate_batch(
        &self,
        view: &View<'_>,
        demands: &[Demand],
        patches: &[Patch],
    ) -> Result<Vec<f64>, RecoveryError> {
        self.inner.evaluate_batch(view, demands, patches)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{ExactLp, IncrementalOracle};
    use super::*;

    fn square() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(g.node(0), g.node(1), 10.0).unwrap();
        g.add_edge(g.node(1), g.node(3), 10.0).unwrap();
        g.add_edge(g.node(0), g.node(2), 4.0).unwrap();
        g.add_edge(g.node(2), g.node(3), 4.0).unwrap();
        g
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("netrec_artifact_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Sweeps all single-edge cuts of the square, building an artifact
    /// with exact verdicts.
    fn sweep_square(g: &Graph, demands: &[Demand]) -> RoutabilityArtifact {
        let exact = ExactLp::new();
        let mut builder = ArtifactBuilder::new(g, demands);
        // Intact state plus every single-edge cut.
        let mut masks: Vec<Vec<bool>> = vec![vec![true; 4]];
        for e in 0..4 {
            let mut m = vec![true; 4];
            m[e] = false;
            masks.push(m);
        }
        for mask in &masks {
            let view = g.view().with_edge_mask(mask);
            let routable = exact.is_routable(&view, demands).unwrap();
            builder.record(&view, demands, routable);
        }
        builder.finish("square", &["single-cut".to_string()])
    }

    #[test]
    fn artifact_round_trips_through_disk() {
        let g = square();
        let demands = [Demand::new(g.node(0), g.node(3), 8.0)];
        let artifact = sweep_square(&g, &demands);
        assert!(artifact.verdict_count() >= 5);
        let dir = scratch("roundtrip");
        let path = dir.join("square.nra");
        artifact.save(&path, false).unwrap();
        let loaded = RoutabilityArtifact::load(&path).unwrap();
        assert_eq!(loaded.verdict_count(), artifact.verdict_count());
        assert_eq!(loaded.witness_count(), artifact.witness_count());
        assert_eq!(loaded.cut_count(), artifact.cut_count());
        assert_eq!(loaded.source_states(), artifact.source_states());
        assert!(loaded.matches(&g, &demands));
        // Every swept state answers identically after the round trip.
        for e in 0..4 {
            let mut mask = vec![true; 4];
            mask[e] = false;
            let view = g.view().with_edge_mask(&mask);
            assert_eq!(
                loaded.lookup(&view, &demands),
                artifact.lookup(&view, &demands),
                "edge {e}"
            );
            assert!(loaded.lookup(&view, &demands).is_some(), "edge {e}");
        }
        // Serialization is byte-deterministic (golden replay and
        // content addressing depend on it).
        let again = dir.join("square2.nra");
        loaded.save(&again, false).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&again).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hits_match_exact_and_misses_fall_through() {
        let g = square();
        let demands = [Demand::new(g.node(0), g.node(3), 8.0)];
        let artifact = Arc::new(sweep_square(&g, &demands));
        let oracle = ArtifactOracle::new(Arc::clone(&artifact), Box::new(IncrementalOracle::new()));
        let exact = ExactLp::new();
        // Swept states: artifact hits, identical verdicts, zero solves.
        assert!(oracle.is_routable(&g.view(), &demands).unwrap());
        let mask = vec![false, true, true, true];
        let view = g.view().with_edge_mask(&mask);
        assert_eq!(
            oracle.is_routable(&view, &demands).unwrap(),
            exact.is_routable(&view, &demands).unwrap()
        );
        let stats = oracle.stats();
        assert_eq!(stats.artifact_hits, 2, "{stats:?}");
        assert_eq!(stats.full_solves, 0, "{stats:?}");
        assert_eq!(stats.routability_queries, 2, "{stats:?}");
        // An unswept state (capacity override) falls through to the
        // inner backend and still matches exact.
        let caps = vec![10.0, 10.0, 4.0, 1.0];
        let recap = g.view().with_capacities(&caps);
        assert_eq!(
            oracle.is_routable(&recap, &demands).unwrap(),
            exact.is_routable(&recap, &demands).unwrap()
        );
        // (The witness scan may or may not cover it; either way the
        // answer is exact. A genuinely foreign instance must miss:)
        let other = [Demand::new(g.node(0), g.node(3), 999.0)];
        assert!(!oracle.is_routable(&g.view(), &other).unwrap());
        let stats = oracle.stats();
        assert!(stats.artifact_misses >= 1, "{stats:?}");
    }

    #[test]
    fn witnesses_transfer_to_unswept_states() {
        let g = square();
        let demands = [Demand::new(g.node(0), g.node(3), 8.0)];
        let artifact = sweep_square(&g, &demands);
        // Raising a capacity above the swept value extends the intact
        // routable witness: hit, no LP.
        let caps = vec![11.0, 12.0, 4.0, 4.0];
        let view = g.view().with_capacities(&caps);
        assert_eq!(artifact.lookup(&view, &demands), Some(true));
    }

    #[test]
    fn cut_certificates_catch_capacity_starvation() {
        // Path 0-1-2 with demand 0→2: cutting edge 1 disconnects the
        // demand, so the sweep records the {0,1} cut with crossing
        // demand 5. A state where that edge is *enabled but too small*
        // is unroutable by the certificate even though no witness
        // dominates it.
        let mut g = Graph::with_nodes(3);
        g.add_edge(g.node(0), g.node(1), 8.0).unwrap();
        g.add_edge(g.node(1), g.node(2), 8.0).unwrap();
        let demands = [Demand::new(g.node(0), g.node(2), 5.0)];
        let exact = ExactLp::new();
        let mut builder = ArtifactBuilder::new(&g, &demands);
        for e in 0..2 {
            let mut mask = vec![true; 2];
            mask[e] = false;
            let view = g.view().with_edge_mask(&mask);
            let routable = exact.is_routable(&view, &demands).unwrap();
            builder.record(&view, &demands, routable);
        }
        let artifact = builder.finish("path3", &["single-cut".to_string()]);
        assert!(artifact.cut_count() >= 1, "sweep derived no cuts");
        // Enabled-but-starved crossing edge: capacity 2 < demand 5.
        let caps = vec![8.0, 2.0];
        let view = g.view().with_capacities(&caps);
        assert_eq!(artifact.lookup(&view, &demands), Some(false));
        assert!(!exact.is_routable(&view, &demands).unwrap());
        // Ample crossing capacity: the certificate stays silent and the
        // verdict map has no entry → honest miss.
        let caps = vec![8.0, 9.0];
        let view = g.view().with_capacities(&caps);
        assert_eq!(artifact.lookup(&view, &demands), None);
    }

    #[test]
    fn foreign_instances_never_hit() {
        let g = square();
        let demands = [Demand::new(g.node(0), g.node(3), 8.0)];
        let artifact = sweep_square(&g, &demands);
        // Different demand amount → different generation → miss.
        let other = [Demand::new(g.node(0), g.node(3), 9.0)];
        assert_eq!(artifact.lookup(&g.view(), &other), None);
        assert!(!artifact.matches(&g, &other));
        // Different wiring, same shape → miss.
        let mut h = Graph::with_nodes(4);
        h.add_edge(h.node(0), h.node(2), 10.0).unwrap();
        h.add_edge(h.node(2), h.node(3), 10.0).unwrap();
        h.add_edge(h.node(0), h.node(1), 4.0).unwrap();
        h.add_edge(h.node(1), h.node(3), 4.0).unwrap();
        let hd = [Demand::new(h.node(0), h.node(3), 8.0)];
        assert_eq!(artifact.lookup(&h.view(), &hd), None);
    }

    #[test]
    fn sharded_build_merges_deterministically() {
        let g = square();
        let demands = [Demand::new(g.node(0), g.node(3), 8.0)];
        let exact = ExactLp::new();
        // One builder over all states vs two shards merged.
        let whole = sweep_square(&g, &demands);
        let mut shard0 = ArtifactBuilder::new(&g, &demands);
        let mut shard1 = ArtifactBuilder::new(&g, &demands);
        let mut masks: Vec<Vec<bool>> = vec![vec![true; 4]];
        for e in 0..4 {
            let mut m = vec![true; 4];
            m[e] = false;
            masks.push(m);
        }
        for (i, mask) in masks.iter().enumerate() {
            let view = g.view().with_edge_mask(mask);
            let routable = exact.is_routable(&view, &demands).unwrap();
            let shard = if i % 2 == 0 { &mut shard0 } else { &mut shard1 };
            shard.record(&view, &demands, routable);
        }
        shard0.merge(shard1);
        let merged = shard0.finish("square", &["single-cut".to_string()]);
        assert_eq!(merged.verdict_count(), whole.verdict_count());
        assert_eq!(merged.source_states(), whole.source_states());
        let dir = scratch("merge");
        let a = dir.join("whole.nra");
        let b = dir.join("merged.nra");
        whole.save(&a, false).unwrap();
        merged.save(&b, false).unwrap();
        // Verdict maps are sorted at serialization, so identical
        // content produces identical bytes regardless of build order.
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_files_are_rejected_with_typed_errors() {
        let g = square();
        let demands = [Demand::new(g.node(0), g.node(3), 8.0)];
        let artifact = sweep_square(&g, &demands);
        let dir = scratch("reject");
        let path = dir.join("square.nra");
        artifact.save(&path, false).unwrap();
        let full = std::fs::read(&path).unwrap();

        // Truncated (torn copy).
        let torn = dir.join("torn.nra");
        std::fs::write(&torn, &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            RoutabilityArtifact::load(&torn),
            Err(ArtifactError::Container(ContainerError::Truncated { .. }))
        ));
        // Version-mismatched: rewrite the frame with a future version.
        let bumped = dir.join("future.nra");
        let payload = fsio::read_container(&path, ARTIFACT_KIND, ARTIFACT_VERSION).unwrap();
        fsio::write_container(
            &bumped,
            ARTIFACT_KIND,
            ARTIFACT_VERSION + 1,
            &payload,
            false,
        )
        .unwrap();
        assert!(matches!(
            RoutabilityArtifact::load(&bumped),
            Err(ArtifactError::Container(
                ContainerError::VersionMismatch { .. }
            ))
        ));
        // Valid frame around a malformed payload.
        let junk = dir.join("junk.nra");
        fsio::write_container(
            &junk,
            ARTIFACT_KIND,
            ARTIFACT_VERSION,
            b"{\"nodes\":4}",
            false,
        )
        .unwrap();
        assert!(matches!(
            RoutabilityArtifact::load(&junk),
            Err(ArtifactError::Parse(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_load_shares_one_parse() {
        let g = square();
        let demands = [Demand::new(g.node(0), g.node(3), 8.0)];
        let artifact = sweep_square(&g, &demands);
        let dir = scratch("cache");
        let path = dir.join("square.nra");
        artifact.save(&path, false).unwrap();
        let a = RoutabilityArtifact::cached_load(&path).unwrap();
        let b = RoutabilityArtifact::cached_load(&path).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second load must share the Arc");
        assert!(RoutabilityArtifact::cached_load(&dir.join("absent.nra")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
