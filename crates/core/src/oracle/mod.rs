//! The shared evaluation-oracle layer.
//!
//! Every consumer of the recovery stack keeps asking the same two
//! questions about a (partially repaired) damaged network:
//!
//! 1. *routability* — can the working subgraph carry every demand?
//!    (system (2) of the paper);
//! 2. *satisfaction* — how much of each demand can the working subgraph
//!    carry? (the maximum-satisfied-demand LP).
//!
//! Historically each caller — ISP's decision LPs, the progressive
//! scheduler, GRD-NC, the sim runner — re-built and re-solved the exact
//! dense-tableau LP from scratch on every query. This module centralizes
//! the queries behind the [`RoutabilityOracle`] / [`SatisfactionOracle`]
//! trait pair with three interchangeable backends:
//!
//! * [`ExactLp`] — the paper's exact LPs (the previous behavior);
//! * [`ConcurrentFlowApprox`] — the Garg–Könemann concurrent-flow
//!   approximation with an exact-LP fallback near the λ ≈ 1 feasibility
//!   boundary, so answers stay *conservative* (never "routable" for an
//!   unroutable instance — see `DESIGN.md`);
//! * [`Cached`] — a decorator memoizing any backend's answers keyed by
//!   the working node/edge masks, capacities, and demand set, with
//!   hit/miss counters;
//! * [`IncrementalOracle`] — an exact backend keeping persistent
//!   warm-start state across the caller's apply/undo deltas (monotone
//!   routability witnesses, full-satisfaction witnesses, an
//!   effective-graph memo) with batched frontier scoring via
//!   [`EvalOracle::evaluate_batch`]; answers are identical to
//!   [`ExactLp`], only cheaper.
//!
//! Callers select a backend through [`OracleSpec`] (also exposed on the
//! CLI as `--oracle`) and query through `&dyn EvalOracle`.

mod approx;
pub mod artifact;
mod cached;
pub(crate) mod canon;
mod exact;
mod incremental;

pub use approx::ConcurrentFlowApprox;
pub use artifact::{ArtifactOracle, RoutabilityArtifact};
pub use cached::Cached;
pub use exact::ExactLp;
pub use incremental::{IncSnapshot, IncrementalOracle};

use crate::{RecoveryError, RoutabilityMode};
use netrec_graph::{EdgeId, Graph, NodeId, View};
use netrec_lp::mcf::Demand;
use netrec_lp::LpEngine;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The base-instance fingerprint shared by the stateful backends: graph
/// shape *including every edge's endpoints* plus the demand list. The
/// endpoints matter: two graphs with equal node/edge counts but different
/// wiring would otherwise alias each other's warm state.
pub(crate) fn generation_key_of(graph: &Graph, demands: &[Demand]) -> Vec<u64> {
    let mut key = Vec::with_capacity(2 + graph.edge_count() + 2 * demands.len());
    key.push(graph.node_count() as u64);
    key.push(graph.edge_count() as u64);
    for e in graph.edges() {
        let (u, v) = graph.endpoints(e);
        key.push(((u.index() as u64) << 32) | v.index() as u64);
    }
    for d in demands {
        key.push(((d.source.index() as u64) << 32) | d.target.index() as u64);
        key.push(d.amount.to_bits());
    }
    key
}

/// Flattens a view's masks and overrides into per-edge *effective*
/// capacities: `0.0` for a disabled edge or one with a disabled endpoint,
/// the effective capacity otherwise. This is the RHS vector of the
/// fixed-structure warm systems ([`netrec_lp::mcf::WarmRoutability`]).
pub(crate) fn effective_capacities(view: &View<'_>) -> Vec<f64> {
    let graph = view.graph();
    let mut caps = vec![0.0; graph.edge_count()];
    for e in graph.edges() {
        if !view.edge_enabled(e) {
            continue;
        }
        let (u, v) = graph.endpoints(e);
        if view.node_enabled(u) && view.node_enabled(v) {
            caps[e.index()] = view.capacity(e).max(0.0);
        }
    }
    caps
}

/// A single-component *repair* delta against a base view: the candidate
/// component is enabled on top of the base masks (an already-enabled
/// component is a no-op). This is the unit of the scheduler's frontier
/// scoring and of [`EvalOracle::evaluate_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Patch {
    /// Enable (repair) this node in the base node mask.
    Node(NodeId),
    /// Enable (repair) this edge in the base edge mask.
    Edge(EdgeId),
}

impl Patch {
    /// Applies the patch to owned masks, returning the prior value.
    pub(crate) fn apply(self, node_mask: &mut [bool], edge_mask: &mut [bool]) -> bool {
        match self {
            Patch::Node(n) => std::mem::replace(&mut node_mask[n.index()], true),
            Patch::Edge(e) => std::mem::replace(&mut edge_mask[e.index()], true),
        }
    }

    /// Reverts one [`Patch::apply`].
    pub(crate) fn revert(self, prior: bool, node_mask: &mut [bool], edge_mask: &mut [bool]) {
        match self {
            Patch::Node(n) => node_mask[n.index()] = prior,
            Patch::Edge(e) => edge_mask[e.index()] = prior,
        }
    }
}

/// Answers "is this damaged graph routable?".
pub trait RoutabilityOracle: Send + Sync {
    /// Whether `demands` can be simultaneously routed in `view`.
    ///
    /// A `true` answer is always trustworthy (a feasible routing exists);
    /// approximate backends may answer `false` for instances that are
    /// actually routable, which costs extra repairs but never feasibility.
    ///
    /// # Errors
    ///
    /// Propagates LP solver failures.
    fn is_routable(&self, view: &View<'_>, demands: &[Demand]) -> Result<bool, RecoveryError>;
}

/// Answers "what fraction of demand is satisfiable?".
pub trait SatisfactionOracle: Send + Sync {
    /// Per-demand satisfiable amounts in `view` (same indexing and
    /// conventions as [`netrec_lp::mcf::max_satisfied`]).
    ///
    /// Approximate backends return a certified *lower bound* per demand.
    ///
    /// # Errors
    ///
    /// Propagates LP solver failures.
    fn satisfied(&self, view: &View<'_>, demands: &[Demand]) -> Result<Vec<f64>, RecoveryError>;
}

/// A full evaluation oracle: both query kinds plus introspection and
/// batched frontier scoring.
pub trait EvalOracle: RoutabilityOracle + SatisfactionOracle {
    /// Backend name for reports (`exact`, `approx`, `cached(exact)`, …).
    fn name(&self) -> String;

    /// Counters accumulated since construction (or since the last
    /// [`EvalOracle::reset_stats`]). Cumulative: a resident process can
    /// capture a baseline and report per-window deltas via
    /// [`OracleStats::delta_since`].
    fn stats(&self) -> OracleStats;

    /// Zeroes every counter, leaving warm state (caches, witnesses,
    /// bases) intact — answers and their cost are unaffected, only the
    /// accounting restarts. Resident sessions call this at generation
    /// boundaries so per-generation counters cannot drift into each
    /// other.
    fn reset_stats(&self);

    /// Scores a whole candidate frontier in one call: for each patch, the
    /// **total** satisfied demand with that one component additionally
    /// enabled on top of `view`. Semantically identical to applying each
    /// patch, calling [`SatisfactionOracle::satisfied`], summing, and
    /// undoing — which is exactly what this default does — but stateful
    /// backends ([`IncrementalOracle`]) override it to share one warm
    /// state across the batch instead of re-entering the oracle machinery
    /// per candidate.
    ///
    /// # Errors
    ///
    /// Propagates LP solver failures.
    fn evaluate_batch(
        &self,
        view: &View<'_>,
        demands: &[Demand],
        patches: &[Patch],
    ) -> Result<Vec<f64>, RecoveryError> {
        let graph = view.graph();
        let mut node_mask: Vec<bool> = match view.node_mask() {
            Some(m) => m.to_vec(),
            None => vec![true; graph.node_count()],
        };
        let mut edge_mask: Vec<bool> = match view.edge_mask() {
            Some(m) => m.to_vec(),
            None => vec![true; graph.edge_count()],
        };
        let caps = view.capacity_overrides();
        let mut totals = Vec::with_capacity(patches.len());
        for &patch in patches {
            let prior = patch.apply(&mut node_mask, &mut edge_mask);
            let mut patched = graph
                .view()
                .with_node_mask(&node_mask)
                .with_edge_mask(&edge_mask);
            if let Some(caps) = caps {
                patched = patched.with_capacities(caps);
            }
            let result = self.satisfied(&patched, demands);
            patch.revert(prior, &mut node_mask, &mut edge_mask);
            totals.push(result?.iter().sum());
        }
        Ok(totals)
    }
}

/// Query/solve counters of an oracle (all backends; cache fields stay
/// zero outside [`Cached`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleStats {
    /// Routability queries received.
    pub routability_queries: usize,
    /// Satisfaction queries received.
    pub satisfaction_queries: usize,
    /// Exact dense-tableau LPs actually solved.
    pub lp_solves: usize,
    /// Concurrent-flow approximation runs.
    pub approx_runs: usize,
    /// Approximate-backend queries answered by the exact LP because the
    /// instance sat at or below the size threshold where the dense LP is
    /// measurably faster than Garg–Könemann.
    pub boundary_fallbacks: usize,
    /// Approximation runs that early-terminated on a certificate (λ ≥
    /// target via explicit-flow congestion or the phase-count bound)
    /// instead of running the full `O(ε⁻²)` phase schedule. Together with
    /// [`boundary_fallbacks`](Self::boundary_fallbacks) and
    /// [`approx_runs`](Self::approx_runs) this records which path — exact
    /// LP, threshold-certified, or full approximation — answered each
    /// query: full-schedule runs are
    /// `approx_runs − threshold_certified`.
    #[serde(default)]
    pub threshold_certified: usize,
    /// Memoized answers served ([`Cached`] and [`IncrementalOracle`]).
    pub cache_hits: usize,
    /// Queries that reached the inner backend ([`Cached`] and
    /// [`IncrementalOracle`]).
    pub cache_misses: usize,
    /// Warm-start wins: answers derived from persistent state without a
    /// cold solve. For [`IncrementalOracle`] these are monotone
    /// routable/unroutable witnesses and full-satisfaction witnesses;
    /// for [`ExactLp`] under the revised engine, routability re-solves
    /// that started from the previous generation basis.
    pub warm_start_hits: usize,
    /// Queries that fell through every incremental shortcut to a full
    /// inner solve ([`IncrementalOracle`] only; equals its
    /// `cache_misses`).
    pub full_solves: usize,
    /// Times the incremental state was discarded because the query's base
    /// instance (graph shape or demand set) changed
    /// ([`IncrementalOracle`] only).
    pub generation_resets: usize,
    /// Routability queries answered by the precomputed artifact —
    /// verdict, witness, or cut-certificate hits that never reached a
    /// live backend ([`ArtifactOracle`] only).
    #[serde(default)]
    pub artifact_hits: usize,
    /// Routability queries that missed the artifact and fell through to
    /// the inner backend ([`ArtifactOracle`] only).
    #[serde(default)]
    pub artifact_misses: usize,
}

impl OracleStats {
    /// Element-wise sum of two counter sets.
    pub fn merged(&self, other: &OracleStats) -> OracleStats {
        OracleStats {
            routability_queries: self.routability_queries + other.routability_queries,
            satisfaction_queries: self.satisfaction_queries + other.satisfaction_queries,
            lp_solves: self.lp_solves + other.lp_solves,
            approx_runs: self.approx_runs + other.approx_runs,
            boundary_fallbacks: self.boundary_fallbacks + other.boundary_fallbacks,
            threshold_certified: self.threshold_certified + other.threshold_certified,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
            warm_start_hits: self.warm_start_hits + other.warm_start_hits,
            full_solves: self.full_solves + other.full_solves,
            generation_resets: self.generation_resets + other.generation_resets,
            artifact_hits: self.artifact_hits + other.artifact_hits,
            artifact_misses: self.artifact_misses + other.artifact_misses,
        }
    }

    /// Total queries of both kinds.
    pub fn queries(&self) -> usize {
        self.routability_queries + self.satisfaction_queries
    }

    /// Element-wise difference against an earlier snapshot of the *same*
    /// backend: "what happened since `baseline` was captured". Counters
    /// are monotone while a backend lives, so the subtraction saturates
    /// at zero only to stay safe against a baseline taken from a
    /// different (or later-reset) backend. This is how a resident
    /// session reports per-request and per-generation counters without
    /// drift: keep the cumulative [`EvalOracle::stats`] and diff.
    pub fn delta_since(&self, baseline: &OracleStats) -> OracleStats {
        OracleStats {
            routability_queries: self
                .routability_queries
                .saturating_sub(baseline.routability_queries),
            satisfaction_queries: self
                .satisfaction_queries
                .saturating_sub(baseline.satisfaction_queries),
            lp_solves: self.lp_solves.saturating_sub(baseline.lp_solves),
            approx_runs: self.approx_runs.saturating_sub(baseline.approx_runs),
            boundary_fallbacks: self
                .boundary_fallbacks
                .saturating_sub(baseline.boundary_fallbacks),
            threshold_certified: self
                .threshold_certified
                .saturating_sub(baseline.threshold_certified),
            cache_hits: self.cache_hits.saturating_sub(baseline.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(baseline.cache_misses),
            warm_start_hits: self
                .warm_start_hits
                .saturating_sub(baseline.warm_start_hits),
            full_solves: self.full_solves.saturating_sub(baseline.full_solves),
            generation_resets: self
                .generation_resets
                .saturating_sub(baseline.generation_resets),
            artifact_hits: self.artifact_hits.saturating_sub(baseline.artifact_hits),
            artifact_misses: self
                .artifact_misses
                .saturating_sub(baseline.artifact_misses),
        }
    }
}

/// Which tier of the oracle stack produced an answer — the explicit
/// tiered-answer contract of the redesigned front door. Classified from
/// a per-query [`OracleStats`] window ([`OracleStats::delta_since`])
/// and surfaced in serve replies as the `answer_source` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnswerSource {
    /// The precomputed artifact answered (verdict, witness, or cut
    /// certificate) — no live solver state was touched.
    Artifact,
    /// Live warm state answered: a monotone witness, memoized answer,
    /// or cache hit. No LP ran for the answer itself.
    Witness,
    /// The approximation certified the answer early (λ ≥ 1 threshold
    /// certificate) instead of running its full phase schedule.
    Threshold,
    /// A full solve (exact LP or complete approximation schedule)
    /// produced the answer.
    FullSolve,
}

impl AnswerSource {
    /// Classifies the cheapest tier that fired in a per-query stats
    /// window. Tiers are checked cheapest-first: an artifact hit never
    /// touches live state, warm state never runs an LP, a threshold
    /// certificate stops the approximation early.
    pub fn classify(delta: &OracleStats) -> AnswerSource {
        if delta.artifact_hits > 0 {
            AnswerSource::Artifact
        } else if delta.warm_start_hits > 0 || delta.cache_hits > 0 {
            AnswerSource::Witness
        } else if delta.threshold_certified > 0 {
            AnswerSource::Threshold
        } else {
            AnswerSource::FullSolve
        }
    }

    /// The stable wire name (`artifact`, `witness`, `threshold`,
    /// `full_solve`) used by the serve protocol; renaming one is a
    /// protocol break.
    pub fn as_str(&self) -> &'static str {
        match self {
            AnswerSource::Artifact => "artifact",
            AnswerSource::Witness => "witness",
            AnswerSource::Threshold => "threshold",
            AnswerSource::FullSolve => "full_solve",
        }
    }

    /// Parses a wire name back ([`Self::as_str`] round trip).
    pub fn parse(s: &str) -> Option<AnswerSource> {
        match s {
            "artifact" => Some(AnswerSource::Artifact),
            "witness" => Some(AnswerSource::Witness),
            "threshold" => Some(AnswerSource::Threshold),
            "full_solve" => Some(AnswerSource::FullSolve),
            _ => None,
        }
    }
}

impl std::fmt::Display for AnswerSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Relaxed-ordering counter shared by the backends (contention is
/// irrelevant; the counters are diagnostics).
#[derive(Debug, Default)]
pub(crate) struct Counter(AtomicUsize);

impl Counter {
    pub(crate) fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Declarative backend selection, carried by configs ([`crate::IspConfig`],
/// the sim `Scenario`) and the CLI `--oracle` flag. Instantiate through
/// [`OracleBuilder`] — the single front door for every construction
/// concern (engine, artifact, warm state, instance pinning).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum OracleSpec {
    /// The exact LPs (system (2) / maximum satisfied demand).
    #[default]
    Exact,
    /// Concurrent-flow approximation with accuracy ε and conservative
    /// exact fallback near the feasibility boundary.
    Approx {
        /// Accuracy parameter ε ∈ (0, 1/3).
        epsilon: f64,
    },
    /// Exact below the size threshold on `|E| · |EH|`, approximate above.
    Auto {
        /// Size threshold (same meaning as [`RoutabilityMode::Auto`]).
        threshold: usize,
    },
    /// Memoizing decorator over the exact backend.
    CachedExact,
    /// Memoizing decorator over the approximate backend.
    CachedApprox {
        /// Accuracy parameter ε ∈ (0, 1/3).
        epsilon: f64,
    },
    /// Incremental exact backend: persistent warm-start state across the
    /// caller's apply/undo deltas (answers identical to [`Exact`](OracleSpec::Exact)).
    Incremental,
    /// Precomputed-artifact front door over the incremental backend:
    /// the file at `path` is loaded (once per process) and probed
    /// before any live state; misses fall through to
    /// [`Incremental`](OracleSpec::Incremental). Answers identical to
    /// [`Exact`](OracleSpec::Exact).
    Artifact {
        /// Path of the artifact file (`netrec-cli precompute` output).
        path: String,
    },
}

/// Default ε of approximate backends.
pub const DEFAULT_EPSILON: f64 = 0.05;

/// Default `|E| · |EH|` size threshold at which the stack switches from
/// exact to approximate answers — shared by [`OracleSpec::Auto`] parsing,
/// [`RoutabilityMode::Auto`]'s default, and the approximate backend's
/// exact-LP fast path, so tuning the crossover stays in one place.
///
/// Recalibrated from the committed `BENCH_scale.json` time-vs-n sweep
/// (the previous 48k figure was extrapolated from warm *routability*
/// re-solves on figure-sized instances and badly overestimated what
/// exact *satisfaction* queries afford): at the smallest scale point
/// (n = 1k Barabási–Albert, `|E| · |EH|` = 16,000) one exact
/// maximum-satisfied-demand LP costs seconds, so a 16-candidate
/// scheduler frontier blew the campaign per-scenario budget, while the
/// approximate path serves the same step in milliseconds. The largest
/// committed point the exact path demonstrably serves in sub-millisecond
/// time is fig7-sized (≈ 4.5k, `BENCH_lp.json`). The threshold sits at
/// the geometric middle of that measured band — below the smallest
/// product where exact answers measured unaffordable, above the largest
/// where they measured cheap — and `tests/perf_gate.rs` in
/// `netrec-bench` gates it against the committed data. (Queries above
/// the threshold stay cheap *and* conservative: clearly-feasible ones
/// terminate on the λ ≥ 1 congestion certificate within a phase or two.)
pub const DEFAULT_SIZE_THRESHOLD: usize = 8_000;

impl OracleSpec {
    /// Instantiates the backend on the process default LP engine.
    #[deprecated(
        since = "0.1.0",
        note = "use `OracleBuilder::new(spec).build()` — the single front door \
                for engine, artifact, warm-state, and instance concerns"
    )]
    pub fn build(&self) -> Box<dyn EvalOracle> {
        #[allow(deprecated)]
        self.build_with_engine(netrec_lp::global_engine())
    }

    /// Instantiates the backend on an explicit LP engine (the dense
    /// escape hatch pins every solve the backend makes; the revised
    /// default additionally enables the warm-start state).
    ///
    /// For [`OracleSpec::Artifact`] this shim cannot report a load
    /// failure: a broken artifact file silently degrades to a plain
    /// incremental backend. [`OracleBuilder::build`] returns the typed
    /// error instead.
    #[deprecated(
        since = "0.1.0",
        note = "use `OracleBuilder::new(spec).engine(engine).build()` — the \
                single front door for engine, artifact, warm-state, and \
                instance concerns"
    )]
    pub fn build_with_engine(&self, engine: LpEngine) -> Box<dyn EvalOracle> {
        match self {
            OracleSpec::Artifact { .. } => OracleBuilder::new(self.clone())
                .engine(engine)
                .build()
                .unwrap_or_else(|_| Box::new(IncrementalOracle::with_engine(engine))),
            other => OracleBuilder::new(other.clone())
                .engine(engine)
                .build()
                .expect("non-artifact specs build infallibly"),
        }
    }

    /// Parses a CLI argument: `exact`, `approx`, `approx:<eps>`, `auto`,
    /// `auto:<threshold>`, `cached` / `cached-exact`, `cached-approx`,
    /// `cached-approx:<eps>`, `incremental`, `artifact:path=<file>`
    /// (alias `artifact:<file>`).
    pub fn parse(s: &str) -> Option<OracleSpec> {
        match s {
            "exact" => Some(OracleSpec::Exact),
            "incremental" => Some(OracleSpec::Incremental),
            "approx" => Some(OracleSpec::Approx {
                epsilon: DEFAULT_EPSILON,
            }),
            "auto" => Some(OracleSpec::Auto {
                threshold: DEFAULT_SIZE_THRESHOLD,
            }),
            "cached" | "cached-exact" => Some(OracleSpec::CachedExact),
            "cached-approx" => Some(OracleSpec::CachedApprox {
                epsilon: DEFAULT_EPSILON,
            }),
            _ => {
                // ε must lie in the algorithm's domain (0, 1/3); a NaN or
                // out-of-range value would silently poison every query.
                let parse_epsilon = |text: &str| {
                    text.parse::<f64>()
                        .ok()
                        .filter(|eps| eps.is_finite() && *eps > 0.0 && *eps < 1.0 / 3.0)
                };
                if let Some(eps) = s.strip_prefix("approx:") {
                    return parse_epsilon(eps).map(|epsilon| OracleSpec::Approx { epsilon });
                }
                if let Some(eps) = s.strip_prefix("cached-approx:") {
                    return parse_epsilon(eps).map(|epsilon| OracleSpec::CachedApprox { epsilon });
                }
                if let Some(t) = s.strip_prefix("auto:") {
                    return t
                        .parse()
                        .ok()
                        .map(|threshold| OracleSpec::Auto { threshold });
                }
                if let Some(rest) = s.strip_prefix("artifact:") {
                    // Canonical form is `artifact:path=<file>`; the bare
                    // `artifact:<file>` alias normalizes to it (the
                    // campaign grid relies on both spellings landing on
                    // one canonical encoding).
                    let path = rest.strip_prefix("path=").unwrap_or(rest);
                    if path.is_empty() {
                        return None;
                    }
                    return Some(OracleSpec::Artifact {
                        path: path.to_string(),
                    });
                }
                None
            }
        }
    }

    /// Whether ISP's Decision-2 split should use the exact LP for an
    /// instance of the given size (mirrors
    /// [`RoutabilityMode::uses_exact`]).
    pub fn uses_exact_split(&self, enabled_edges: usize, demands: usize) -> bool {
        match self {
            OracleSpec::Exact
            | OracleSpec::CachedExact
            | OracleSpec::Incremental
            | OracleSpec::Artifact { .. } => true,
            OracleSpec::Approx { .. } | OracleSpec::CachedApprox { .. } => false,
            OracleSpec::Auto { threshold } => enabled_edges * demands <= *threshold,
        }
    }
}

impl std::fmt::Display for OracleSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleSpec::Exact => write!(f, "exact"),
            OracleSpec::Approx { epsilon } => write!(f, "approx:{epsilon}"),
            OracleSpec::Auto { threshold } => write!(f, "auto:{threshold}"),
            OracleSpec::CachedExact => write!(f, "cached-exact"),
            OracleSpec::CachedApprox { epsilon } => write!(f, "cached-approx:{epsilon}"),
            OracleSpec::Incremental => write!(f, "incremental"),
            OracleSpec::Artifact { path } => write!(f, "artifact:path={path}"),
        }
    }
}

/// The single front door for oracle construction: every concern that
/// used to live in a separate constructor — the LP engine, a
/// precomputed artifact, transferable warm state, pinning to a base
/// instance — is a builder method, and every call site in the stack
/// (solvers, runner, campaign, serve, CLI) goes through here.
///
/// ```
/// use netrec_core::{OracleBuilder, OracleSpec};
///
/// let oracle = OracleBuilder::new(OracleSpec::Incremental)
///     .engine(netrec_lp::LpEngine::Revised)
///     .build()
///     .unwrap();
/// assert_eq!(oracle.name(), "incremental");
/// ```
#[derive(Debug, Clone, Default)]
pub struct OracleBuilder {
    spec: OracleSpec,
    engine: Option<LpEngine>,
    artifact: Option<Arc<RoutabilityArtifact>>,
    warm: Option<IncSnapshot>,
    require_generation: Option<Vec<u64>>,
}

impl OracleBuilder {
    /// Starts a builder for the given backend selection.
    pub fn new(spec: OracleSpec) -> Self {
        OracleBuilder {
            spec,
            ..OracleBuilder::default()
        }
    }

    /// Pins every solve to an explicit LP engine (default: the process
    /// global engine).
    pub fn engine(mut self, engine: LpEngine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Fronts the backend with an already-loaded precomputed artifact
    /// (shared read-only; one [`Arc`] can serve many oracles). With
    /// [`OracleSpec::Artifact`], this overrides the spec's path —
    /// nothing is loaded from disk.
    pub fn artifact(mut self, artifact: Arc<RoutabilityArtifact>) -> Self {
        self.artifact = Some(artifact);
        self
    }

    /// Seeds the incremental backend with transferable warm state
    /// (witnesses + generation) from
    /// [`IncrementalOracle::snapshot_state`]. This is how a resident
    /// session forks warm state; specs without an incremental backend
    /// ignore it.
    pub fn warm_state(mut self, snapshot: &IncSnapshot) -> Self {
        self.warm = Some(snapshot.clone());
        self
    }

    /// Generation policy: require any artifact to have been precomputed
    /// for exactly this base instance, failing [`Self::build`] instead
    /// of silently missing on every query. Without this, a
    /// non-matching artifact is lenient — it just never hits (the
    /// campaign grid shares one artifact across scenarios where only
    /// some match).
    pub fn require_instance(mut self, graph: &Graph, demands: &[Demand]) -> Self {
        self.require_generation = Some(generation_key_of(graph, demands));
        self
    }

    /// Instantiates the backend.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::Artifact`] when an artifact file cannot be
    /// loaded (torn, truncated, version-mismatched, malformed — see
    /// [`artifact::ArtifactError`]) or fails the
    /// [`Self::require_instance`] pin. All other specs build
    /// infallibly.
    pub fn build(self) -> Result<Box<dyn EvalOracle>, RecoveryError> {
        let engine = self.engine.unwrap_or_else(netrec_lp::global_engine);
        // Resolve the artifact first: an explicit Arc wins, otherwise
        // an Artifact spec loads (and caches) its path.
        let artifact = match (&self.spec, self.artifact) {
            (_, Some(artifact)) => Some(artifact),
            (OracleSpec::Artifact { path }, None) => Some(
                RoutabilityArtifact::cached_load(std::path::Path::new(path))
                    .map_err(RecoveryError::from)?,
            ),
            _ => None,
        };
        if let (Some(artifact), Some(generation)) = (&artifact, &self.require_generation) {
            if artifact.generation_key() != generation.as_slice() {
                return Err(RecoveryError::Artifact(
                    artifact::ArtifactError::InstanceMismatch.to_string(),
                ));
            }
        }
        let incremental = |warm: &Option<IncSnapshot>| {
            let oracle = IncrementalOracle::with_engine(engine);
            if let Some(snapshot) = warm {
                oracle.restore_state(snapshot);
            }
            oracle
        };
        let base: Box<dyn EvalOracle> = match &self.spec {
            OracleSpec::Exact => Box::new(ExactLp::with_engine(engine)),
            OracleSpec::Approx { epsilon } => {
                Box::new(ConcurrentFlowApprox::new(*epsilon).with_engine(engine))
            }
            OracleSpec::Auto { threshold } => {
                Box::new(AutoOracle::new(*threshold, DEFAULT_EPSILON).with_engine(engine))
            }
            OracleSpec::CachedExact => Box::new(Cached::new(ExactLp::with_engine(engine))),
            OracleSpec::CachedApprox { epsilon } => Box::new(Cached::new(
                ConcurrentFlowApprox::new(*epsilon).with_engine(engine),
            )),
            OracleSpec::Incremental | OracleSpec::Artifact { .. } => {
                Box::new(incremental(&self.warm))
            }
        };
        Ok(match artifact {
            Some(artifact) => Box::new(ArtifactOracle::new(artifact, base)),
            None => base,
        })
    }
}

impl From<RoutabilityMode> for OracleSpec {
    fn from(mode: RoutabilityMode) -> Self {
        match mode {
            RoutabilityMode::Exact => OracleSpec::Exact,
            RoutabilityMode::Approx { epsilon } => OracleSpec::Approx { epsilon },
            RoutabilityMode::Auto { threshold } => OracleSpec::Auto { threshold },
        }
    }
}

/// Size-switching backend behind [`OracleSpec::Auto`]: exact below the
/// `|E| · |EH|` threshold, approximate above it.
#[derive(Debug, Default)]
pub struct AutoOracle {
    exact: ExactLp,
    approx: ConcurrentFlowApprox,
    threshold: usize,
}

impl AutoOracle {
    /// An auto oracle with the given size threshold and approximation ε.
    /// The threshold is shared with the approximate backend's exact-LP
    /// fast path, so above it no query may build the dense tableau.
    pub fn new(threshold: usize, epsilon: f64) -> Self {
        AutoOracle {
            exact: ExactLp::new(),
            approx: ConcurrentFlowApprox::new(epsilon).with_fallback_limit(threshold),
            threshold,
        }
    }

    /// Pins both inner backends to an explicit LP engine.
    pub fn with_engine(mut self, engine: LpEngine) -> Self {
        self.exact = ExactLp::with_engine(engine);
        self.approx = self.approx.with_engine(engine);
        self
    }

    fn pick_exact(&self, view: &View<'_>, demands: &[Demand]) -> bool {
        let active = demands.iter().filter(|d| d.amount > 0.0).count();
        view.enabled_edges().count() * active <= self.threshold
    }
}

impl RoutabilityOracle for AutoOracle {
    fn is_routable(&self, view: &View<'_>, demands: &[Demand]) -> Result<bool, RecoveryError> {
        if self.pick_exact(view, demands) {
            self.exact.is_routable(view, demands)
        } else {
            self.approx.is_routable(view, demands)
        }
    }
}

impl SatisfactionOracle for AutoOracle {
    fn satisfied(&self, view: &View<'_>, demands: &[Demand]) -> Result<Vec<f64>, RecoveryError> {
        if self.pick_exact(view, demands) {
            self.exact.satisfied(view, demands)
        } else {
            self.approx.satisfied(view, demands)
        }
    }
}

impl EvalOracle for AutoOracle {
    fn name(&self) -> String {
        format!("auto:{}", self.threshold)
    }

    fn stats(&self) -> OracleStats {
        self.exact.stats().merged(&self.approx.stats())
    }

    fn reset_stats(&self) {
        self.exact.reset_stats();
        self.approx.reset_stats();
    }
}

/// A **lossless** encoding of a query — working masks, effective
/// capacities, and the demand list (order-sensitive, which is fine:
/// callers keep a stable demand order).
///
/// Used directly as the cache key: the map's internal hashing may
/// collide, but lookups resolve by full-key equality, so two distinct
/// network states can never alias an answer (a cache hit is exactly as
/// trustworthy as the inner backend).
pub(crate) fn query_key(view: &View<'_>, demands: &[Demand]) -> Vec<u64> {
    let n = view.node_count();
    let m = view.edge_count();
    let mut key = Vec::with_capacity(4 + n / 64 + m / 64 + m + 2 * demands.len());
    key.push(n as u64);
    key.push(m as u64);
    // Node mask, packed 64 bits at a time.
    let mut word = 0u64;
    for (i, node) in view.graph().nodes().enumerate() {
        if view.node_enabled(node) {
            word |= 1 << (i % 64);
        }
        if i % 64 == 63 {
            key.push(word);
            word = 0;
        }
    }
    key.push(word);
    // Edge mask, packed 64 bits at a time.
    let mut word = 0u64;
    for (i, e) in view.graph().edges().enumerate() {
        if view.edge_enabled(e) {
            word |= 1 << (i % 64);
        }
        if i % 64 == 63 {
            key.push(word);
            word = 0;
        }
    }
    key.push(word);
    // Effective capacity of every visible edge (hidden edges contribute
    // nothing beyond their mask bit).
    for e in view.graph().edges() {
        if view.edge_enabled(e) {
            key.push(view.capacity(e).to_bits());
        }
    }
    for d in demands {
        key.push(((d.source.index() as u64) << 32) | d.target.index() as u64);
        key.push(d.amount.to_bits());
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrec_graph::Graph;

    fn square() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(g.node(0), g.node(1), 10.0).unwrap();
        g.add_edge(g.node(1), g.node(3), 10.0).unwrap();
        g.add_edge(g.node(0), g.node(2), 4.0).unwrap();
        g.add_edge(g.node(2), g.node(3), 4.0).unwrap();
        g
    }

    #[test]
    fn spec_parsing_round_trips() {
        for s in ["exact", "approx", "auto", "cached-exact", "cached-approx"] {
            let spec = OracleSpec::parse(s).unwrap();
            let rendered = spec.to_string();
            assert_eq!(
                OracleSpec::parse(&rendered).or(Some(spec.clone())),
                Some(spec),
                "{s}"
            );
        }
        // The artifact variant renders canonically and round-trips; the
        // bare-path alias normalizes to the canonical form.
        let spec = OracleSpec::parse("artifact:path=/tmp/fig7.nra").unwrap();
        assert_eq!(
            spec,
            OracleSpec::Artifact {
                path: "/tmp/fig7.nra".to_string()
            }
        );
        assert_eq!(spec.to_string(), "artifact:path=/tmp/fig7.nra");
        assert_eq!(OracleSpec::parse(&spec.to_string()), Some(spec.clone()));
        assert_eq!(OracleSpec::parse("artifact:/tmp/fig7.nra"), Some(spec));
        assert!(OracleSpec::parse("artifact:").is_none());
        assert!(OracleSpec::parse("artifact:path=").is_none());
        assert_eq!(
            OracleSpec::parse("approx:0.1"),
            Some(OracleSpec::Approx { epsilon: 0.1 })
        );
        assert_eq!(
            OracleSpec::parse("auto:123"),
            Some(OracleSpec::Auto { threshold: 123 })
        );
        assert_eq!(OracleSpec::parse("cached"), Some(OracleSpec::CachedExact));
        assert!(OracleSpec::parse("magic").is_none());
        // ε outside (0, 1/3) — including NaN — must be rejected, not
        // silently accepted.
        for bad in [
            "approx:nan",
            "approx:-1",
            "approx:0.5",
            "approx:0",
            "cached-approx:inf",
        ] {
            assert!(OracleSpec::parse(bad).is_none(), "{bad}");
        }
    }

    #[test]
    fn all_backends_agree_on_clear_cases() {
        let g = square();
        let fits = [Demand::new(g.node(0), g.node(3), 8.0)];
        let over = [Demand::new(g.node(0), g.node(3), 20.0)];
        for spec in [
            OracleSpec::Exact,
            OracleSpec::Approx { epsilon: 0.05 },
            OracleSpec::Auto { threshold: 4_000 },
            OracleSpec::CachedExact,
            OracleSpec::CachedApprox { epsilon: 0.05 },
        ] {
            let oracle = OracleBuilder::new(spec.clone()).build().unwrap();
            assert!(oracle.is_routable(&g.view(), &fits).unwrap(), "{spec}");
            assert!(!oracle.is_routable(&g.view(), &over).unwrap(), "{spec}");
            let sat = oracle.satisfied(&g.view(), &fits).unwrap();
            assert!((sat[0] - 8.0).abs() < 1e-6, "{spec}: {sat:?}");
        }
    }

    #[test]
    fn auto_switches_backend_by_size() {
        let g = square();
        let demands = [Demand::new(g.node(0), g.node(3), 8.0)];
        // Threshold 0: everything goes to the approximation.
        let tiny = AutoOracle::new(0, 0.05);
        assert!(tiny.is_routable(&g.view(), &demands).unwrap());
        assert_eq!(tiny.stats().approx_runs, 1);
        assert_eq!(tiny.stats().lp_solves, 0);
        // Large threshold: everything exact.
        let large = AutoOracle::new(1_000_000, 0.05);
        assert!(large.is_routable(&g.view(), &demands).unwrap());
        assert_eq!(large.stats().approx_runs, 0);
        assert_eq!(large.stats().lp_solves, 1);
    }

    #[test]
    fn query_keys_distinguish_masks_capacities_and_demands() {
        let g = square();
        let demands = [Demand::new(g.node(0), g.node(3), 8.0)];
        let base = query_key(&g.view(), &demands);
        assert_eq!(base, query_key(&g.view(), &demands));

        let mask = vec![true, false, true, true];
        let masked = g.view().with_node_mask(&mask);
        assert_ne!(base, query_key(&masked, &demands), "node mask");

        let emask = vec![true, true, false, true];
        let emasked = g.view().with_edge_mask(&emask);
        assert_ne!(base, query_key(&emasked, &demands), "edge mask");

        let caps = vec![10.0, 10.0, 4.0, 3.0];
        let recap = g.view().with_capacities(&caps);
        assert_ne!(base, query_key(&recap, &demands), "capacities");

        let other = [Demand::new(g.node(0), g.node(3), 7.0)];
        assert_ne!(base, query_key(&g.view(), &other), "demands");

        // Losslessness: a node mask hiding node 1 also hides its incident
        // edges; an edge mask hiding the same edges plus the node bit
        // differs — distinct states can never share a key.
        let full_caps = g.capacities();
        let same_caps = g.view().with_capacities(&full_caps);
        assert_eq!(base, query_key(&same_caps, &demands), "identical state");
    }

    #[test]
    fn delta_since_reports_the_window() {
        let g = square();
        let oracle = OracleBuilder::new(OracleSpec::Exact).build().unwrap();
        let demands = [Demand::new(g.node(0), g.node(3), 8.0)];
        oracle.is_routable(&g.view(), &demands).unwrap();
        let baseline = oracle.stats();
        oracle.satisfied(&g.view(), &demands).unwrap();
        oracle.satisfied(&g.view(), &demands).unwrap();
        let delta = oracle.stats().delta_since(&baseline);
        assert_eq!(delta.routability_queries, 0);
        assert_eq!(delta.satisfaction_queries, 2);
        // delta + baseline = cumulative (the no-drift identity).
        assert_eq!(baseline.merged(&delta), oracle.stats());
        // A baseline from a *later* state saturates instead of wrapping.
        let future = oracle.stats();
        let zero = baseline.delta_since(&future);
        assert_eq!(zero.satisfaction_queries, 0);
    }

    #[test]
    fn reset_stats_zeroes_every_backend() {
        let g = square();
        let demands = [Demand::new(g.node(0), g.node(3), 8.0)];
        for spec in [
            OracleSpec::Exact,
            OracleSpec::Approx { epsilon: 0.05 },
            OracleSpec::Auto { threshold: 0 },
            OracleSpec::CachedExact,
            OracleSpec::Incremental,
        ] {
            let oracle = OracleBuilder::new(spec.clone()).build().unwrap();
            oracle.is_routable(&g.view(), &demands).unwrap();
            oracle.satisfied(&g.view(), &demands).unwrap();
            assert!(oracle.stats().queries() > 0, "{spec}");
            oracle.reset_stats();
            assert_eq!(oracle.stats(), OracleStats::default(), "{spec}");
        }
    }

    #[test]
    fn routability_mode_conversion() {
        assert_eq!(OracleSpec::from(RoutabilityMode::Exact), OracleSpec::Exact);
        assert_eq!(
            OracleSpec::from(RoutabilityMode::Auto { threshold: 9 }),
            OracleSpec::Auto { threshold: 9 }
        );
        assert!(OracleSpec::Exact.uses_exact_split(1_000_000, 10));
        assert!(!OracleSpec::Approx { epsilon: 0.1 }.uses_exact_split(1, 1));
        assert!(OracleSpec::Auto { threshold: 10 }.uses_exact_split(5, 2));
        assert!(!OracleSpec::Auto { threshold: 10 }.uses_exact_split(11, 1));
    }
}
