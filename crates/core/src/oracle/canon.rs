//! Canonical effective-state machinery shared by the stateful oracle
//! backends.
//!
//! Both [`IncrementalOracle`](super::IncrementalOracle) (PR 3) and the
//! precomputed [`ArtifactOracle`](super::ArtifactOracle) key their
//! answers by the same *canonical effective state*: the enabled edge
//! set (node and edge masks combined), restricted to the connected
//! components that contain both endpoints of at least one active
//! demand, together with the effective capacities. The restriction is
//! lossless — flow conservation confines every demand to its own
//! component, so edges in components without a complete demand pair can
//! never carry useful flow — which is exactly what makes an offline
//! artifact sound: a state computed at build time and a state observed
//! at query time that canonicalize identically are the *same* LP
//! instance, so the stored verdict transfers.
//!
//! The monotone-witness helpers ([`extends`], [`insert_minimal`],
//! [`insert_maximal`]) encode the other transfer rule: a routable state
//! stays routable when components are added and capacities grow, an
//! unroutable state stays unroutable when restricted further. Both are
//! exact implications, never approximations.

use netrec_graph::{Graph, View};
use netrec_lp::mcf::Demand;

/// Maximum retained witnesses per kind in a *live* oracle's warm state;
/// older ones are evicted first. Witness checks are O(|E|) each, so
/// this bounds per-query overhead. (Precomputed artifacts may carry
/// more: their witness lists are built once, offline.)
pub(crate) const MAX_WITNESSES: usize = 16;

/// A canonical effective state: the demand-relevant enabled edges as a
/// bitset plus their capacities (0.0 where absent).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EffState {
    pub(crate) words: Vec<u64>,
    pub(crate) caps: Vec<f64>,
}

impl EffState {
    #[inline]
    pub(crate) fn enabled(&self, e: usize) -> bool {
        self.words[e / 64] & (1 << (e % 64)) != 0
    }

    /// The lossless memo key: the bitset plus the capacity bits of every
    /// present edge in id order.
    pub(crate) fn key(&self) -> Vec<u64> {
        let mut key = self.words.clone();
        for (e, &c) in self.caps.iter().enumerate() {
            if self.enabled(e) {
                key.push(c.to_bits());
            }
        }
        key
    }

    /// An all-edges-enabled edge mask for re-solving on the canonical
    /// subgraph.
    pub(crate) fn edge_mask(&self) -> Vec<bool> {
        (0..self.caps.len()).map(|e| self.enabled(e)).collect()
    }
}

/// The raw effective state of a view before canonicalization: per-edge
/// enablement (masks combined) and the capacity of *every* edge (so
/// patch deltas can pick up capacities of edges not yet enabled).
pub(crate) struct RawState {
    pub(crate) enabled: Vec<bool>,
    pub(crate) caps: Vec<f64>,
}

impl RawState {
    pub(crate) fn of(view: &View<'_>) -> Self {
        let m = view.edge_count();
        let mut enabled = vec![false; m];
        let mut caps = vec![0.0; m];
        for e in view.graph().edges() {
            enabled[e.index()] = view.edge_enabled(e);
            caps[e.index()] = view.capacity(e);
        }
        RawState { enabled, caps }
    }
}

/// Union-find with path halving over dense node indices.
pub(crate) struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    pub(crate) fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    pub(crate) fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let grand = self.parent[self.parent[x] as usize];
            self.parent[x] = grand;
            x = grand as usize;
        }
        x
    }

    pub(crate) fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra as u32;
        }
    }
}

/// Canonicalizes a raw effective state: keeps only edges lying in a
/// connected component that contains both endpoints of at least one
/// active demand. Exact: every demand's flow is confined to its own
/// component, so dropped edges can never influence either query kind.
pub(crate) fn canonicalize(
    graph: &Graph,
    demands: &[Demand],
    enabled: &[bool],
    caps: &[f64],
) -> EffState {
    let n = graph.node_count();
    let m = graph.edge_count();
    let mut uf = UnionFind::new(n);
    for (e, &on) in enabled.iter().enumerate() {
        if on {
            let (u, v) = graph.endpoints(netrec_graph::EdgeId::new(e));
            uf.union(u.index(), v.index());
        }
    }
    let mut relevant = vec![false; n];
    for d in demands {
        if d.amount > 0.0 && d.source != d.target {
            let (rs, rt) = (uf.find(d.source.index()), uf.find(d.target.index()));
            if rs == rt {
                relevant[rs] = true;
            }
        }
    }
    let mut words = vec![0u64; m.div_ceil(64)];
    let mut canon_caps = vec![0.0; m];
    for (e, &on) in enabled.iter().enumerate() {
        if on {
            let (u, _) = graph.endpoints(netrec_graph::EdgeId::new(e));
            if relevant[uf.find(u.index())] {
                words[e / 64] |= 1 << (e % 64);
                canon_caps[e] = caps[e];
            }
        }
    }
    EffState {
        words,
        caps: canon_caps,
    }
}

/// Whether state `a` offers at least everything state `b` does: every
/// edge present in `b` is present in `a` with at least `b`'s capacity.
pub(crate) fn extends(a: &EffState, b: &EffState) -> bool {
    if b.words.iter().zip(&a.words).any(|(&bw, &aw)| bw & !aw != 0) {
        return false;
    }
    for (e, &bc) in b.caps.iter().enumerate() {
        if b.enabled(e) && a.caps[e] < bc {
            return false;
        }
    }
    true
}

/// Inserts a witness into a list where *smaller* states are stronger
/// (routable / fully-satisfied): skips dominated inserts, drops every
/// entry the newcomer dominates, evicts the oldest past `cap`. Below
/// the cap the list is the minimal antichain of everything inserted,
/// which no insertion order can change — the artifact sweep relies on
/// this for shard-count-invariant bytes.
pub(crate) fn insert_minimal_capped(list: &mut Vec<EffState>, new: EffState, cap: usize) {
    if list.iter().any(|w| extends(&new, w)) {
        return; // an existing witness already covers everything `new` would
    }
    list.retain(|w| !extends(w, &new)); // `new` strictly dominates these
    if list.len() >= cap {
        list.remove(0);
    }
    list.push(new);
}

/// Mirror of [`insert_minimal_capped`] for lists where *larger* states
/// are stronger (unroutable).
pub(crate) fn insert_maximal_capped(list: &mut Vec<EffState>, new: EffState, cap: usize) {
    if list.iter().any(|w| extends(w, &new)) {
        return;
    }
    list.retain(|w| !extends(&new, w));
    if list.len() >= cap {
        list.remove(0);
    }
    list.push(new);
}

/// [`insert_minimal_capped`] at the live-oracle bound
/// [`MAX_WITNESSES`].
pub(crate) fn insert_minimal(list: &mut Vec<EffState>, new: EffState) {
    insert_minimal_capped(list, new, MAX_WITNESSES);
}

/// [`insert_maximal_capped`] at the live-oracle bound
/// [`MAX_WITNESSES`].
pub(crate) fn insert_maximal(list: &mut Vec<EffState>, new: EffState) {
    insert_maximal_capped(list, new, MAX_WITNESSES);
}
