//! The concurrent-flow approximate oracle backend.

use super::{Counter, EvalOracle, ExactLp, OracleStats, RoutabilityOracle, SatisfactionOracle};
use crate::RecoveryError;
use netrec_graph::{maxflow, traversal, View};
use netrec_lp::concurrent::{self, ConcurrentFlowConfig};
use netrec_lp::mcf::{self, Demand};

/// Approximate backend built on the Garg–Könemann maximum-concurrent-flow
/// algorithm, with an exact-LP fast path below the size threshold where
/// exact answers are both affordable and strictly better.
///
/// With threshold-mode early termination
/// ([`concurrent::max_concurrent_flow_threshold`]) Garg–Könemann now
/// answers clearly-feasible queries in a phase or two (~7 µs on the Bell
/// routability query, `BENCH_routability.json`), but its *near-boundary*
/// behavior is unchanged: a λ ≈ 1 query runs the full `O(ε⁻²)` phase
/// schedule and then answers a conservative "unroutable", which costs
/// the caller extra repairs. Queries at or below
/// [`the size limit`](Self::with_fallback_limit) therefore go straight to
/// the (revised-simplex) exact LP — affordable at this size, never
/// conservative.
///
/// Above the limit the approximation runs. It certifies a lower bound
/// `λ_lower ≤ λ*` and implies an upper bound
/// `λ_upper = λ_lower / (1 − 3ε)`:
///
/// * `λ_lower ≥ 1` — a feasible routing of the full demand exists:
///   answer **routable** (trustworthy);
/// * `λ_upper < 1` — the instance is certainly short of capacity within
///   the guarantee: answer **unroutable**;
/// * otherwise (`λ_lower < 1 ≤ λ_upper`) — the boundary band: the answer
///   is a conservative **unroutable**, which can only cost extra
///   repairs, never plan feasibility (see `DESIGN.md`).
#[derive(Debug)]
pub struct ConcurrentFlowApprox {
    epsilon: f64,
    fallback_limit: usize,
    fallback: ExactLp,
    routability_queries: Counter,
    satisfaction_queries: Counter,
    approx_runs: Counter,
    boundary_fallbacks: Counter,
    threshold_certified: Counter,
}

impl Default for ConcurrentFlowApprox {
    fn default() -> Self {
        ConcurrentFlowApprox::new(super::DEFAULT_EPSILON)
    }
}

impl ConcurrentFlowApprox {
    /// Default exact-LP fast-path limit: aligned with the
    /// [`OracleSpec::Auto`](super::OracleSpec::Auto) default threshold —
    /// the measured size below which the dense LP beats Garg–Könemann.
    pub const DEFAULT_FALLBACK_LIMIT: usize = super::DEFAULT_SIZE_THRESHOLD;

    /// Per-demand Dinic precheck budget on `|E| · |EH|`. Below it every
    /// demand gets an exact single-commodity max-flow screen (cheap, and
    /// it rejects per-demand overloads before the expensive full
    /// Garg–Könemann schedule runs); above it the screen would itself
    /// dominate the query — a 100k-node view times hundreds of demands is
    /// hundreds of full max-flow runs — so only `quick_unroutable` and
    /// the concurrent-flow certificates are consulted.
    pub const PRECHECK_BUDGET: usize = 1 << 22;

    /// A backend with accuracy `epsilon` and the default exact-path limit.
    pub fn new(epsilon: f64) -> Self {
        ConcurrentFlowApprox {
            epsilon,
            fallback_limit: Self::DEFAULT_FALLBACK_LIMIT,
            fallback: ExactLp::new(),
            routability_queries: Counter::default(),
            satisfaction_queries: Counter::default(),
            approx_runs: Counter::default(),
            boundary_fallbacks: Counter::default(),
            threshold_certified: Counter::default(),
        }
    }

    /// Overrides the `|E| · |EH|` size limit at or under which queries go
    /// straight to the exact LP instead of the approximation (0 forces
    /// the approximation everywhere, `usize::MAX` the exact LP
    /// everywhere).
    pub fn with_fallback_limit(mut self, limit: usize) -> Self {
        self.fallback_limit = limit;
        self
    }

    /// Pins the exact-LP fast path to an explicit LP engine.
    pub fn with_engine(mut self, engine: netrec_lp::LpEngine) -> Self {
        self.fallback = ExactLp::with_engine(engine);
        self
    }

    /// The configured accuracy parameter.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn in_fallback_budget(&self, view: &View<'_>, active: usize) -> bool {
        view.enabled_edges().count() * active <= self.fallback_limit
    }
}

impl RoutabilityOracle for ConcurrentFlowApprox {
    fn is_routable(&self, view: &View<'_>, demands: &[Demand]) -> Result<bool, RecoveryError> {
        self.routability_queries.bump();
        let active: Vec<Demand> = demands
            .iter()
            .copied()
            .filter(|d| d.amount > 1e-12 && d.source != d.target)
            .collect();
        if active.is_empty() {
            return Ok(true);
        }
        if mcf::quick_unroutable(view, &active) {
            return Ok(false);
        }
        // Per-demand exact screen, gated by size: at internet scale the
        // screen itself would cost |EH| full max-flow runs per query.
        if view.enabled_edges().count() * active.len() <= Self::PRECHECK_BUDGET {
            for d in &active {
                if maxflow::max_flow_value(view, d.source, d.target) < d.amount - 1e-9 {
                    return Ok(false);
                }
            }
        }
        // Small instances: exact answers are affordable and never
        // conservative — use the LP directly.
        if self.in_fallback_budget(view, active.len()) {
            self.boundary_fallbacks.bump();
            return self.fallback.is_routable(view, &active);
        }
        self.approx_runs.bump();
        // Threshold query with early termination: the oracle only needs
        // the λ ≥ 1 verdict, certified by explicit-flow congestion after
        // a phase or two on comfortably feasible instances. A `false` —
        // including the λ ≈ 1 boundary band — stays a conservative
        // "unroutable".
        let config = ConcurrentFlowConfig {
            epsilon: self.epsilon,
            target: Some(1.0),
            ..Default::default()
        };
        let r = concurrent::max_concurrent_flow(view, &active, &config);
        if r.lambda_lower >= 1.0 {
            self.threshold_certified.bump();
            return Ok(true);
        }
        Ok(false)
    }
}

impl SatisfactionOracle for ConcurrentFlowApprox {
    fn satisfied(&self, view: &View<'_>, demands: &[Demand]) -> Result<Vec<f64>, RecoveryError> {
        self.satisfaction_queries.bump();
        // Follow max_satisfied conventions: zero/degenerate demands count
        // as fully satisfied; disconnected ones as zero.
        let mut satisfied: Vec<f64> = demands.iter().map(|d| d.amount.max(0.0)).collect();
        let mut connected_idx: Vec<usize> = Vec::new();
        for (i, d) in demands.iter().enumerate() {
            if d.amount <= 0.0 || d.source == d.target {
                continue;
            }
            if view.node_enabled(d.source)
                && view.node_enabled(d.target)
                && traversal::connected(view, d.source, d.target)
            {
                connected_idx.push(i);
            } else {
                satisfied[i] = 0.0;
            }
        }
        if connected_idx.is_empty() {
            return Ok(satisfied);
        }
        let connected: Vec<Demand> = connected_idx.iter().map(|&i| demands[i]).collect();
        // Small instances: exact answers, faster than the approximation.
        if self.in_fallback_budget(view, connected.len()) {
            self.boundary_fallbacks.bump();
            return self.fallback.satisfied(view, demands);
        }
        self.approx_runs.bump();
        let config = ConcurrentFlowConfig {
            epsilon: self.epsilon,
            target: Some(1.0),
            ..Default::default()
        };
        let r = concurrent::max_concurrent_flow(view, &connected, &config);
        if r.lambda_lower >= 1.0 {
            // Every connected demand fits in full.
            self.threshold_certified.bump();
            return Ok(satisfied);
        }
        // Certified concurrent scaling: λ_lower · d_h is simultaneously
        // routable, so it is a valid per-demand lower bound.
        let lambda = r.lambda_lower.clamp(0.0, 1.0);
        for &i in &connected_idx {
            satisfied[i] = demands[i].amount * lambda;
        }
        Ok(satisfied)
    }
}

impl EvalOracle for ConcurrentFlowApprox {
    fn name(&self) -> String {
        format!("approx:{}", self.epsilon)
    }

    fn stats(&self) -> OracleStats {
        let inner = self.fallback.stats();
        OracleStats {
            routability_queries: self.routability_queries.get(),
            satisfaction_queries: self.satisfaction_queries.get(),
            lp_solves: inner.lp_solves,
            approx_runs: self.approx_runs.get(),
            boundary_fallbacks: self.boundary_fallbacks.get(),
            threshold_certified: self.threshold_certified.get(),
            ..OracleStats::default()
        }
    }

    fn reset_stats(&self) {
        self.routability_queries.reset();
        self.satisfaction_queries.reset();
        self.approx_runs.reset();
        self.boundary_fallbacks.reset();
        self.threshold_certified.reset();
        self.fallback.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrec_graph::Graph;

    fn square() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(g.node(0), g.node(1), 10.0).unwrap();
        g.add_edge(g.node(1), g.node(3), 10.0).unwrap();
        g.add_edge(g.node(0), g.node(2), 4.0).unwrap();
        g.add_edge(g.node(2), g.node(3), 4.0).unwrap();
        g
    }

    #[test]
    fn small_instances_use_the_exact_lp_directly() {
        let g = square();
        let oracle = ConcurrentFlowApprox::new(0.05);
        // The square is far below the size threshold, where exact
        // answers are affordable and never conservative: the query must
        // go straight to the exact backend.
        assert!(oracle
            .is_routable(&g.view(), &[Demand::new(g.node(0), g.node(3), 7.0)])
            .unwrap());
        let stats = oracle.stats();
        assert_eq!(stats.approx_runs, 0, "{stats:?}");
        assert_eq!(stats.boundary_fallbacks, 1, "{stats:?}");
        // 20 > max flow 14: the single-commodity precheck rejects it
        // before either backend runs.
        assert!(!oracle
            .is_routable(&g.view(), &[Demand::new(g.node(0), g.node(3), 20.0)])
            .unwrap());
        assert_eq!(oracle.stats().boundary_fallbacks, 1);
    }

    #[test]
    fn boundary_band_stays_conservative_on_the_approx_path() {
        let g = square();
        // Force the Garg–Könemann path regardless of instance size.
        let oracle = ConcurrentFlowApprox::new(0.05).with_fallback_limit(0);
        // Demand 13.9 against max flow 14: λ* ≈ 1.007, squarely in the
        // ε band. Whatever the answer, it must never involve the exact
        // LP, and a positive answer must be genuinely feasible.
        let demands = [Demand::new(g.node(0), g.node(3), 13.9)];
        let answer = oracle.is_routable(&g.view(), &demands).unwrap();
        let stats = oracle.stats();
        assert_eq!(stats.lp_solves, 0, "{stats:?}");
        assert_eq!(stats.approx_runs, 1, "{stats:?}");
        if answer {
            assert!(mcf::routability(&g.view(), &demands).unwrap().is_some());
        }
    }

    #[test]
    fn stats_record_which_path_answered() {
        let g = square();
        // Force the approximation everywhere: a comfortably feasible
        // demand must be answered by the threshold certificate, and the
        // stats must say so.
        let oracle = ConcurrentFlowApprox::new(0.05).with_fallback_limit(0);
        assert!(oracle
            .is_routable(&g.view(), &[Demand::new(g.node(0), g.node(3), 7.0)])
            .unwrap());
        let stats = oracle.stats();
        assert_eq!(stats.approx_runs, 1, "{stats:?}");
        assert_eq!(stats.threshold_certified, 1, "{stats:?}");
        assert_eq!(stats.boundary_fallbacks, 0, "{stats:?}");
    }

    #[test]
    fn satisfaction_full_when_routable_and_scaled_when_not() {
        let g = square();
        let oracle = ConcurrentFlowApprox::new(0.05);
        let easy = [Demand::new(g.node(0), g.node(3), 7.0)];
        let sat = oracle.satisfied(&g.view(), &easy).unwrap();
        assert!((sat[0] - 7.0).abs() < 1e-9);

        // Far over capacity: the λ-scaled bound must stay below the exact
        // optimum (14) and above a sane floor.
        let hard = [Demand::new(g.node(0), g.node(3), 28.0)];
        let sat = oracle.satisfied(&g.view(), &hard).unwrap();
        let (exact, _) = mcf::max_satisfied(&g.view(), &hard).unwrap();
        assert!(
            sat[0] <= exact[0] + 1e-6,
            "bound {} > exact {}",
            sat[0],
            exact[0]
        );
        assert!(
            sat[0] > 0.25 * exact[0],
            "bound uselessly loose: {}",
            sat[0]
        );
    }

    #[test]
    fn disconnected_demands_get_zero_but_others_survive() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(g.node(0), g.node(1), 5.0).unwrap();
        let oracle = ConcurrentFlowApprox::new(0.05);
        let demands = [
            Demand::new(g.node(0), g.node(1), 2.0),
            Demand::new(g.node(2), g.node(3), 9.0),
        ];
        let sat = oracle.satisfied(&g.view(), &demands).unwrap();
        assert!((sat[0] - 2.0).abs() < 1e-9);
        assert_eq!(sat[1], 0.0);
    }
}
