//! The exact-LP oracle backend (the paper's own formulation).

use super::{Counter, EvalOracle, OracleStats, RoutabilityOracle, SatisfactionOracle};
use crate::RecoveryError;
use netrec_graph::{maxflow, View};
use netrec_lp::mcf::{self, Demand};

/// Exact backend: system (2) for routability, the maximum-satisfied-demand
/// LP for satisfaction.
///
/// Cheap necessary conditions run first (endpoint connectivity, then
/// per-demand single-commodity max flow), so the dense tableau is only
/// built when the instance has a chance of being routable.
#[derive(Debug, Default)]
pub struct ExactLp {
    routability_queries: Counter,
    satisfaction_queries: Counter,
    lp_solves: Counter,
}

impl ExactLp {
    /// A fresh backend with zeroed counters.
    pub fn new() -> Self {
        ExactLp::default()
    }
}

impl RoutabilityOracle for ExactLp {
    fn is_routable(&self, view: &View<'_>, demands: &[Demand]) -> Result<bool, RecoveryError> {
        self.routability_queries.bump();
        let active: Vec<Demand> = demands
            .iter()
            .copied()
            .filter(|d| d.amount > 1e-12 && d.source != d.target)
            .collect();
        if active.is_empty() {
            return Ok(true);
        }
        if mcf::quick_unroutable(view, &active) {
            return Ok(false);
        }
        for d in &active {
            if maxflow::max_flow_value(view, d.source, d.target) < d.amount - 1e-9 {
                return Ok(false);
            }
        }
        self.lp_solves.bump();
        Ok(mcf::routability(view, &active)?.is_some())
    }
}

impl SatisfactionOracle for ExactLp {
    fn satisfied(&self, view: &View<'_>, demands: &[Demand]) -> Result<Vec<f64>, RecoveryError> {
        self.satisfaction_queries.bump();
        if demands
            .iter()
            .any(|d| d.amount > 0.0 && d.source != d.target)
        {
            self.lp_solves.bump();
        }
        let (sat, _) = mcf::max_satisfied(view, demands)?;
        Ok(sat)
    }
}

impl EvalOracle for ExactLp {
    fn name(&self) -> String {
        "exact".to_string()
    }

    fn stats(&self) -> OracleStats {
        OracleStats {
            routability_queries: self.routability_queries.get(),
            satisfaction_queries: self.satisfaction_queries.get(),
            lp_solves: self.lp_solves.get(),
            ..OracleStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrec_graph::Graph;

    fn line() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(g.node(0), g.node(1), 5.0).unwrap();
        g.add_edge(g.node(1), g.node(2), 5.0).unwrap();
        g
    }

    #[test]
    fn matches_the_lp_on_both_sides_of_capacity() {
        let g = line();
        let oracle = ExactLp::new();
        assert!(oracle
            .is_routable(&g.view(), &[Demand::new(g.node(0), g.node(2), 4.0)])
            .unwrap());
        assert!(!oracle
            .is_routable(&g.view(), &[Demand::new(g.node(0), g.node(2), 6.0)])
            .unwrap());
    }

    #[test]
    fn cheap_prechecks_avoid_lp_solves() {
        let g = line();
        let oracle = ExactLp::new();
        // Over single-commodity max flow: rejected by the precheck.
        assert!(!oracle
            .is_routable(&g.view(), &[Demand::new(g.node(0), g.node(2), 6.0)])
            .unwrap());
        // Empty demand set: trivially routable without any solve.
        assert!(oracle.is_routable(&g.view(), &[]).unwrap());
        let stats = oracle.stats();
        assert_eq!(stats.routability_queries, 2);
        assert_eq!(stats.lp_solves, 0);
    }

    #[test]
    fn satisfaction_matches_max_satisfied() {
        let g = line();
        let oracle = ExactLp::new();
        let sat = oracle
            .satisfied(&g.view(), &[Demand::new(g.node(0), g.node(2), 8.0)])
            .unwrap();
        assert!((sat[0] - 5.0).abs() < 1e-6);
        assert_eq!(oracle.stats().satisfaction_queries, 1);
        assert_eq!(oracle.stats().lp_solves, 1);
    }
}
