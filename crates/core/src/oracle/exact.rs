//! The exact-LP oracle backend (the paper's own formulation).

use super::{Counter, EvalOracle, OracleStats, RoutabilityOracle, SatisfactionOracle};
use crate::RecoveryError;
use netrec_graph::{maxflow, View};
use netrec_lp::mcf::{self, Demand, WarmRoutability};
use netrec_lp::LpEngine;
use std::sync::Mutex;

/// Exact backend: system (2) for routability, the maximum-satisfied-demand
/// LP for satisfaction.
///
/// Cheap necessary conditions run first (endpoint connectivity, then
/// per-demand single-commodity max flow), so an LP is only solved when
/// the instance has a chance of being routable.
///
/// Under the revised engine (the default) the backend keeps a
/// **per-generation [`WarmRoutability`] system**: consecutive routability
/// queries against the same `(graph, demands)` instance are pure
/// capacity patches of one fixed-structure LP, re-solved warm from the
/// previous optimal basis. Routability answers are a property of the
/// instance alone, so the warm state can never change an answer — only
/// its cost. Satisfaction queries stay stateless (their per-demand optima
/// are degenerate, and a history-dependent split would make two equally
/// configured backends disagree).
#[derive(Debug)]
pub struct ExactLp {
    engine: LpEngine,
    routability_queries: Counter,
    satisfaction_queries: Counter,
    lp_solves: Counter,
    warm_start_hits: Counter,
    warm: Mutex<Option<WarmState>>,
}

#[derive(Debug)]
struct WarmState {
    generation: Vec<u64>,
    system: WarmRoutability,
}

impl Default for ExactLp {
    fn default() -> Self {
        ExactLp::new()
    }
}

impl ExactLp {
    /// A fresh backend with zeroed counters, on the process default
    /// engine.
    pub fn new() -> Self {
        ExactLp::with_engine(netrec_lp::global_engine())
    }

    /// A fresh backend pinned to an explicit LP engine.
    pub fn with_engine(engine: LpEngine) -> Self {
        ExactLp {
            engine,
            routability_queries: Counter::default(),
            satisfaction_queries: Counter::default(),
            lp_solves: Counter::default(),
            warm_start_hits: Counter::default(),
            warm: Mutex::new(None),
        }
    }

    /// The engine this backend solves with.
    pub fn engine(&self) -> LpEngine {
        self.engine
    }
}

impl RoutabilityOracle for ExactLp {
    fn is_routable(&self, view: &View<'_>, demands: &[Demand]) -> Result<bool, RecoveryError> {
        self.routability_queries.bump();
        let active: Vec<Demand> = demands
            .iter()
            .copied()
            .filter(|d| d.amount > 1e-12 && d.source != d.target)
            .collect();
        if active.is_empty() {
            return Ok(true);
        }
        if mcf::quick_unroutable(view, &active) {
            return Ok(false);
        }
        for d in &active {
            if maxflow::max_flow_value(view, d.source, d.target) < d.amount - 1e-9 {
                return Ok(false);
            }
        }
        self.lp_solves.bump();
        match self.engine {
            LpEngine::Dense => Ok(mcf::routability_with(view, &active, LpEngine::Dense)?.is_some()),
            LpEngine::Revised => {
                let generation = super::generation_key_of(view.graph(), &active);
                let mut guard = self.warm.lock().expect("exact warm state poisoned");
                let state = match guard.as_mut() {
                    Some(s) if s.generation == generation => s,
                    _ => {
                        *guard = Some(WarmState {
                            generation,
                            system: WarmRoutability::build(view.graph(), &active),
                        });
                        guard.as_mut().expect("just installed")
                    }
                };
                if state.system.has_basis() {
                    self.warm_start_hits.bump();
                }
                let caps = super::effective_capacities(view);
                Ok(state.system.solve(&caps)?)
            }
        }
    }
}

impl SatisfactionOracle for ExactLp {
    fn satisfied(&self, view: &View<'_>, demands: &[Demand]) -> Result<Vec<f64>, RecoveryError> {
        self.satisfaction_queries.bump();
        if demands
            .iter()
            .any(|d| d.amount > 0.0 && d.source != d.target)
        {
            self.lp_solves.bump();
        }
        let weights = vec![1.0; demands.len()];
        let (sat, _) = mcf::max_weighted_satisfied_with(view, demands, &weights, self.engine)?;
        Ok(sat)
    }
}

impl EvalOracle for ExactLp {
    fn name(&self) -> String {
        "exact".to_string()
    }

    fn stats(&self) -> OracleStats {
        OracleStats {
            routability_queries: self.routability_queries.get(),
            satisfaction_queries: self.satisfaction_queries.get(),
            lp_solves: self.lp_solves.get(),
            warm_start_hits: self.warm_start_hits.get(),
            ..OracleStats::default()
        }
    }

    fn reset_stats(&self) {
        self.routability_queries.reset();
        self.satisfaction_queries.reset();
        self.lp_solves.reset();
        self.warm_start_hits.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrec_graph::Graph;

    fn line() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(g.node(0), g.node(1), 5.0).unwrap();
        g.add_edge(g.node(1), g.node(2), 5.0).unwrap();
        g
    }

    #[test]
    fn matches_the_lp_on_both_sides_of_capacity() {
        for engine in [LpEngine::Dense, LpEngine::Revised] {
            let g = line();
            let oracle = ExactLp::with_engine(engine);
            assert!(oracle
                .is_routable(&g.view(), &[Demand::new(g.node(0), g.node(2), 4.0)])
                .unwrap());
            assert!(!oracle
                .is_routable(&g.view(), &[Demand::new(g.node(0), g.node(2), 6.0)])
                .unwrap());
        }
    }

    #[test]
    fn cheap_prechecks_avoid_lp_solves() {
        let g = line();
        let oracle = ExactLp::new();
        // Over single-commodity max flow: rejected by the precheck.
        assert!(!oracle
            .is_routable(&g.view(), &[Demand::new(g.node(0), g.node(2), 6.0)])
            .unwrap());
        // Empty demand set: trivially routable without any solve.
        assert!(oracle.is_routable(&g.view(), &[]).unwrap());
        let stats = oracle.stats();
        assert_eq!(stats.routability_queries, 2);
        assert_eq!(stats.lp_solves, 0);
    }

    #[test]
    fn satisfaction_matches_max_satisfied() {
        let g = line();
        let oracle = ExactLp::new();
        let sat = oracle
            .satisfied(&g.view(), &[Demand::new(g.node(0), g.node(2), 8.0)])
            .unwrap();
        assert!((sat[0] - 5.0).abs() < 1e-6);
        assert_eq!(oracle.stats().satisfaction_queries, 1);
        assert_eq!(oracle.stats().lp_solves, 1);
    }

    #[test]
    fn repeated_capacity_patched_queries_warm_start() {
        let g = line();
        let oracle = ExactLp::with_engine(LpEngine::Revised);
        // Two demands sharing edge 0: every query below survives the
        // single-commodity prechecks, so each one reaches the LP.
        let demands = [
            Demand::new(g.node(0), g.node(2), 3.0),
            Demand::new(g.node(0), g.node(1), 3.0),
        ];
        // Same generation, different capacity states: later queries
        // re-solve the same fixed-structure LP warm.
        let caps = vec![10.0, 10.0];
        assert!(oracle
            .is_routable(&g.view().with_capacities(&caps), &demands)
            .unwrap());
        let caps = vec![6.0, 3.0];
        assert!(oracle
            .is_routable(&g.view().with_capacities(&caps), &demands)
            .unwrap());
        // Both prechecks pass (per-demand max flow ≥ 3) but the shared
        // edge cannot carry 6: only the multicommodity LP can say no.
        let caps = vec![5.0, 5.0];
        assert!(!oracle
            .is_routable(&g.view().with_capacities(&caps), &demands)
            .unwrap());
        let stats = oracle.stats();
        assert_eq!(stats.lp_solves, 3, "{stats:?}");
        assert_eq!(stats.warm_start_hits, 2, "{stats:?}");
    }

    #[test]
    fn generation_change_rebuilds_the_warm_system() {
        let g = line();
        let oracle = ExactLp::with_engine(LpEngine::Revised);
        let d4 = [Demand::new(g.node(0), g.node(2), 4.0)];
        let d5 = [Demand::new(g.node(0), g.node(2), 5.0)];
        assert!(oracle.is_routable(&g.view(), &d4).unwrap());
        assert!(oracle.is_routable(&g.view(), &d5).unwrap());
        // New demand set = new generation: no warm basis to start from.
        assert_eq!(oracle.stats().warm_start_hits, 0);
    }
}
