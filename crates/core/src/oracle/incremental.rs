//! The incremental exact oracle backend.
//!
//! The progressive scheduler, GRD-NC, and MCB all probe long sequences of
//! *nearly identical* network states: the working masks change by one
//! repaired component per probe (apply → query → undo). A from-scratch
//! backend pays a full LP per probe; [`Cached`](super::Cached) only
//! collapses exact repeats. `IncrementalOracle` instead keeps a
//! **persistent warm-start state** between queries and answers most
//! probes without any solve. Its answer contract relative to
//! [`ExactLp`]: routability verdicts and **optimal satisfied totals**
//! are identical (both are unique properties of the instance);
//! *per-demand* satisfaction splits may differ — the maximum-satisfied
//! LP has degenerate optima, and this backend's warm re-solves pick the
//! vertex reachable from the previous basis, so the split depends on
//! query history. Every consumer in the stack (the scheduler's frontier
//! scoring, `satisfied_fraction`) consumes totals. The state:
//!
//! * **Generation** — a fingerprint of the base instance (graph shape +
//!   demand list). While it matches, state persists across apply/undo
//!   deltas; on a mismatch the state is discarded and the next answers
//!   come from full re-solves.
//! * **Canonical effective state** — answers are keyed by the *effective*
//!   enabled edge set (masks combined), restricted to the connected
//!   components that contain both endpoints of at least one active
//!   demand, with capacities. This is a lossless canonicalization: flow
//!   conservation confines every demand to its own component, so edges
//!   in components without a complete demand pair can never carry useful
//!   flow, and a disabled endpoint is indistinguishable from an
//!   enabled-but-isolated one. Toggling any component that does not
//!   change the demand-relevant subgraph — a node whose links are still
//!   broken, an edge with a broken endpoint, anything in a dead region —
//!   lands on the same key, so the scheduler's zero-marginal-gain
//!   frontier collapses to one solve.
//! * **Monotone witnesses** — warm-start deductions from previous
//!   solutions. A state that was routable stays routable when components
//!   are added and capacities grow (the old routing remains feasible);
//!   an unroutable state stays unroutable when restricted further; a
//!   fully-satisfied state stays fully satisfied under additions, and its
//!   answer vector is exactly the demand amounts. All three are exact
//!   implications, never approximations.
//!
//! Under the revised engine (the default), full solves go through
//! per-generation fixed-structure warm systems
//! ([`WarmRoutability`]/[`WarmMaxSatisfied`], DESIGN.md §11): every
//! capacity state of the generation is an RHS patch of one LP, re-solved
//! from the previous basis by the dual simplex. Under the dense escape
//! hatch they run cold on the canonical subgraph (dead regions masked
//! out) exactly as before.
//!
//! [`EvalOracle::evaluate_batch`] is overridden to score a whole repair
//! frontier against one shared base state: per candidate it computes just
//! the *delta* of effective edges (O(degree)) instead of re-deriving the
//! query from scratch.

use super::canon::{canonicalize, extends, insert_maximal, insert_minimal, EffState, RawState};
use super::{
    Counter, EvalOracle, ExactLp, OracleStats, Patch, RoutabilityOracle, SatisfactionOracle,
};
use crate::RecoveryError;
use netrec_graph::{Graph, View};
use netrec_lp::mcf::{self, Demand, WarmMaxSatisfied, WarmRoutability};
use netrec_lp::LpEngine;
use std::collections::HashMap;
use std::sync::Mutex;

/// Maximum entries per memo map before it is cleared wholesale. Each
/// entry is O(|E|) words, so this bounds memory on huge schedules (an
/// O(items²) probe sequence) at the cost of rare recomputation; the
/// witnesses survive a clear, so warm starts keep working.
const MAX_MEMO_ENTRIES: usize = 65_536;

/// The exact backend with persistent warm-start state (see module docs).
///
/// Routability verdicts and satisfied totals are identical to
/// [`ExactLp`]; per-demand splits of degenerate satisfaction optima may
/// differ (see the module docs) — only the cost differs for every
/// quantity the stack consumes. Selected
/// via [`OracleSpec::Incremental`](super::OracleSpec::Incremental)
/// (`--oracle incremental` on the CLI).
#[derive(Debug)]
pub struct IncrementalOracle {
    engine: LpEngine,
    inner: ExactLp,
    state: Mutex<IncState>,
    routability_queries: Counter,
    satisfaction_queries: Counter,
    memo_hits: Counter,
    warm_start_hits: Counter,
    full_solves: Counter,
    /// Warm-system LP solves (revised engine only; the dense path solves
    /// through `inner` and is counted there).
    warm_lp_solves: Counter,
    generation_resets: Counter,
}

impl Default for IncrementalOracle {
    fn default() -> Self {
        IncrementalOracle::new()
    }
}

/// An opaque, cloneable snapshot of an [`IncrementalOracle`]'s
/// transferable warm state (generation fingerprint + monotone witness
/// lists). Produced by [`IncrementalOracle::snapshot_state`], consumed
/// by [`IncrementalOracle::restore_state`]; a resident session uses the
/// pair to fork per-session oracle state without sharing mutable state.
#[derive(Debug, Clone)]
pub struct IncSnapshot {
    generation: Vec<u64>,
    routable: Vec<EffState>,
    unroutable: Vec<EffState>,
    fully_satisfied: Vec<EffState>,
}

impl IncSnapshot {
    /// Number of witnesses the snapshot carries (all three kinds).
    pub fn witness_count(&self) -> usize {
        self.routable.len() + self.unroutable.len() + self.fully_satisfied.len()
    }

    /// Whether the snapshot was taken before any query initialized the
    /// state.
    pub fn is_empty(&self) -> bool {
        self.generation.is_empty()
    }
}

/// The warm-start state, valid for one generation.
#[derive(Debug, Default)]
struct IncState {
    /// Fingerprint of the base instance (empty = not initialized yet).
    generation: Vec<u64>,
    /// States proven routable (minimal ones preferred).
    routable: Vec<EffState>,
    /// States proven unroutable (maximal ones preferred).
    unroutable: Vec<EffState>,
    /// States where every demand was fully satisfied.
    fully_satisfied: Vec<EffState>,
    memo_routable: HashMap<Vec<u64>, bool>,
    memo_satisfied: HashMap<Vec<u64>, Vec<f64>>,
    /// Fixed-structure routability system re-solved warm per capacity
    /// state (revised engine only; built lazily per generation).
    warm_rout: Option<WarmRoutability>,
    /// Satisfaction counterpart of `warm_rout`.
    warm_sat: Option<WarmMaxSatisfied>,
}

/// Inserts into a memo map, clearing it first when it is full (see
/// [`MAX_MEMO_ENTRIES`]).
fn memo_insert<V>(map: &mut HashMap<Vec<u64>, V>, key: Vec<u64>, value: V) {
    if map.len() >= MAX_MEMO_ENTRIES {
        map.clear();
    }
    map.insert(key, value);
}

impl IncrementalOracle {
    /// A fresh backend with empty warm-start state, on the process
    /// default engine.
    pub fn new() -> Self {
        IncrementalOracle::with_engine(netrec_lp::global_engine())
    }

    /// A fresh backend pinned to an explicit LP engine.
    pub fn with_engine(engine: LpEngine) -> Self {
        IncrementalOracle {
            engine,
            inner: ExactLp::with_engine(engine),
            state: Mutex::new(IncState::default()),
            routability_queries: Counter::default(),
            satisfaction_queries: Counter::default(),
            memo_hits: Counter::default(),
            warm_start_hits: Counter::default(),
            full_solves: Counter::default(),
            warm_lp_solves: Counter::default(),
            generation_resets: Counter::default(),
        }
    }

    /// The base-instance fingerprint (see
    /// [`super::generation_key_of`]).
    fn generation_key(view: &View<'_>, demands: &[Demand]) -> Vec<u64> {
        super::generation_key_of(view.graph(), demands)
    }

    /// Captures the transferable part of the warm state: the generation
    /// fingerprint and the monotone witness lists (bounded by
    /// `MAX_WITNESSES` each, so a snapshot is small). The memo maps
    /// and warm LP systems are deliberately excluded — they can be
    /// arbitrarily large, and both rebuild lazily from queries — so
    /// restoring a snapshot transfers the *deductions*, not the caches.
    /// This is what lets a resident session fork: the forked session
    /// starts with every routable/unroutable/fully-satisfied fact the
    /// parent had proven.
    pub fn snapshot_state(&self) -> IncSnapshot {
        let st = self.state.lock().expect("incremental state poisoned");
        IncSnapshot {
            generation: st.generation.clone(),
            routable: st.routable.clone(),
            unroutable: st.unroutable.clone(),
            fully_satisfied: st.fully_satisfied.clone(),
        }
    }

    /// Replaces the warm state with a snapshot's. Memo maps start empty
    /// and the warm LP systems rebuild on the next full solve; answers
    /// are unaffected either way (witnesses are exact implications).
    /// Restoring a snapshot from a different generation is safe: the
    /// next query's fingerprint check discards it like any stale state.
    pub fn restore_state(&self, snapshot: &IncSnapshot) {
        let mut st = self.state.lock().expect("incremental state poisoned");
        *st = IncState {
            generation: snapshot.generation.clone(),
            routable: snapshot.routable.clone(),
            unroutable: snapshot.unroutable.clone(),
            fully_satisfied: snapshot.fully_satisfied.clone(),
            ..IncState::default()
        };
    }

    /// Resets the state when the base instance changed ("generation
    /// mismatch → full re-solve").
    fn refresh_generation(&self, st: &mut IncState, view: &View<'_>, demands: &[Demand]) {
        let gen = Self::generation_key(view, demands);
        if st.generation == gen {
            return;
        }
        if !st.generation.is_empty() {
            self.generation_resets.bump();
        }
        *st = IncState {
            generation: gen,
            ..IncState::default()
        };
    }

    /// The satisfied vector for canonical state `q`, trying memo →
    /// witness → full solve on the canonical subgraph; maintains memos
    /// and witnesses.
    fn satisfied_for(
        &self,
        st: &mut IncState,
        q: &EffState,
        graph: &Graph,
        demands: &[Demand],
    ) -> Result<Vec<f64>, RecoveryError> {
        let key = q.key();
        if let Some(answer) = st.memo_satisfied.get(&key) {
            self.memo_hits.bump();
            return Ok(answer.clone());
        }
        if st.fully_satisfied.iter().any(|w| extends(q, w)) {
            self.warm_start_hits.bump();
            let full: Vec<f64> = demands.iter().map(|d| d.amount.max(0.0)).collect();
            memo_insert(&mut st.memo_satisfied, key, full.clone());
            return Ok(full);
        }
        self.full_solves.bump();
        let answer = match self.engine {
            LpEngine::Dense => {
                let mask = q.edge_mask();
                let canon = graph.view().with_edge_mask(&mask).with_capacities(&q.caps);
                self.inner.satisfied(&canon, demands)?
            }
            LpEngine::Revised => {
                self.warm_lp_solves.bump();
                let system = st
                    .warm_sat
                    .get_or_insert_with(|| WarmMaxSatisfied::build(graph, demands));
                system.solve(&q.caps)?
            }
        };
        if demands.iter().zip(&answer).all(|(d, &s)| s >= d.amount) {
            insert_minimal(&mut st.fully_satisfied, q.clone());
        }
        memo_insert(&mut st.memo_satisfied, key, answer.clone());
        Ok(answer)
    }
}

impl RoutabilityOracle for IncrementalOracle {
    fn is_routable(&self, view: &View<'_>, demands: &[Demand]) -> Result<bool, RecoveryError> {
        self.routability_queries.bump();
        let graph = view.graph();
        let mut st = self.state.lock().expect("incremental state poisoned");
        self.refresh_generation(&mut st, view, demands);
        let raw = RawState::of(view);
        let q = canonicalize(graph, demands, &raw.enabled, &raw.caps);
        let key = q.key();
        if let Some(&answer) = st.memo_routable.get(&key) {
            self.memo_hits.bump();
            return Ok(answer);
        }
        // Monotone warm starts: a routable state stays routable with more
        // components/capacity; an unroutable one stays unroutable with
        // fewer.
        if st.routable.iter().any(|w| extends(&q, w)) {
            self.warm_start_hits.bump();
            memo_insert(&mut st.memo_routable, key, true);
            return Ok(true);
        }
        if st.unroutable.iter().any(|w| extends(w, &q)) {
            self.warm_start_hits.bump();
            memo_insert(&mut st.memo_routable, key, false);
            return Ok(false);
        }
        self.full_solves.bump();
        let answer = match self.engine {
            LpEngine::Dense => {
                let mask = q.edge_mask();
                let canon = graph.view().with_edge_mask(&mask).with_capacities(&q.caps);
                self.inner.is_routable(&canon, demands)?
            }
            LpEngine::Revised => {
                // Cheap necessary condition first (mirrors `ExactLp`),
                // then a warm re-solve of the fixed-structure system.
                let mask = q.edge_mask();
                let canon = graph.view().with_edge_mask(&mask).with_capacities(&q.caps);
                let active: Vec<Demand> = demands
                    .iter()
                    .copied()
                    .filter(|d| d.amount > 1e-12 && d.source != d.target)
                    .collect();
                if mcf::quick_unroutable(&canon, &active) {
                    false
                } else {
                    self.warm_lp_solves.bump();
                    let system = st
                        .warm_rout
                        .get_or_insert_with(|| WarmRoutability::build(graph, demands));
                    system.solve(&q.caps)?
                }
            }
        };
        memo_insert(&mut st.memo_routable, key, answer);
        if answer {
            insert_minimal(&mut st.routable, q);
        } else {
            insert_maximal(&mut st.unroutable, q);
        }
        Ok(answer)
    }
}

impl SatisfactionOracle for IncrementalOracle {
    fn satisfied(&self, view: &View<'_>, demands: &[Demand]) -> Result<Vec<f64>, RecoveryError> {
        self.satisfaction_queries.bump();
        let graph = view.graph();
        let mut st = self.state.lock().expect("incremental state poisoned");
        self.refresh_generation(&mut st, view, demands);
        let raw = RawState::of(view);
        let q = canonicalize(graph, demands, &raw.enabled, &raw.caps);
        self.satisfied_for(&mut st, &q, graph, demands)
    }
}

impl EvalOracle for IncrementalOracle {
    fn name(&self) -> String {
        "incremental".to_string()
    }

    fn stats(&self) -> OracleStats {
        let inner = self.inner.stats();
        OracleStats {
            routability_queries: self.routability_queries.get(),
            satisfaction_queries: self.satisfaction_queries.get(),
            lp_solves: inner.lp_solves + self.warm_lp_solves.get(),
            cache_hits: self.memo_hits.get(),
            cache_misses: self.full_solves.get(),
            warm_start_hits: self.warm_start_hits.get(),
            full_solves: self.full_solves.get(),
            generation_resets: self.generation_resets.get(),
            ..OracleStats::default()
        }
    }

    fn reset_stats(&self) {
        self.routability_queries.reset();
        self.satisfaction_queries.reset();
        self.memo_hits.reset();
        self.warm_start_hits.reset();
        self.full_solves.reset();
        self.warm_lp_solves.reset();
        self.generation_resets.reset();
        self.inner.reset_stats();
    }

    /// Frontier scoring against one shared warm state: per candidate only
    /// the *delta* of effective edges is computed (O(degree)); candidates
    /// that change no effective edge reuse the base answer outright.
    fn evaluate_batch(
        &self,
        view: &View<'_>,
        demands: &[Demand],
        patches: &[Patch],
    ) -> Result<Vec<f64>, RecoveryError> {
        let graph = view.graph();
        let node_enabled: Vec<bool> = graph.nodes().map(|n| view.node_enabled(n)).collect();
        let edge_mask: Vec<bool> = match view.edge_mask() {
            Some(m) => m.to_vec(),
            None => vec![true; graph.edge_count()],
        };

        let mut st = self.state.lock().expect("incremental state poisoned");
        self.refresh_generation(&mut st, view, demands);
        let raw = RawState::of(view);
        let mut base_total: Option<f64> = None;

        let mut totals = Vec::with_capacity(patches.len());
        for &patch in patches {
            self.satisfaction_queries.bump();
            // Effective edges this candidate would newly enable.
            let mut added: Vec<usize> = Vec::new();
            match patch {
                Patch::Edge(e) => {
                    let (u, v) = graph.endpoints(e);
                    if !raw.enabled[e.index()] && node_enabled[u.index()] && node_enabled[v.index()]
                    {
                        added.push(e.index());
                    }
                }
                Patch::Node(n) => {
                    if !node_enabled[n.index()] {
                        for (e, w) in graph.csr().neighbors(n) {
                            if edge_mask[e.index()] && node_enabled[w.index()] {
                                added.push(e.index());
                            }
                        }
                    }
                }
            }
            let sat = if added.is_empty() {
                // Zero effective delta: exactly the base state's answer.
                match base_total {
                    Some(t) => {
                        self.warm_start_hits.bump();
                        totals.push(t);
                        continue;
                    }
                    None => {
                        let q = canonicalize(graph, demands, &raw.enabled, &raw.caps);
                        let sat = self.satisfied_for(&mut st, &q, graph, demands)?;
                        base_total = Some(sat.iter().sum());
                        sat
                    }
                }
            } else {
                let mut enabled = raw.enabled.clone();
                for &e in &added {
                    enabled[e] = true;
                }
                let q = canonicalize(graph, demands, &enabled, &raw.caps);
                self.satisfied_for(&mut st, &q, graph, demands)?
            };
            totals.push(sat.iter().sum());
        }
        Ok(totals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrec_graph::{EdgeId, Graph};

    fn square() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(g.node(0), g.node(1), 10.0).unwrap();
        g.add_edge(g.node(1), g.node(3), 10.0).unwrap();
        g.add_edge(g.node(0), g.node(2), 4.0).unwrap();
        g.add_edge(g.node(2), g.node(3), 4.0).unwrap();
        g
    }

    #[test]
    fn matches_exact_on_both_sides_of_capacity() {
        let g = square();
        let oracle = IncrementalOracle::new();
        let exact = ExactLp::new();
        for amount in [3.0, 8.0, 13.9, 14.1, 20.0] {
            let demands = [Demand::new(g.node(0), g.node(3), amount)];
            assert_eq!(
                oracle.is_routable(&g.view(), &demands).unwrap(),
                exact.is_routable(&g.view(), &demands).unwrap(),
                "amount {amount}"
            );
            let a = oracle.satisfied(&g.view(), &demands).unwrap();
            let b = exact.satisfied(&g.view(), &demands).unwrap();
            assert!((a[0] - b[0]).abs() < 1e-9, "amount {amount}: {a:?} {b:?}");
        }
    }

    #[test]
    fn superset_of_routable_state_is_warm_started() {
        let g = square();
        let oracle = IncrementalOracle::new();
        let demands = [Demand::new(g.node(0), g.node(3), 8.0)];
        // Top route only: routable. Full graph is a superset.
        let em = vec![true, true, false, false];
        assert!(oracle
            .is_routable(&g.view().with_edge_mask(&em), &demands)
            .unwrap());
        let solves = oracle.stats().full_solves;
        assert!(oracle.is_routable(&g.view(), &demands).unwrap());
        let stats = oracle.stats();
        assert_eq!(stats.full_solves, solves, "superset must not re-solve");
        assert_eq!(stats.warm_start_hits, 1);
    }

    #[test]
    fn subset_of_unroutable_state_is_warm_started() {
        let g = square();
        let oracle = IncrementalOracle::new();
        let demands = [Demand::new(g.node(0), g.node(3), 20.0)];
        assert!(!oracle.is_routable(&g.view(), &demands).unwrap());
        let solves = oracle.stats().full_solves;
        let em = vec![true, true, true, false];
        assert!(!oracle
            .is_routable(&g.view().with_edge_mask(&em), &demands)
            .unwrap());
        let stats = oracle.stats();
        assert_eq!(stats.full_solves, solves, "subset must not re-solve");
        assert_eq!(stats.warm_start_hits, 1);
    }

    #[test]
    fn effective_graph_memo_collapses_mask_noise() {
        let g = square();
        let oracle = IncrementalOracle::new();
        let demands = [Demand::new(g.node(0), g.node(3), 8.0)];
        // Disable the bottom route via the edge mask; toggling node 2 (now
        // isolated) changes no effective edge, so the second query is a
        // memo hit.
        let em = vec![true, true, false, false];
        let sat = oracle
            .satisfied(&g.view().with_edge_mask(&em), &demands)
            .unwrap();
        let nm = vec![true, true, false, true];
        let sat2 = oracle
            .satisfied(&g.view().with_edge_mask(&em).with_node_mask(&nm), &demands)
            .unwrap();
        assert_eq!(sat, sat2);
        let stats = oracle.stats();
        assert_eq!(stats.full_solves, 1);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn dead_component_edges_canonicalize_away() {
        // Line 0-1 (the demand corridor) plus a separate line 2-3: the
        // 2-3 edge lies in a component with no complete demand pair, so
        // enabling it lands on the same canonical state.
        let mut g = Graph::with_nodes(4);
        g.add_edge(g.node(0), g.node(1), 5.0).unwrap();
        g.add_edge(g.node(2), g.node(3), 5.0).unwrap();
        let oracle = IncrementalOracle::new();
        let demands = [Demand::new(g.node(0), g.node(1), 3.0)];
        let em = vec![true, false];
        let sat = oracle
            .satisfied(&g.view().with_edge_mask(&em), &demands)
            .unwrap();
        let sat2 = oracle.satisfied(&g.view(), &demands).unwrap();
        assert_eq!(sat, sat2);
        let stats = oracle.stats();
        assert_eq!(stats.full_solves, 1, "{stats:?}");
        assert_eq!(stats.cache_hits, 1, "{stats:?}");
    }

    #[test]
    fn same_shape_different_wiring_does_not_alias() {
        // Two graphs with identical node/edge counts and capacities but
        // different endpoints: A = 0-1(4), 1-2(2) is unroutable for
        // (0→2, 4); B = 0-2(4), 1-2(2) is routable. One reused oracle
        // must answer both correctly (the generation fingerprint covers
        // the wiring).
        let mut a = Graph::with_nodes(3);
        a.add_edge(a.node(0), a.node(1), 4.0).unwrap();
        a.add_edge(a.node(1), a.node(2), 2.0).unwrap();
        let mut b = Graph::with_nodes(3);
        b.add_edge(b.node(0), b.node(2), 4.0).unwrap();
        b.add_edge(b.node(1), b.node(2), 2.0).unwrap();
        let demands = [Demand::new(a.node(0), a.node(2), 4.0)];
        let oracle = IncrementalOracle::new();
        assert!(!oracle.is_routable(&a.view(), &demands).unwrap());
        assert!(oracle.is_routable(&b.view(), &demands).unwrap());
        assert!(!oracle.is_routable(&a.view(), &demands).unwrap());
        assert_eq!(oracle.stats().generation_resets, 2);
    }

    #[test]
    fn generation_mismatch_resets_the_state() {
        let g = square();
        let oracle = IncrementalOracle::new();
        let d8 = [Demand::new(g.node(0), g.node(3), 8.0)];
        let d9 = [Demand::new(g.node(0), g.node(3), 9.0)];
        oracle.is_routable(&g.view(), &d8).unwrap();
        oracle.is_routable(&g.view(), &d9).unwrap();
        oracle.is_routable(&g.view(), &d8).unwrap();
        let stats = oracle.stats();
        assert_eq!(stats.generation_resets, 2);
        assert_eq!(stats.full_solves, 3, "every switch re-solves");
    }

    #[test]
    fn evaluate_batch_matches_default_scoring() {
        let g = square();
        let incremental = IncrementalOracle::new();
        let exact = ExactLp::new();
        let demands = [Demand::new(g.node(0), g.node(3), 12.0)];
        let nm = vec![true, false, false, true];
        let em = vec![false; 4];
        let view = g.view().with_node_mask(&nm).with_edge_mask(&em);
        let patches = vec![
            Patch::Node(g.node(1)),
            Patch::Node(g.node(2)),
            Patch::Edge(EdgeId::new(0)),
            Patch::Edge(EdgeId::new(3)),
        ];
        let a = incremental
            .evaluate_batch(&view, &demands, &patches)
            .unwrap();
        let b = exact.evaluate_batch(&view, &demands, &patches).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "{a:?} vs {b:?}");
        }
        // Every patch here leaves the demand-relevant subgraph empty
        // (each enabled component's counterpart is still broken): one
        // base solve serves the whole frontier.
        assert_eq!(
            incremental.stats().full_solves,
            1,
            "{:?}",
            incremental.stats()
        );
    }

    #[test]
    fn snapshot_restore_transfers_witnesses() {
        let g = square();
        let parent = IncrementalOracle::new();
        let demands = [Demand::new(g.node(0), g.node(3), 8.0)];
        // Prove routability on the top route; full graph is a superset.
        let em = vec![true, true, false, false];
        assert!(parent
            .is_routable(&g.view().with_edge_mask(&em), &demands)
            .unwrap());
        let snap = parent.snapshot_state();
        assert!(!snap.is_empty());
        assert!(snap.witness_count() >= 1);

        // A forked oracle restored from the snapshot answers the
        // superset from the transferred witness — zero full solves.
        let fork = IncrementalOracle::new();
        fork.restore_state(&snap);
        assert!(fork.is_routable(&g.view(), &demands).unwrap());
        let stats = fork.stats();
        assert_eq!(stats.full_solves, 0, "{stats:?}");
        assert_eq!(stats.warm_start_hits, 1, "{stats:?}");
    }

    #[test]
    fn restored_stale_snapshot_is_discarded_on_generation_mismatch() {
        let g = square();
        let parent = IncrementalOracle::new();
        let d8 = [Demand::new(g.node(0), g.node(3), 8.0)];
        assert!(parent.is_routable(&g.view(), &d8).unwrap());
        let snap = parent.snapshot_state();

        // Different demand set = different generation: the restored
        // state must not leak answers across generations.
        let fork = IncrementalOracle::new();
        fork.restore_state(&snap);
        let d20 = [Demand::new(g.node(0), g.node(3), 20.0)];
        assert!(!fork.is_routable(&g.view(), &d20).unwrap());
        assert_eq!(fork.stats().generation_resets, 1);
    }

    #[test]
    fn reset_stats_keeps_warm_state() {
        let g = square();
        let oracle = IncrementalOracle::new();
        let demands = [Demand::new(g.node(0), g.node(3), 8.0)];
        assert!(oracle.is_routable(&g.view(), &demands).unwrap());
        assert!(oracle.stats().full_solves > 0);
        oracle.reset_stats();
        assert_eq!(oracle.stats(), OracleStats::default());
        // The memoized answer survives the counter reset.
        assert!(oracle.is_routable(&g.view(), &demands).unwrap());
        let stats = oracle.stats();
        assert_eq!(stats.full_solves, 0, "{stats:?}");
        assert_eq!(stats.cache_hits, 1, "{stats:?}");
    }

    #[test]
    fn full_satisfaction_witness_serves_supersets() {
        let g = square();
        let oracle = IncrementalOracle::new();
        let demands = [Demand::new(g.node(0), g.node(3), 8.0)];
        let em = vec![true, true, false, false];
        let sat = oracle
            .satisfied(&g.view().with_edge_mask(&em), &demands)
            .unwrap();
        assert!((sat[0] - 8.0).abs() < 1e-9);
        let solves = oracle.stats().full_solves;
        let sat = oracle.satisfied(&g.view(), &demands).unwrap();
        assert!((sat[0] - 8.0).abs() < 1e-9);
        assert_eq!(oracle.stats().full_solves, solves);
        assert_eq!(oracle.stats().warm_start_hits, 1);
    }
}
