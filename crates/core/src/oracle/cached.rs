//! The memoizing oracle decorator.

use super::{query_key, EvalOracle, OracleStats, RoutabilityOracle, SatisfactionOracle};
use crate::RecoveryError;
use netrec_graph::View;
use netrec_lp::mcf::Demand;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Memoizes an inner oracle's answers keyed by the working node/edge
/// masks, effective capacities, and demand set.
///
/// The sweet spot is any caller that re-evaluates overlapping network
/// states: the progressive scheduler (its stage-end evaluation always
/// repeats the winning candidate's query), repeated what-if probes over
/// the same damage, or re-running a schedule for reporting. Keys are a
/// lossless encoding of everything the answer depends on (the two query
/// kinds live in separate maps), so a hit is exactly as trustworthy as
/// the inner backend — no hash-collision aliasing is possible.
pub struct Cached<O> {
    inner: O,
    routable: Mutex<HashMap<Vec<u64>, bool>>,
    satisfied: Mutex<HashMap<Vec<u64>, Vec<f64>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    routability_queries: AtomicUsize,
    satisfaction_queries: AtomicUsize,
}

impl<O: EvalOracle> Cached<O> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: O) -> Self {
        Cached {
            inner,
            routable: Mutex::new(HashMap::new()),
            satisfied: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            routability_queries: AtomicUsize::new(0),
            satisfaction_queries: AtomicUsize::new(0),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Memoized answers served so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Queries that reached the inner backend so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct cached answers (both kinds).
    pub fn len(&self) -> usize {
        self.routable.lock().expect("cache poisoned").len()
            + self.satisfied.lock().expect("cache poisoned").len()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached answer (counters are kept).
    pub fn clear(&self) {
        self.routable.lock().expect("cache poisoned").clear();
        self.satisfied.lock().expect("cache poisoned").clear();
    }
}

impl<O: EvalOracle> RoutabilityOracle for Cached<O> {
    fn is_routable(&self, view: &View<'_>, demands: &[Demand]) -> Result<bool, RecoveryError> {
        self.routability_queries.fetch_add(1, Ordering::Relaxed);
        let key = query_key(view, demands);
        if let Some(&answer) = self.routable.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(answer);
        }
        // The lock is not held across the solve: a concurrent duplicate
        // query may solve twice, but both insert the same answer.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let answer = self.inner.is_routable(view, demands)?;
        self.routable
            .lock()
            .expect("cache poisoned")
            .insert(key, answer);
        Ok(answer)
    }
}

impl<O: EvalOracle> SatisfactionOracle for Cached<O> {
    fn satisfied(&self, view: &View<'_>, demands: &[Demand]) -> Result<Vec<f64>, RecoveryError> {
        self.satisfaction_queries.fetch_add(1, Ordering::Relaxed);
        let key = query_key(view, demands);
        if let Some(answer) = self.satisfied.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(answer.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let answer = self.inner.satisfied(view, demands)?;
        self.satisfied
            .lock()
            .expect("cache poisoned")
            .insert(key, answer.clone());
        Ok(answer)
    }
}

impl<O: EvalOracle> EvalOracle for Cached<O> {
    fn name(&self) -> String {
        format!("cached({})", self.inner.name())
    }

    fn stats(&self) -> OracleStats {
        let mut stats = self.inner.stats();
        // Query counts reflect what callers asked at the cache boundary;
        // solve counts reflect what actually reached the inner backend.
        stats.routability_queries = self.routability_queries.load(Ordering::Relaxed);
        stats.satisfaction_queries = self.satisfaction_queries.load(Ordering::Relaxed);
        stats.cache_hits = self.hits();
        stats.cache_misses = self.misses();
        stats
    }

    fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.routability_queries.store(0, Ordering::Relaxed);
        self.satisfaction_queries.store(0, Ordering::Relaxed);
        self.inner.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactLp;
    use netrec_graph::Graph;

    fn square() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(g.node(0), g.node(1), 10.0).unwrap();
        g.add_edge(g.node(1), g.node(3), 10.0).unwrap();
        g.add_edge(g.node(0), g.node(2), 4.0).unwrap();
        g.add_edge(g.node(2), g.node(3), 4.0).unwrap();
        g
    }

    #[test]
    fn repeated_queries_hit() {
        let g = square();
        let oracle = Cached::new(ExactLp::new());
        let demands = [Demand::new(g.node(0), g.node(3), 8.0)];
        for _ in 0..5 {
            assert!(oracle.is_routable(&g.view(), &demands).unwrap());
            let sat = oracle.satisfied(&g.view(), &demands).unwrap();
            assert!((sat[0] - 8.0).abs() < 1e-9);
        }
        assert_eq!(oracle.misses(), 2, "one per query kind");
        assert_eq!(oracle.hits(), 8);
        assert_eq!(oracle.inner().stats().routability_queries, 1);
    }

    #[test]
    fn different_masks_are_distinct_entries() {
        let g = square();
        let oracle = Cached::new(ExactLp::new());
        let demands = [Demand::new(g.node(0), g.node(3), 3.0)];
        assert!(oracle.is_routable(&g.view(), &demands).unwrap());
        let mask = vec![true, false, true, true];
        let masked = g.view().with_node_mask(&mask);
        assert!(oracle.is_routable(&masked, &demands).unwrap());
        assert_eq!(oracle.misses(), 2);
        assert_eq!(oracle.hits(), 0);
        assert_eq!(oracle.len(), 2);
    }

    #[test]
    fn answers_match_inner_backend_exactly() {
        let g = square();
        let cached = Cached::new(ExactLp::new());
        let plain = ExactLp::new();
        let cases = [3.0, 8.0, 13.9, 14.1, 20.0];
        for &amount in &cases {
            let demands = [Demand::new(g.node(0), g.node(3), amount)];
            // Query twice so the second answer comes from the cache.
            for _ in 0..2 {
                assert_eq!(
                    cached.is_routable(&g.view(), &demands).unwrap(),
                    plain.is_routable(&g.view(), &demands).unwrap(),
                    "amount {amount}"
                );
                assert_eq!(
                    cached.satisfied(&g.view(), &demands).unwrap(),
                    plain.satisfied(&g.view(), &demands).unwrap(),
                    "amount {amount}"
                );
            }
        }
        assert_eq!(cached.hits(), cases.len() * 2);
    }

    #[test]
    fn clear_resets_entries_but_not_counters() {
        let g = square();
        let oracle = Cached::new(ExactLp::new());
        let demands = [Demand::new(g.node(0), g.node(3), 2.0)];
        oracle.is_routable(&g.view(), &demands).unwrap();
        assert!(!oracle.is_empty());
        oracle.clear();
        assert!(oracle.is_empty());
        assert_eq!(oracle.misses(), 1);
        oracle.is_routable(&g.view(), &demands).unwrap();
        assert_eq!(oracle.misses(), 2, "cleared entry must be recomputed");
    }
}
