use crate::RecoveryError;
use netrec_graph::{EdgeId, Graph, NodeId, View};
use netrec_lp::mcf::Demand;
use serde::{Deserialize, Serialize};

/// An instance of the MINIMUM RECOVERY (MinR) problem.
///
/// Bundles the supply graph `G = (V, E)` with edge capacities, the demand
/// graph `H = (VH, EH)` with flow requirements, the broken sets `VB`/`EB`,
/// and per-component repair costs `kᵛ`/`kᵉ`.
///
/// # Example
///
/// ```
/// use netrec_core::RecoveryProblem;
/// use netrec_graph::Graph;
///
/// let mut g = Graph::with_nodes(3);
/// let e = g.add_edge(g.node(0), g.node(1), 10.0)?;
/// g.add_edge(g.node(1), g.node(2), 10.0)?;
///
/// let mut p = RecoveryProblem::new(g);
/// p.add_demand(p.graph().node(0), p.graph().node(2), 5.0)?;
/// p.break_edge(e, 2.5)?;
/// assert_eq!(p.broken_edge_count(), 1);
/// assert_eq!(p.total_demand(), 5.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryProblem {
    graph: Graph,
    demands: Vec<Demand2>,
    broken_nodes: Vec<bool>,
    broken_edges: Vec<bool>,
    node_cost: Vec<f64>,
    edge_cost: Vec<f64>,
}

/// Serializable demand record (the LP crate's `Demand` is plain data; we
/// keep our own to derive serde without cross-crate orphan issues).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Demand2 {
    source: NodeId,
    target: NodeId,
    amount: f64,
}

/// One mutation of a [`RecoveryProblem`]'s damage/demand state — the
/// unit of a live event stream. Where [`super::oracle::Patch`] describes
/// a *hypothetical* single-component repair for frontier scoring,
/// `StatePatch` **commits** a change: a resident session
/// (`netrec-serve`) turns each protocol event into one patch and applies
/// it via [`RecoveryProblem::apply`] / [`RecoveryProblem::apply_stream`],
/// so the session state after a replayed stream is exactly the state of
/// building a fresh problem with the same calls (replay determinism).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StatePatch {
    /// Mark a node broken with a repair cost.
    BreakNode {
        /// The node to break.
        node: NodeId,
        /// Its repair cost.
        cost: f64,
    },
    /// Mark an edge broken with a repair cost.
    BreakEdge {
        /// The edge to break.
        edge: EdgeId,
        /// Its repair cost.
        cost: f64,
    },
    /// Un-break a node.
    RepairNode {
        /// The node to repair.
        node: NodeId,
    },
    /// Un-break an edge.
    RepairEdge {
        /// The edge to repair.
        edge: EdgeId,
    },
    /// Append a demand pair.
    AddDemand {
        /// Demand source.
        source: NodeId,
        /// Demand target.
        target: NodeId,
        /// Requested flow.
        amount: f64,
    },
    /// Drop every demand pair.
    ClearDemands,
}

impl RecoveryProblem {
    /// Creates a problem over `graph` with no demands and nothing broken.
    /// Repair costs default to 1 per component (the paper's homogeneous
    /// unitary cost).
    pub fn new(graph: Graph) -> Self {
        let n = graph.node_count();
        let m = graph.edge_count();
        RecoveryProblem {
            graph,
            demands: Vec::new(),
            broken_nodes: vec![false; n],
            broken_edges: vec![false; m],
            node_cost: vec![1.0; n],
            edge_cost: vec![1.0; m],
        }
    }

    /// The supply graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Adds a demand pair `(s, t, d)`.
    ///
    /// # Errors
    ///
    /// Rejects unknown endpoints, `s == t`, and negative/non-finite
    /// amounts.
    pub fn add_demand(&mut self, s: NodeId, t: NodeId, amount: f64) -> Result<(), RecoveryError> {
        if s.index() >= self.graph.node_count() || t.index() >= self.graph.node_count() {
            return Err(RecoveryError::UnknownDemandEndpoint);
        }
        if s == t {
            return Err(RecoveryError::UnknownDemandEndpoint);
        }
        if !amount.is_finite() || amount < 0.0 {
            return Err(RecoveryError::InvalidCost(amount));
        }
        self.demands.push(Demand2 {
            source: s,
            target: t,
            amount,
        });
        Ok(())
    }

    /// Drops every demand pair (the supply graph and broken sets are
    /// kept). A resident session uses this when a `demand` event
    /// replaces the demand set wholesale.
    pub fn clear_demands(&mut self) {
        self.demands.clear();
    }

    /// Marks node `n` broken with repair cost `cost`.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range nodes and invalid costs.
    pub fn break_node(&mut self, n: NodeId, cost: f64) -> Result<(), RecoveryError> {
        if n.index() >= self.graph.node_count() {
            return Err(RecoveryError::UnknownDemandEndpoint);
        }
        if !cost.is_finite() || cost < 0.0 {
            return Err(RecoveryError::InvalidCost(cost));
        }
        self.broken_nodes[n.index()] = true;
        self.node_cost[n.index()] = cost;
        Ok(())
    }

    /// Marks edge `e` broken with repair cost `cost`.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range edges and invalid costs.
    pub fn break_edge(&mut self, e: EdgeId, cost: f64) -> Result<(), RecoveryError> {
        if e.index() >= self.graph.edge_count() {
            return Err(RecoveryError::UnknownDemandEndpoint);
        }
        if !cost.is_finite() || cost < 0.0 {
            return Err(RecoveryError::InvalidCost(cost));
        }
        self.broken_edges[e.index()] = true;
        self.edge_cost[e.index()] = cost;
        Ok(())
    }

    /// Un-breaks node `n` (the inverse of [`RecoveryProblem::break_node`]).
    /// Repairing a working node is a no-op, matching the semantics of a
    /// repair crew arriving at an intact site.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range nodes.
    pub fn repair_node(&mut self, n: NodeId) -> Result<(), RecoveryError> {
        if n.index() >= self.graph.node_count() {
            return Err(RecoveryError::UnknownDemandEndpoint);
        }
        self.broken_nodes[n.index()] = false;
        Ok(())
    }

    /// Un-breaks edge `e` (the inverse of [`RecoveryProblem::break_edge`]).
    ///
    /// # Errors
    ///
    /// Rejects out-of-range edges.
    pub fn repair_edge(&mut self, e: EdgeId) -> Result<(), RecoveryError> {
        if e.index() >= self.graph.edge_count() {
            return Err(RecoveryError::UnknownDemandEndpoint);
        }
        self.broken_edges[e.index()] = false;
        Ok(())
    }

    /// Applies one state patch; see [`StatePatch`] for the catalogue.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range components and invalid costs/amounts —
    /// the problem is unchanged on error, so a rejected patch in a
    /// stream leaves a consistent state behind.
    pub fn apply(&mut self, patch: &StatePatch) -> Result<(), RecoveryError> {
        match *patch {
            StatePatch::BreakNode { node, cost } => self.break_node(node, cost),
            StatePatch::BreakEdge { edge, cost } => self.break_edge(edge, cost),
            StatePatch::RepairNode { node } => self.repair_node(node),
            StatePatch::RepairEdge { edge } => self.repair_edge(edge),
            StatePatch::AddDemand {
                source,
                target,
                amount,
            } => self.add_demand(source, target, amount),
            StatePatch::ClearDemands => {
                self.clear_demands();
                Ok(())
            }
        }
    }

    /// Applies a patch stream in order, stopping at the first invalid
    /// patch. Returns the number of patches applied; on error, every
    /// patch before the offending one has already taken effect (exactly
    /// the replay semantics a journaled event log needs — a bad event
    /// is rejected, the state reflects the valid prefix).
    ///
    /// # Errors
    ///
    /// The first patch rejection, wrapped with its stream position via
    /// the returned count being `Err((index, error))`.
    pub fn apply_stream<'a, I>(&mut self, patches: I) -> Result<usize, (usize, RecoveryError)>
    where
        I: IntoIterator<Item = &'a StatePatch>,
    {
        let mut applied = 0;
        for patch in patches {
            self.apply(patch).map_err(|e| (applied, e))?;
            applied += 1;
        }
        Ok(applied)
    }

    /// The demand list in the LP crate's format.
    pub fn demands(&self) -> Vec<Demand> {
        self.demands
            .iter()
            .map(|d| Demand::new(d.source, d.target, d.amount))
            .collect()
    }

    /// Demand pairs as raw tuples.
    pub fn demand_pairs(&self) -> Vec<(NodeId, NodeId, f64)> {
        self.demands
            .iter()
            .map(|d| (d.source, d.target, d.amount))
            .collect()
    }

    /// Sum of all demand amounts.
    pub fn total_demand(&self) -> f64 {
        self.demands.iter().map(|d| d.amount).sum()
    }

    /// Whether node `n` is broken.
    pub fn is_node_broken(&self, n: NodeId) -> bool {
        self.broken_nodes[n.index()]
    }

    /// Whether edge `e` is broken.
    pub fn is_edge_broken(&self, e: EdgeId) -> bool {
        self.broken_edges[e.index()]
    }

    /// The broken-node mask (`true` = broken), indexed by node id.
    pub fn broken_node_mask(&self) -> &[bool] {
        &self.broken_nodes
    }

    /// The broken-edge mask (`true` = broken), indexed by edge id.
    pub fn broken_edge_mask(&self) -> &[bool] {
        &self.broken_edges
    }

    /// Number of broken nodes.
    pub fn broken_node_count(&self) -> usize {
        self.broken_nodes.iter().filter(|&&b| b).count()
    }

    /// Number of broken edges.
    pub fn broken_edge_count(&self) -> usize {
        self.broken_edges.iter().filter(|&&b| b).count()
    }

    /// Repair cost of node `n` (meaningful when broken).
    pub fn node_cost(&self, n: NodeId) -> f64 {
        self.node_cost[n.index()]
    }

    /// Repair cost of edge `e` (meaningful when broken).
    pub fn edge_cost(&self, e: EdgeId) -> f64 {
        self.edge_cost[e.index()]
    }

    /// The maximum node degree `ηmax` of the supply graph.
    pub fn max_degree(&self) -> usize {
        self.graph.max_degree()
    }

    /// Working-subgraph masks **before any repair**: enabled = not broken.
    /// Returns `(node_enabled, edge_enabled)` suitable for
    /// [`View::with_node_mask`] / [`View::with_edge_mask`].
    pub fn working_masks(&self) -> (Vec<bool>, Vec<bool>) {
        (
            self.broken_nodes.iter().map(|&b| !b).collect(),
            self.broken_edges.iter().map(|&b| !b).collect(),
        )
    }

    /// A view of the full supply graph (broken elements included).
    pub fn full_view(&self) -> View<'_> {
        self.graph.view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> RecoveryProblem {
        let mut g = Graph::with_nodes(3);
        g.add_edge(g.node(0), g.node(1), 10.0).unwrap();
        g.add_edge(g.node(1), g.node(2), 10.0).unwrap();
        RecoveryProblem::new(g)
    }

    #[test]
    fn demand_management() {
        let mut p = line();
        p.add_demand(p.graph().node(0), p.graph().node(2), 4.0)
            .unwrap();
        assert_eq!(p.total_demand(), 4.0);
        assert_eq!(p.demands().len(), 1);
        assert_eq!(p.demand_pairs()[0].2, 4.0);
    }

    #[test]
    fn rejects_bad_demands() {
        let mut p = line();
        let a = p.graph().node(0);
        assert!(p.add_demand(a, a, 1.0).is_err());
        assert!(p.add_demand(a, NodeId::new(99), 1.0).is_err());
        assert!(p.add_demand(a, p.graph().node(1), -1.0).is_err());
        assert!(p.add_demand(a, p.graph().node(1), f64::NAN).is_err());
    }

    #[test]
    fn break_and_masks() {
        let mut p = line();
        p.break_node(p.graph().node(1), 3.0).unwrap();
        p.break_edge(EdgeId::new(0), 2.0).unwrap();
        assert!(p.is_node_broken(p.graph().node(1)));
        assert!(p.is_edge_broken(EdgeId::new(0)));
        assert_eq!(p.broken_node_count(), 1);
        assert_eq!(p.broken_edge_count(), 1);
        assert_eq!(p.node_cost(p.graph().node(1)), 3.0);
        assert_eq!(p.edge_cost(EdgeId::new(0)), 2.0);
        let (nm, em) = p.working_masks();
        assert_eq!(nm, vec![true, false, true]);
        assert_eq!(em, vec![false, true]);
    }

    #[test]
    fn rejects_bad_costs() {
        let mut p = line();
        assert!(p.break_node(p.graph().node(0), -2.0).is_err());
        assert!(p.break_edge(EdgeId::new(0), f64::INFINITY).is_err());
    }

    #[test]
    fn repair_undoes_break() {
        let mut p = line();
        p.break_node(p.graph().node(1), 3.0).unwrap();
        p.break_edge(EdgeId::new(0), 2.0).unwrap();
        p.repair_node(p.graph().node(1)).unwrap();
        p.repair_edge(EdgeId::new(0)).unwrap();
        assert_eq!(p.broken_node_count(), 0);
        assert_eq!(p.broken_edge_count(), 0);
        // Repairing an intact component is a no-op, not an error.
        p.repair_node(p.graph().node(0)).unwrap();
        // Out-of-range components are rejected.
        assert!(p.repair_node(NodeId::new(99)).is_err());
        assert!(p.repair_edge(EdgeId::new(99)).is_err());
    }

    #[test]
    fn patch_stream_replays_to_the_same_state() {
        let mut direct = line();
        direct.break_edge(EdgeId::new(1), 2.0).unwrap();
        direct
            .add_demand(direct.graph().node(0), direct.graph().node(2), 4.0)
            .unwrap();
        direct.repair_edge(EdgeId::new(1)).unwrap();

        let mut streamed = line();
        let patches = [
            StatePatch::BreakEdge {
                edge: EdgeId::new(1),
                cost: 2.0,
            },
            StatePatch::AddDemand {
                source: streamed.graph().node(0),
                target: streamed.graph().node(2),
                amount: 4.0,
            },
            StatePatch::RepairEdge {
                edge: EdgeId::new(1),
            },
        ];
        assert_eq!(streamed.apply_stream(&patches), Ok(3));
        assert_eq!(streamed.broken_edge_mask(), direct.broken_edge_mask());
        assert_eq!(streamed.broken_node_mask(), direct.broken_node_mask());
        assert_eq!(streamed.demand_pairs(), direct.demand_pairs());
        assert_eq!(streamed.edge_cost(EdgeId::new(1)), 2.0);
    }

    #[test]
    fn patch_stream_stops_at_the_first_invalid_patch() {
        let mut p = line();
        let patches = [
            StatePatch::BreakNode {
                node: NodeId::new(1),
                cost: 1.0,
            },
            StatePatch::BreakEdge {
                edge: EdgeId::new(99),
                cost: 1.0,
            },
            StatePatch::ClearDemands,
        ];
        let err = p.apply_stream(&patches).unwrap_err();
        assert_eq!(err.0, 1, "one patch applied before the rejection");
        assert!(p.is_node_broken(p.graph().node(1)), "prefix took effect");
    }

    #[test]
    fn clear_demands_empties_the_demand_set() {
        let mut p = line();
        p.add_demand(p.graph().node(0), p.graph().node(2), 4.0)
            .unwrap();
        p.apply(&StatePatch::ClearDemands).unwrap();
        assert!(p.demands().is_empty());
        assert_eq!(p.total_demand(), 0.0);
    }

    #[test]
    fn default_costs_are_unitary() {
        let p = line();
        assert_eq!(p.node_cost(p.graph().node(0)), 1.0);
        assert_eq!(p.edge_cost(EdgeId::new(1)), 1.0);
    }
}
